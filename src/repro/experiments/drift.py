"""The drift experiment: continuous tuning vs. cold restart.

Everything the paper measures assumes a stationary workload.  This
harness asks the deployment question instead: the workload drifts
(:mod:`repro.storm.schedule`), the incumbent degrades, a
:class:`~repro.core.drift.PageHinkleyDetector` notices — how fast does
each recovery policy get back to a good configuration?

Three canned drift profiles over the small synthetic topology:

* ``diurnal`` — sinusoidal load cycle (compressed to experiment scale),
* ``flash``   — step load increase partway through the campaign,
* ``skew``    — hot-key concentration ramping in over several epochs.

For each profile the same seed runs twice — ``continuous`` (trust-
region re-tune from the incumbent, stale observations down-weighted)
and ``cold`` (fresh optimizer after each detection) — and the headline
metric is **recovery**: post-detection tuning observations spent before
one lands within 5% of the post-drift reference optimum.  The reference
is the max of a fixed Latin-hypercube pool evaluated *noise-free* at
each epoch's workload time; observed configurations are re-scored
noise-free the same way, so measurement noise cannot fake (or hide) a
recovery.  ``benchmarks/bench_drift.py`` wraps this module as an
acceptance bench; ``repro-experiments drift`` is the CLI face
(docs/DRIFT.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.continuous import ContinuousTuningLoop, ContinuousTuningResult
from repro.core.drift import PageHinkleyDetector
from repro.core.optimizer import BayesianOptimizer
from repro.core.seeding import derive_seed
from repro.experiments.presets import (
    MEASUREMENT_NOISE_SIGMA,
    SYNTHETIC_BASE_CONFIG,
    default_cluster,
)
from repro.storm.analytic import AnalyticPerformanceModel
from repro.storm.noise import GaussianNoise
from repro.storm.objective import StormObjective
from repro.storm.schedule import (
    DiurnalSchedule,
    FlashCrowdSchedule,
    SkewShiftSchedule,
    WorkloadSchedule,
)
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import make_topology

#: Fraction of the post-drift reference optimum that counts as
#: "recovered" (the acceptance criterion's within-5% bar).
RECOVERY_FRACTION = 0.95


def _is_sqlite_spec(spec: str | Path) -> bool:
    """True when a ``--resume`` target names a SQLite store, not a dir."""
    from repro.store import SQLITE_SUFFIXES

    return Path(spec).suffix.lower() in SQLITE_SUFFIXES

#: Latin-hypercube pool size for the per-epoch reference optimum.
REFERENCE_POOL = 256


@dataclass(frozen=True)
class DriftScenario:
    """One drift profile plus the continuous-tuning budget that runs it."""

    name: str
    schedule: WorkloadSchedule
    epochs: int = 6
    epoch_duration_s: float = 600.0
    steps_per_epoch: int = 8
    #: Warm-up matters: the continuous mode's whole advantage is
    #: re-tuning *from a good incumbent*, so the first epoch gets a
    #: budget large enough to actually converge under the base
    #: workload before the drift hits.
    initial_steps: int = 20
    init_points: int = 4
    noise_sigma: float = MEASUREMENT_NOISE_SIGMA
    detector_delta: float = 0.02
    detector_threshold: float = 0.25
    trust_radius: float = 0.2
    mild_trust_radius: float | None = None
    stale_inflation: float = 4.0
    severe_deviation: float = 0.35

    def scaled(self, *, epochs: int, steps_per_epoch: int, initial_steps: int
               ) -> "DriftScenario":
        return replace(
            self,
            epochs=epochs,
            steps_per_epoch=steps_per_epoch,
            initial_steps=initial_steps,
        )


def drift_scenarios() -> dict[str, DriftScenario]:
    """The three canned profiles, timed so drift lands mid-campaign.

    Onsets/ramps sit after the warm-up epochs so every run first
    converges under the base workload, then faces the change — the
    shape of the recovery question.
    """
    return {
        "diurnal": DriftScenario(
            name="diurnal",
            schedule=DiurnalSchedule(period_s=4_800.0, amplitude=0.5),
            # Slow continuous drift needs a less sensitive detector: at
            # the common 0.25 threshold the test fires at almost every
            # epoch boundary (chattering), spending the re-tune budget
            # on shifts too small to matter.  0.4 lets the sinusoid
            # accumulate into one clear detection per swing.
            detector_threshold=0.4,
        ),
        "flash": DriftScenario(
            name="flash",
            schedule=FlashCrowdSchedule(onset_s=1_500.0, flash_load=1.7),
        ),
        "skew": DriftScenario(
            name="skew",
            schedule=SkewShiftSchedule(
                ramp_start_s=1_200.0, ramp_end_s=1_800.0, final_skew=0.5
            ),
        ),
    }


# ----------------------------------------------------------------------
# Running one scenario
# ----------------------------------------------------------------------
def _substrate(scenario: DriftScenario, seed: int):
    topology = make_topology("small")
    cluster = default_cluster()
    codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
    objective = StormObjective(
        topology,
        cluster,
        codec,
        fidelity="analytic",
        noise=GaussianNoise(scenario.noise_sigma),
        seed=derive_seed(seed, "objective", 0),
        schedule=scenario.schedule,
    )
    return topology, cluster, codec, objective


def build_drift_loop(
    scenario: DriftScenario,
    mode: str,
    seed: int,
    *,
    checkpoint_dir: str | Path | None = None,
    wrap_objective: Callable[[StormObjective], object] | None = None,
) -> ContinuousTuningLoop:
    """Assemble the continuous-tuning loop for one scenario campaign.

    ``wrap_objective`` lets harnesses (benchmarks/bench_drift.py)
    decorate the objective — e.g. slow it down so a SIGKILL lands
    mid-epoch — without perturbing any of the seeds or loop structure
    that determinism depends on.
    """
    _, _, codec, objective = _substrate(scenario, seed)
    if wrap_objective is not None:
        objective = wrap_objective(objective)

    def make_optimizer(opt_seed: int | None) -> BayesianOptimizer:
        return BayesianOptimizer(
            codec.space, seed=opt_seed, init_points=scenario.init_points
        )

    # A *.db resume target routes persistence through the SQLite study
    # store — one database for the whole comparison, campaigns keyed by
    # (scenario, mode) cell labels.  Directory targets keep the classic
    # one-directory-per-campaign JSONL layout.
    store_kwargs: dict[str, object] = {}
    if checkpoint_dir is not None and _is_sqlite_spec(checkpoint_dir):
        from repro.store import open_store

        store_kwargs = {
            "store": open_store(checkpoint_dir),
            "study": "drift",
            "cell": f"{scenario.name}/{mode}",
        }
        checkpoint_dir = None
    loop = ContinuousTuningLoop(
        objective,
        make_optimizer,
        epochs=scenario.epochs,
        epoch_duration_s=scenario.epoch_duration_s,
        steps_per_epoch=scenario.steps_per_epoch,
        initial_steps=scenario.initial_steps,
        mode=mode,
        detector=PageHinkleyDetector(
            delta=scenario.detector_delta,
            threshold=scenario.detector_threshold,
        ),
        seed=seed,
        checkpoint_dir=checkpoint_dir,
        **store_kwargs,  # type: ignore[arg-type]
        strategy_name=f"drift-{scenario.name}-{mode}",
        trust_radius=scenario.trust_radius,
        mild_trust_radius=scenario.mild_trust_radius,
        stale_inflation=scenario.stale_inflation,
        severe_deviation=scenario.severe_deviation,
    )
    return loop


def run_drift_scenario(
    scenario: DriftScenario,
    mode: str,
    seed: int,
    *,
    checkpoint_dir: str | Path | None = None,
) -> ContinuousTuningResult:
    """One continuous-tuning campaign over ``scenario`` in ``mode``."""
    loop = build_drift_loop(
        scenario, mode, seed, checkpoint_dir=checkpoint_dir
    )
    return loop.run()


# ----------------------------------------------------------------------
# Recovery analysis
# ----------------------------------------------------------------------
def reference_optima(
    scenario: DriftScenario, seed: int
) -> list[float]:
    """Noise-free per-epoch reference optimum.

    One fixed Latin-hypercube pool (seeded independently of any tuning
    run), scored by the vectorized analytic engine at every epoch's
    workload time.  Both modes of a comparison are judged against the
    same references.
    """
    topology, cluster, codec, _ = _substrate(scenario, seed)
    model = AnalyticPerformanceModel(
        topology, cluster, schedule=scenario.schedule
    )
    rng = np.random.default_rng(derive_seed(seed, "refpool", 0))
    points = codec.space.latin_hypercube(REFERENCE_POOL, rng)
    configs = [
        codec.decode(codec.space.decode(np.asarray(point)))
        for point in codec.space.round_trip_batch(points)
    ]
    optima = []
    for epoch in range(scenario.epochs):
        t_epoch = epoch * scenario.epoch_duration_s
        runs = model.evaluate_noise_free_batch(
            configs, workload_time_s=t_epoch
        )
        values = [run.throughput_tps for run in runs if not run.failed]
        optima.append(max(values) if values else 0.0)
    return optima


def recovery_observations(
    result: ContinuousTuningResult,
    scenario: DriftScenario,
    references: Sequence[float],
    seed: int,
    *,
    fraction: float = RECOVERY_FRACTION,
) -> dict[str, object]:
    """Observations from first detection until within-``fraction`` of
    the post-drift reference optimum.

    Observed configurations are re-scored noise-free at their epoch's
    workload time, so a lucky noise draw cannot count as recovered.
    Returns the count (censored at the end of the run when recovery
    never happens) plus bookkeeping for the report.
    """
    if not result.detections:
        return {
            "detected": False,
            "detection_epoch": None,
            "recovery_observations": None,
            "recovered": False,
        }
    detection_epoch = result.detections[0]
    topology, cluster, codec, _ = _substrate(scenario, seed)
    model = AnalyticPerformanceModel(
        topology, cluster, schedule=scenario.schedule
    )
    count = 0
    for record in result.epochs:
        if record.index < detection_epoch:
            continue
        t_epoch = record.workload_time_s
        configs = [
            codec.decode(obs.config) for obs in record.observations
        ]
        runs = (
            model.evaluate_noise_free_batch(configs, workload_time_s=t_epoch)
            if configs
            else []
        )
        target = fraction * references[record.index]
        for obs, run in zip(record.observations, runs):
            count += 1
            if not run.failed and run.throughput_tps >= target:
                return {
                    "detected": True,
                    "detection_epoch": detection_epoch,
                    "recovery_observations": count,
                    "recovered": True,
                }
    return {
        "detected": True,
        "detection_epoch": detection_epoch,
        "recovery_observations": count,
        "recovered": False,
    }


def compare_modes(
    scenario: DriftScenario,
    seed: int,
    *,
    checkpoint_dir: str | Path | None = None,
) -> dict[str, object]:
    """Continuous vs. cold on one scenario, judged on shared references."""
    references = reference_optima(scenario, seed)
    summary: dict[str, object] = {
        "profile": scenario.name,
        "seed": seed,
        "epochs": scenario.epochs,
        "references": references,
    }
    for mode in ("continuous", "cold"):
        if checkpoint_dir is None:
            mode_dir: str | Path | None = None
        elif _is_sqlite_spec(checkpoint_dir):
            # One shared database; build_drift_loop keys the campaign
            # by (scenario, mode) cell inside it.
            mode_dir = checkpoint_dir
        else:
            mode_dir = Path(checkpoint_dir) / scenario.name / mode
        result = run_drift_scenario(
            scenario, mode, seed, checkpoint_dir=mode_dir
        )
        recovery = recovery_observations(result, scenario, references, seed)
        summary[mode] = {
            "observations": result.n_steps,
            "detections": list(result.detections),
            "best_value": result.best_value,
            **recovery,
        }
    cont = summary["continuous"]
    cold = summary["cold"]
    if (
        cont["recovery_observations"] is not None  # type: ignore[index]
        and cold["recovery_observations"] is not None  # type: ignore[index]
        and cold["recovery_observations"]  # type: ignore[index]
    ):
        summary["recovery_ratio"] = (
            cont["recovery_observations"] / cold["recovery_observations"]  # type: ignore[index, operator]
        )
    else:
        summary["recovery_ratio"] = None
    return summary


# ----------------------------------------------------------------------
# CLI (`repro-experiments drift ...`)
# ----------------------------------------------------------------------
def drift_main(argv: list[str]) -> int:
    """``repro-experiments drift`` — run the drift comparison."""
    import argparse

    from repro import obs
    from repro.experiments.report import render_table

    parser = argparse.ArgumentParser(
        prog="repro-experiments drift",
        description="Continuous tuning vs. cold restart under workload "
        "drift (docs/DRIFT.md).",
    )
    parser.add_argument(
        "--profile",
        choices=["diurnal", "flash", "skew", "all"],
        default="all",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny budgets: sanity-check wiring, not recovery quality",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", help="write results as JSON"
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR|DB",
        help="checkpoint each campaign under DIR (JSONL store) or into a "
        "*.db SQLite store, and resume partial runs",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="RUN.jsonl",
        help="record an observability trace (drift.* spans and events)",
    )
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    from repro.obs.sinks import NORMAL, QUIET

    progress = obs.ProgressSink(QUIET if args.quiet else NORMAL)
    scenarios = drift_scenarios()
    names = list(scenarios) if args.profile == "all" else [args.profile]
    summaries = []
    with obs.session(
        jsonl_path=args.trace,
        progress=progress,
        manifest={"command": "drift", "argv": list(argv)},
    ):
        for name in names:
            scenario = scenarios[name]
            if args.smoke:
                scenario = scenario.scaled(
                    epochs=4, steps_per_epoch=4, initial_steps=6
                )
            progress.info(f"(drift profile {name}: running both modes)")
            summaries.append(
                compare_modes(scenario, args.seed, checkpoint_dir=args.resume)
            )
    rows = []
    for summary in summaries:
        cont = summary["continuous"]
        cold = summary["cold"]
        ratio = summary["recovery_ratio"]
        rows.append(
            {
                "profile": summary["profile"],
                "detected (cont/cold)": (
                    f"{cont['detected']}/{cold['detected']}"
                ),
                "recovery obs (cont)": _fmt_recovery(cont),
                "recovery obs (cold)": _fmt_recovery(cold),
                "ratio": "-" if ratio is None else f"{ratio:.2f}",
            }
        )
    progress.result("== drift: continuous re-tune vs. cold restart ==")
    progress.result(render_table(rows))
    progress.result(
        f"(recovery = observations after first detection until a "
        f"configuration scores within "
        f"{100 * (1 - RECOVERY_FRACTION):.0f}% of the post-drift "
        f"reference optimum, noise-free)"
    )
    if args.json:
        payload = {
            "command": "drift",
            "seed": args.seed,
            "smoke": bool(args.smoke),
            "profiles": summaries,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2))
        progress.info(f"(wrote {args.json})")
    return 0


def _fmt_recovery(entry: Mapping[str, object]) -> str:
    if not entry.get("detected"):
        return "no detection"
    count = entry.get("recovery_observations")
    if not entry.get("recovered"):
        return f">{count} (censored)"
    return str(count)
