"""Studies: the paper's experiment grids as campaign strategy layers.

:class:`SyntheticStudy` runs the Figure 4–7 grid — four workload
conditions × three topology sizes × five strategies (pla, bo, ipla,
ibo, bo180) — with the paper's procedure: several independent passes,
best pass graphed, winner re-measured.  :class:`SundogStudy` runs the
Figure 8 arms over the Sundog topology.  Both cache their
:class:`~repro.core.history.TuningResult` lists so every dependent
figure derives from one set of runs.

This module owns *strategy*: which optimizer/codec pair a cell builds,
which seeds and step budgets it uses.  Orchestration — worker-budget
splitting, the process pool, obs events, failure aggregation — lives in
:mod:`repro.service.campaign`, and persistence — per-pass checkpoints,
finished-cell result caches, resume — in :mod:`repro.store` (a cell
spec's ``checkpoint_dir`` is an :func:`repro.store.open_store` spec, so
it accepts either a checkpoint directory or a SQLite ``*.db`` path).
The campaign names (:class:`~repro.service.campaign.StudyError`,
:func:`~repro.service.campaign.split_worker_budget`, ...) are
re-exported here for backward compatibility.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.baselines import Optimizer, ParallelLinearAscent
from repro.core.executor import EvaluationExecutor, make_executor
from repro.core.history import TuningResult, best_of
from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.core.resilience import RetryPolicy
from repro.core.seeding import derive_seed
from repro.experiments.presets import (
    MEASUREMENT_NOISE_SIGMA,
    SIZES,
    SYNTHETIC_BASE_CONFIG,
    SYNTHETIC_STRATEGIES,
    Budget,
    default_budget,
    default_cluster,
)
from repro.service.campaign import (
    CampaignRunner,
    CampaignSpec,
    StudyError,
    evaluation_failure_rows,
    run_cells,
    split_worker_budget,
)
from repro.storm.cluster import ClusterSpec
from repro.storm.config import TopologyConfig
from repro.storm.noise import GaussianNoise
from repro.storm.objective import StormObjective
from repro.storm.spaces import (
    HINT_PREFIX,
    ConfigCodec,
    InformedMultiplierCodec,
    ParallelismCodec,
    SundogParameterCodec,
    UniformHintCodec,
)
from repro.storm.topology import Topology
from repro.sundog import sundog_default_config, sundog_topology
from repro.topology_gen.suite import CONDITIONS, TopologyCondition, make_topology

__all__ = [
    "StudyError",
    "SundogArmSpec",
    "SundogStudy",
    "SyntheticCellSpec",
    "SyntheticStudy",
    "cell_seed",
    "evaluation_failure_rows",
    "make_synthetic_optimizer",
    "run_cells",
    "run_sundog_arm",
    "run_synthetic_cell",
    "split_worker_budget",
]

#: Sundog parameter sets of Figure 8 (paper labels).
SUNDOG_PARAM_SETS: tuple[str, ...] = ("h", "h bs bp", "bs bp cc")
SUNDOG_STRATEGIES: tuple[str, ...] = ("pla", "bo", "bo180")

#: The hint the paper fixes for the "bs bp cc" arm: the best value the
#: parallel linear ascent found for Sundog (§V-D).
SUNDOG_PLA_BEST_HINT = 11

#: Store study names the two grids persist under.
SYNTHETIC_STUDY_NAME = "synthetic"
SUNDOG_STUDY_NAME = "sundog"


def cell_seed(base_seed: int, *identity: object) -> int:
    """Derive an independent seed stream for one study cell.

    Thin alias for :func:`repro.core.seeding.derive_seed` (the shared
    blake2b scheme the evaluation executors also use), kept under the
    study-level name: every ``(condition, size, strategy)`` cell gets
    its own optimizer/measurement-noise stream — a plain ``seed * K +
    pass`` scheme hands every cell of the grid the *same* streams and
    correlates noise across the whole study.
    """
    return derive_seed(base_seed, *identity)


def _default_hint_config(codec: ParallelismCodec) -> dict[str, object]:
    """The all-ones starting point a production deployment begins from."""
    params: dict[str, object] = {
        f"{HINT_PREFIX}{name}": 1
        for name in codec.topology.topological_order()
    }
    if codec.include_max_tasks:
        params["max_tasks"] = codec.space["max_tasks"].high
    return params


def make_synthetic_optimizer(
    strategy: str,
    topology: Topology,
    cluster: ClusterSpec,
    base_config: TopologyConfig,
    steps: int,
    seed: int,
    *,
    fidelity: str | None = None,
) -> tuple[Optimizer, ConfigCodec]:
    """Optimizer + codec pair for one synthetic strategy.

    When ``fidelity`` is ``"analytic"``, the Bayesian strategies get a
    batch-analytic feasibility screener
    (:func:`repro.storm.analytic_batch.make_analytic_screener`): their
    snapped candidate pools are scored in one vectorized pass and
    infeasible configurations are dropped before gradient refinement.
    """

    def _screener(codec: ConfigCodec):
        if fidelity != "analytic":
            return None
        from repro.storm.analytic_batch import make_analytic_screener

        return make_analytic_screener(codec, topology, cluster)

    if strategy == "pla":
        codec = UniformHintCodec(topology, cluster, base_config)
        return (
            ParallelLinearAscent("uniform_hint", codec.ascent_values(steps)),
            codec,
        )
    if strategy == "ipla":
        codec = InformedMultiplierCodec(topology, cluster, base_config)
        return (
            ParallelLinearAscent("multiplier", codec.ascent_values(steps)),
            codec,
        )
    if strategy in ("bo", "bo180"):
        codec = ParallelismCodec(topology, cluster, base_config)
        optimizer = BayesianOptimizer(
            codec.space,
            seed=seed,
            initial_configs=[_default_hint_config(codec)],
            screener=_screener(codec),
        )
        return optimizer, codec
    if strategy == "ibo":
        codec = InformedMultiplierCodec(topology, cluster, base_config)
        optimizer = BayesianOptimizer(
            codec.space, seed=seed, screener=_screener(codec)
        )
        return optimizer, codec
    if strategy == "rs":
        # Random-search control (not in the paper's Figure 4; used by
        # the ablation benches and available for what-if studies).
        from repro.core.baselines import RandomSearchOptimizer

        codec = ParallelismCodec(topology, cluster, base_config)
        return RandomSearchOptimizer(codec.space, seed=seed), codec
    raise ValueError(f"unknown synthetic strategy {strategy!r}")


@dataclass(frozen=True)
class SyntheticCellSpec:
    """One (size, condition, strategy) cell of the synthetic grid.

    ``loop_workers`` > 1 runs the cell's tuning loops over a concurrent
    evaluation executor (``loop_executor`` kind, ``batch_size``
    in-flight proposals — default the worker count); per-evaluation
    seeds keep the observations order-independent.

    ``checkpoint_dir`` makes the cell crash-safe: it is an
    :func:`repro.store.open_store` spec (a directory or a ``*.db``
    file); each pass checkpoints its tuning loop to the store after
    every ``tell``, and a finished cell saves its results there so a
    resumed study skips it entirely (see docs/STORE.md).

    ``resilience`` applies a :class:`~repro.core.resilience.RetryPolicy`
    to the cell's evaluations (retry/timeout/circuit-breaker).
    """

    size: str
    condition: TopologyCondition
    strategy: str
    budget: Budget
    seed: int = 0
    fidelity: str = "analytic"
    loop_workers: int = 1
    loop_executor: str = "thread"
    batch_size: int | None = None
    checkpoint_dir: str | None = None
    resilience: RetryPolicy | None = None
    #: ``(owner, fencing token)`` when a fleet worker runs the cell
    #: under a store lease: the final results write is fenced, so a
    #: stale worker cannot clobber a newer owner's cell (docs/
    #: ROBUSTNESS.md).
    lease: tuple[str, int] | None = None


def _save_cell_results(store, study, cell, results, lease) -> None:
    """Persist a finished cell, fenced when run under a fleet lease."""
    if lease is not None:
        store.save_results_fenced(
            study, cell, results, owner=lease[0], token=int(lease[1])
        )
    else:
        store.save_results(study, cell, results)


def run_synthetic_cell(
    spec: SyntheticCellSpec,
    *,
    executor_factory: Callable[[StormObjective], EvaluationExecutor] | None = None,
) -> list[TuningResult]:
    """Run all passes of one cell (module-level for process pools).

    When ``executor_factory`` is given it is called with each pass's
    objective and the returned executor drives the loop regardless of
    ``spec.loop_workers`` — the packed campaign mode uses this to attach
    every cell to a shared :class:`~repro.core.executor.CrossCellBroker`.
    """
    store = None
    cell_label = f"{spec.condition.label}/{spec.size}/{spec.strategy}"
    if spec.checkpoint_dir:
        from repro.store import open_store

        store = open_store(spec.checkpoint_dir)
        cached = store.load_results(SYNTHETIC_STUDY_NAME, cell_label)
        if cached is not None:
            return cached
    topology = make_topology(spec.size, spec.condition)
    cluster = default_cluster()
    if spec.strategy == "bo180":
        steps = spec.budget.steps_extended
    elif spec.strategy in ("pla", "ipla"):
        steps = spec.budget.baseline_steps
    else:
        steps = spec.budget.steps
    results: list[TuningResult] = []
    base = cell_seed(spec.seed, spec.condition.label, spec.size, spec.strategy)
    cell_t0 = time.perf_counter()
    for pass_idx in range(spec.budget.passes):
        pass_seed = base + pass_idx
        slot = (
            store.checkpoint_slot(
                SYNTHETIC_STUDY_NAME, cell_label, f"pass{pass_idx}"
            )
            if store is not None
            else None
        )
        optimizer, codec = make_synthetic_optimizer(
            spec.strategy,
            topology,
            cluster,
            SYNTHETIC_BASE_CONFIG,
            steps,
            pass_seed,
            fidelity=spec.fidelity,
        )
        objective = StormObjective(
            topology,
            cluster,
            codec,
            fidelity=spec.fidelity,  # type: ignore[arg-type]
            noise=GaussianNoise(MEASUREMENT_NOISE_SIGMA),
            seed=pass_seed + 777,
        )
        if executor_factory is not None:
            executor: EvaluationExecutor | None = executor_factory(objective)
        elif spec.loop_workers > 1:
            executor = make_executor(
                spec.loop_executor, objective, max_workers=spec.loop_workers
            )
        else:
            executor = None
        try:
            loop = TuningLoop(
                objective,
                optimizer,
                max_steps=steps,
                repeat_best=spec.budget.repeat_best,
                strategy_name=spec.strategy,
                executor=executor,
                batch_size=spec.batch_size,
                # Checkpointed passes always get per-evaluation seeds:
                # resuming mid-pass in a fresh process must replay the
                # same noise streams the uninterrupted run would draw.
                seed=(
                    pass_seed + 991
                    if executor is not None or slot is not None
                    else None
                ),
                checkpoint=slot,
                resilience=spec.resilience,
            )
            result = loop.run()
        finally:
            if executor is not None:
                executor.close()
        result.metadata.update(
            {
                "size": spec.size,
                "condition": spec.condition.label,
                "pass": pass_idx,
                "cell_seed": pass_seed,
                "cell_seconds": time.perf_counter() - cell_t0,
            }
        )
        cell_t0 = time.perf_counter()
        results.append(result)
    if store is not None:
        _save_cell_results(
            store, SYNTHETIC_STUDY_NAME, cell_label, results, spec.lease
        )
    return results


class SyntheticStudy:
    """The Figure 4–7 grid over synthetic topologies.

    A thin strategy facade over :class:`~repro.service.campaign.
    CampaignRunner`: this class keeps the paper-facing API (keyed
    results, ``passes``/``best_pass``) while the campaign layer owns
    orchestration and the store layer persistence.

    ``n_jobs`` controls cell-level process parallelism directly;
    ``workers``, when given, is a *total* budget split between cell
    processes and in-loop evaluation concurrency via
    :func:`split_worker_budget` (overriding ``n_jobs``).
    """

    def __init__(
        self,
        budget: Budget | None = None,
        *,
        conditions: Sequence[TopologyCondition] = CONDITIONS,
        sizes: Sequence[str] = SIZES,
        strategies: Sequence[str] = SYNTHETIC_STRATEGIES,
        seed: int = 0,
        fidelity: str = "analytic",
        n_jobs: int = 1,
        workers: int | None = None,
        batch_size: int | None = None,
        checkpoint_dir: str | None = None,
        resilience: RetryPolicy | None = None,
    ) -> None:
        self.budget = budget or default_budget()
        self.conditions = tuple(conditions)
        self.sizes = tuple(sizes)
        self.strategies = tuple(strategies)
        self.seed = seed
        self.fidelity = fidelity
        self.workers = workers
        self.batch_size = batch_size
        self.checkpoint_dir = checkpoint_dir
        self.resilience = resilience
        self.campaign = CampaignSpec(
            study=SYNTHETIC_STUDY_NAME,
            budget=self.budget,
            seed=seed,
            fidelity=fidelity,
            workers=workers,
            n_jobs=n_jobs,
            batch_size=batch_size,
            store=checkpoint_dir,
            resilience=resilience,
            conditions=self.conditions,
            sizes=self.sizes,
            strategies=self.strategies,
        )
        self._runner = CampaignRunner(self.campaign)
        self.n_jobs = self._runner.n_jobs
        self.loop_workers = self._runner.loop_workers
        self.results: dict[
            tuple[TopologyCondition, str, str], list[TuningResult]
        ] = {}

    def specs(self) -> list[SyntheticCellSpec]:
        return self._runner.cell_specs()[0]  # type: ignore[return-value]

    def run(self) -> "SyntheticStudy":
        specs = self.specs()
        by_label = self._runner.run()
        for spec in specs:
            label = f"{spec.condition.label}/{spec.size}/{spec.strategy}"
            self.results[(spec.condition, spec.size, spec.strategy)] = (
                by_label[label]
            )
        return self

    # ------------------------------------------------------------------
    def passes(
        self, condition: TopologyCondition, size: str, strategy: str
    ) -> list[TuningResult]:
        return self.results[(condition, size, strategy)]

    def best_pass(
        self, condition: TopologyCondition, size: str, strategy: str
    ) -> TuningResult:
        """The better of the passes (the paper graphs this one)."""
        return best_of(self.passes(condition, size, strategy))


@dataclass(frozen=True)
class SundogArmSpec:
    """One Figure 8 arm: a strategy on a parameter set."""

    strategy: str  # 'pla', 'bo', 'bo180'
    param_set: str  # 'h', 'h bs bp', 'bs bp cc'
    budget: Budget
    seed: int = 0
    fidelity: str = "analytic"
    loop_workers: int = 1
    loop_executor: str = "thread"
    batch_size: int | None = None
    checkpoint_dir: str | None = None
    resilience: RetryPolicy | None = None
    #: ``(owner, fencing token)`` for fleet workers; see
    #: :class:`SyntheticCellSpec`.
    lease: tuple[str, int] | None = None

    @property
    def label(self) -> str:
        return f"{self.strategy}.{self.param_set}"


def _sundog_codec(
    param_set: str,
    topology: Topology,
    cluster: ClusterSpec,
    base_config: TopologyConfig,
) -> SundogParameterCodec:
    include = {
        "h": ("h",),
        "h bs bp": ("h", "bs", "bp"),
        "bs bp cc": ("bs", "bp", "cc"),
    }[param_set]
    fixed_hint = SUNDOG_PLA_BEST_HINT if "h" not in include else None
    return SundogParameterCodec(
        topology,
        cluster,
        base_config,
        include=include,
        fixed_hint=fixed_hint,
    )


def run_sundog_arm(
    spec: SundogArmSpec,
    *,
    executor_factory: Callable[[StormObjective], EvaluationExecutor] | None = None,
) -> list[TuningResult]:
    """Run all passes of one Figure 8 arm.

    ``executor_factory`` behaves as in :func:`run_synthetic_cell`.
    """
    store = None
    cell_label = f"sundog_{spec.label}"
    if spec.checkpoint_dir:
        from repro.store import open_store

        store = open_store(spec.checkpoint_dir)
        cached = store.load_results(SUNDOG_STUDY_NAME, cell_label)
        if cached is not None:
            return cached
    topology = sundog_topology()
    cluster = default_cluster()
    base_config = sundog_default_config(cluster.total_workers)
    if spec.strategy == "bo180":
        steps = spec.budget.steps_extended
    elif spec.strategy == "pla":
        steps = spec.budget.baseline_steps
    else:
        steps = spec.budget.steps
    results: list[TuningResult] = []
    base = cell_seed(spec.seed, spec.strategy, spec.param_set)
    cell_t0 = time.perf_counter()
    for pass_idx in range(spec.budget.passes):
        pass_seed = base + pass_idx
        slot = (
            store.checkpoint_slot(
                SUNDOG_STUDY_NAME, cell_label, f"pass{pass_idx}"
            )
            if store is not None
            else None
        )
        if spec.strategy == "pla":
            if spec.param_set != "h":
                raise ValueError(
                    "the parallel linear ascent only searches parallelism hints"
                )
            ucodec = UniformHintCodec(topology, cluster, base_config)
            codec: ConfigCodec = ucodec
            optimizer: Optimizer = ParallelLinearAscent(
                "uniform_hint", ucodec.ascent_values(steps)
            )
        else:
            scodec = _sundog_codec(spec.param_set, topology, cluster, base_config)
            codec = scodec
            initial = _sundog_default_params(scodec, base_config)
            optimizer = BayesianOptimizer(
                scodec.space, seed=pass_seed, initial_configs=[initial]
            )
        objective = StormObjective(
            topology,
            cluster,
            codec,
            fidelity=spec.fidelity,  # type: ignore[arg-type]
            noise=GaussianNoise(MEASUREMENT_NOISE_SIGMA),
            seed=pass_seed + 131,
        )
        if executor_factory is not None:
            executor: EvaluationExecutor | None = executor_factory(objective)
        elif spec.loop_workers > 1:
            executor = make_executor(
                spec.loop_executor, objective, max_workers=spec.loop_workers
            )
        else:
            executor = None
        try:
            loop = TuningLoop(
                objective,
                optimizer,
                max_steps=steps,
                repeat_best=spec.budget.repeat_best,
                strategy_name=spec.label,
                executor=executor,
                batch_size=spec.batch_size,
                seed=(
                    pass_seed + 991
                    if executor is not None or slot is not None
                    else None
                ),
                checkpoint=slot,
                resilience=spec.resilience,
            )
            result = loop.run()
        finally:
            if executor is not None:
                executor.close()
        result.metadata.update(
            {
                "param_set": spec.param_set,
                "strategy": spec.strategy,
                "pass": pass_idx,
                "cell_seed": pass_seed,
                "cell_seconds": time.perf_counter() - cell_t0,
            }
        )
        cell_t0 = time.perf_counter()
        results.append(result)
    if store is not None:
        _save_cell_results(
            store, SUNDOG_STUDY_NAME, cell_label, results, spec.lease
        )
    return results


def _sundog_default_params(
    codec: SundogParameterCodec, base_config: TopologyConfig
) -> dict[str, object]:
    """Encode the developers' manual configuration as a starting point."""
    params: dict[str, object] = {}
    if "h" in codec.include:
        for name in codec.topology.topological_order():
            params[f"{HINT_PREFIX}{name}"] = 1
        params["max_tasks"] = codec.space["max_tasks"].high
    if "bs" in codec.include:
        params["batch_size"] = base_config.batch_size
    if "bp" in codec.include:
        params["batch_parallelism"] = base_config.batch_parallelism
    if "cc" in codec.include:
        params["worker_threads"] = base_config.worker_threads
        params["receiver_threads"] = base_config.receiver_threads
        params["ackers"] = base_config.effective_ackers()
    return params


#: The Figure 8 arms: pla searches hints only; the Bayesian optimizer
#: additionally tunes the batch and concurrency parameter sets.
SUNDOG_ARMS: tuple[tuple[str, str], ...] = (
    ("pla", "h"),
    ("bo", "h"),
    ("bo180", "h"),
    ("bo", "h bs bp"),
    ("bo180", "h bs bp"),
    ("bo", "bs bp cc"),
    ("bo180", "bs bp cc"),
)


class SundogStudy:
    """The Figure 8 arms over the Sundog topology."""

    def __init__(
        self,
        budget: Budget | None = None,
        *,
        arms: Iterable[tuple[str, str]] = SUNDOG_ARMS,
        seed: int = 0,
        fidelity: str = "analytic",
        n_jobs: int = 1,
        workers: int | None = None,
        batch_size: int | None = None,
        checkpoint_dir: str | None = None,
        resilience: RetryPolicy | None = None,
    ) -> None:
        self.budget = budget or default_budget()
        self.arms = tuple(arms)
        self.seed = seed
        self.fidelity = fidelity
        self.workers = workers
        self.batch_size = batch_size
        self.checkpoint_dir = checkpoint_dir
        self.resilience = resilience
        self.campaign = CampaignSpec(
            study=SUNDOG_STUDY_NAME,
            budget=self.budget,
            seed=seed,
            fidelity=fidelity,
            workers=workers,
            n_jobs=n_jobs,
            batch_size=batch_size,
            store=checkpoint_dir,
            resilience=resilience,
            arms=self.arms,
        )
        self._runner = CampaignRunner(self.campaign)
        self.n_jobs = self._runner.n_jobs
        self.loop_workers = self._runner.loop_workers
        self.results: dict[tuple[str, str], list[TuningResult]] = {}

    def specs(self) -> list[SundogArmSpec]:
        return self._runner.cell_specs()[0]  # type: ignore[return-value]

    def run(self) -> "SundogStudy":
        specs = self.specs()
        by_label = self._runner.run()
        for spec in specs:
            self.results[(spec.strategy, spec.param_set)] = by_label[spec.label]
        return self

    def passes(self, strategy: str, param_set: str) -> list[TuningResult]:
        return self.results[(strategy, param_set)]

    def best_pass(self, strategy: str, param_set: str) -> TuningResult:
        return best_of(self.passes(strategy, param_set))
