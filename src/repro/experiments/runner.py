"""Studies: orchestrate tuning runs over the paper's experiment grids.

:class:`SyntheticStudy` runs the Figure 4–7 grid — four workload
conditions × three topology sizes × five strategies (pla, bo, ipla,
ibo, bo180) — with the paper's procedure: several independent passes,
best pass graphed, winner re-measured.  :class:`SundogStudy` runs the
Figure 8 arms over the Sundog topology.  Both cache their
:class:`~repro.core.history.TuningResult` lists so every dependent
figure derives from one set of runs, and support process-parallel
execution of independent cells.
"""

from __future__ import annotations

import json
import re
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.core.baselines import Optimizer, ParallelLinearAscent
from repro.core.checkpoint import atomic_write_text
from repro.core.executor import make_executor
from repro.core.history import TuningResult, best_of
from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.core.seeding import derive_seed
from repro.obs import runtime as obs_runtime
from repro.experiments.presets import (
    MEASUREMENT_NOISE_SIGMA,
    SIZES,
    SYNTHETIC_BASE_CONFIG,
    SYNTHETIC_STRATEGIES,
    Budget,
    default_budget,
    default_cluster,
)
from repro.storm.cluster import ClusterSpec
from repro.storm.config import TopologyConfig
from repro.storm.noise import GaussianNoise
from repro.storm.objective import StormObjective
from repro.storm.spaces import (
    HINT_PREFIX,
    ConfigCodec,
    InformedMultiplierCodec,
    ParallelismCodec,
    SundogParameterCodec,
    UniformHintCodec,
)
from repro.storm.topology import Topology
from repro.sundog import sundog_default_config, sundog_topology
from repro.topology_gen.suite import CONDITIONS, TopologyCondition, make_topology

#: Sundog parameter sets of Figure 8 (paper labels).
SUNDOG_PARAM_SETS: tuple[str, ...] = ("h", "h bs bp", "bs bp cc")
SUNDOG_STRATEGIES: tuple[str, ...] = ("pla", "bo", "bo180")

#: The hint the paper fixes for the "bs bp cc" arm: the best value the
#: parallel linear ascent found for Sundog (§V-D).
SUNDOG_PLA_BEST_HINT = 11


def cell_seed(base_seed: int, *identity: object) -> int:
    """Derive an independent seed stream for one study cell.

    Thin alias for :func:`repro.core.seeding.derive_seed` (the shared
    blake2b scheme the evaluation executors also use), kept under the
    study-level name: every ``(condition, size, strategy)`` cell gets
    its own optimizer/measurement-noise stream — a plain ``seed * K +
    pass`` scheme hands every cell of the grid the *same* streams and
    correlates noise across the whole study.
    """
    return derive_seed(base_seed, *identity)


def split_worker_budget(workers: int, n_cells: int) -> tuple[int, int]:
    """Split one worker budget between cell processes and loop threads.

    Returns ``(n_jobs, loop_workers)``: cells are fully independent, so
    the budget goes to cell-level process parallelism first; whatever
    head-room remains (budget beyond the cell count) is spent *inside*
    each cell as concurrent in-loop evaluations.  ``workers=8`` over 24
    cells → 8 cell processes, serial loops; over 2 cells → 2 processes
    with 4 in-flight evaluations each.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    n_jobs = min(workers, max(1, n_cells))
    return n_jobs, max(1, workers // n_jobs)


class StudyError(RuntimeError):
    """One or more study cells raised instead of returning results.

    Raised by :func:`_run_cells` *after* every cell has been attempted,
    so a single bad cell cannot waste the others' compute.  ``failures``
    is a list of ``(cell_label, error_description)`` pairs the CLI
    renders as a table before exiting nonzero.
    """

    def __init__(self, study: str, failures: Sequence[tuple[str, str]]) -> None:
        self.study = study
        self.failures = list(failures)
        cells = ", ".join(label for label, _ in self.failures)
        super().__init__(
            f"{len(self.failures)} {study} cell(s) failed: {cells}"
        )


def _result_label(key: object) -> str:
    if isinstance(key, tuple):
        return "/".join(
            getattr(part, "label", None) or str(part) for part in key
        )
    return getattr(key, "label", None) or str(key)


def evaluation_failure_rows(study: object) -> list[dict[str, object]]:
    """Runs whose evaluations *all* failed, as CLI-table rows.

    A run that never produced a single successful measurement has no
    best configuration worth reporting — the paper's procedure (graph
    the best pass, re-measure the winner) is meaningless for it.  The
    CLI prints these rows and exits nonzero so automation notices.
    """
    rows: list[dict[str, object]] = []
    results_by_key = getattr(study, "results", {})
    for key, results in results_by_key.items():
        label = _result_label(key)
        for result in results:
            obs = result.observations
            if not obs or not all(o.failed for o in obs):
                continue
            rows.append(
                {
                    "cell": label,
                    "pass": result.metadata.get("pass", ""),
                    "failed_steps": len(obs),
                    "last_reason": obs[-1].failure_reason or "unknown",
                }
            )
    return rows


def _sanitize_label(label: str) -> str:
    """Cell labels contain ``/`` and spaces; make them path-safe."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label)


def _load_done_cell(path: Path) -> list[TuningResult] | None:
    """Load a completed cell's cached results; None when absent/bad."""
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text())
        return [TuningResult.from_dict(entry) for entry in payload]
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None


def _save_done_cell(path: Path, results: list[TuningResult]) -> None:
    atomic_write_text(
        path, json.dumps([r.as_dict() for r in results], default=str)
    )


def _worker_obs_off() -> None:
    """Disable obs in pool workers (module-level for picklability).

    Under the fork start method a worker inherits the parent's live
    context — including the JSONL sink's file handle, whose shared
    offset makes concurrent writes from several processes interleave.
    Workers run disabled instead and report home through the metrics
    snapshot in ``TuningResult.metadata["obs_metrics"]``.
    """
    obs_runtime.deactivate()


def _run_cells(
    study_name: str,
    specs: Sequence[object],
    labels: Sequence[str],
    cell_fn: Callable[..., list[TuningResult]],
    n_jobs: int,
    budget: Budget,
) -> list[list[TuningResult]]:
    """Run every study cell, reporting through the active obs context.

    Emits ``study_start`` / ``cell_start`` / ``cell_finish`` /
    ``study_finish`` events (the progress sink renders them with a
    per-cell ETA) and, for process-parallel execution, merges each
    worker cell's metrics snapshot back into the session registry —
    worker processes carry their own (disabled) obs state, so their
    per-run registries come home inside ``TuningResult.metadata``.

    A cell that raises is recorded (``cell_error`` event) while the
    remaining cells keep running; once every cell has been attempted a
    :class:`StudyError` aggregating the failures is raised.
    """
    ctx = obs_runtime.current()
    ctx.tracer.event(
        "study_start",
        study=study_name,
        n_cells=len(specs),
        budget=asdict(budget),
    )
    outcomes: list[list[TuningResult]] = [[] for _ in specs]
    failures: list[tuple[str, str]] = []

    def cell_failed(i: int, exc: Exception) -> None:
        detail = f"{type(exc).__name__}: {exc}"
        failures.append((labels[i], detail))
        ctx.tracer.event(
            "cell_error", study=study_name, cell=labels[i], error=detail
        )

    if n_jobs > 1:
        submitted = time.perf_counter()
        with ProcessPoolExecutor(
            max_workers=n_jobs, initializer=_worker_obs_off
        ) as pool:
            futures = {}
            for i, spec in enumerate(specs):
                ctx.tracer.event(
                    "cell_start",
                    study=study_name,
                    cell=labels[i],
                    seed=getattr(spec, "seed", None),
                )
                futures[pool.submit(cell_fn, spec)] = i
            for future in as_completed(futures):
                i = futures[future]
                try:
                    outcomes[i] = future.result()
                except Exception as exc:
                    cell_failed(i, exc)
                    continue
                seconds = _cell_seconds(outcomes[i], time.perf_counter() - submitted)
                for result in outcomes[i]:
                    snap = result.metadata.get("obs_metrics")
                    if snap is not None:
                        ctx.metrics.merge_snapshot(snap)  # type: ignore[arg-type]
                ctx.tracer.event(
                    "cell_finish",
                    study=study_name,
                    cell=labels[i],
                    seconds=seconds,
                    best=max(r.best_value for r in outcomes[i]),
                )
    else:
        for i, spec in enumerate(specs):
            ctx.tracer.event(
                "cell_start",
                study=study_name,
                cell=labels[i],
                seed=getattr(spec, "seed", None),
            )
            t0 = time.perf_counter()
            try:
                outcomes[i] = cell_fn(spec)
            except Exception as exc:
                cell_failed(i, exc)
                continue
            ctx.tracer.event(
                "cell_finish",
                study=study_name,
                cell=labels[i],
                seconds=time.perf_counter() - t0,
                best=max(r.best_value for r in outcomes[i]),
            )
    ctx.tracer.event(
        "study_finish",
        study=study_name,
        n_cells=len(specs),
        n_failed_cells=len(failures),
    )
    if failures:
        raise StudyError(study_name, failures)
    return outcomes


def _cell_seconds(results: list[TuningResult], fallback: float) -> float:
    """Per-cell wall time, preferring the cell's own in-process stamp."""
    stamped = [
        float(r.metadata["cell_seconds"])  # type: ignore[arg-type]
        for r in results
        if "cell_seconds" in r.metadata
    ]
    return sum(stamped) if stamped else fallback


def _default_hint_config(codec: ParallelismCodec) -> dict[str, object]:
    """The all-ones starting point a production deployment begins from."""
    params: dict[str, object] = {
        f"{HINT_PREFIX}{name}": 1
        for name in codec.topology.topological_order()
    }
    if codec.include_max_tasks:
        params["max_tasks"] = codec.space["max_tasks"].high
    return params


def make_synthetic_optimizer(
    strategy: str,
    topology: Topology,
    cluster: ClusterSpec,
    base_config: TopologyConfig,
    steps: int,
    seed: int,
    *,
    fidelity: str | None = None,
) -> tuple[Optimizer, ConfigCodec]:
    """Optimizer + codec pair for one synthetic strategy.

    When ``fidelity`` is ``"analytic"``, the Bayesian strategies get a
    batch-analytic feasibility screener
    (:func:`repro.storm.analytic_batch.make_analytic_screener`): their
    snapped candidate pools are scored in one vectorized pass and
    infeasible configurations are dropped before gradient refinement.
    """

    def _screener(codec: ConfigCodec):
        if fidelity != "analytic":
            return None
        from repro.storm.analytic_batch import make_analytic_screener

        return make_analytic_screener(codec, topology, cluster)

    if strategy == "pla":
        codec = UniformHintCodec(topology, cluster, base_config)
        return (
            ParallelLinearAscent("uniform_hint", codec.ascent_values(steps)),
            codec,
        )
    if strategy == "ipla":
        codec = InformedMultiplierCodec(topology, cluster, base_config)
        return (
            ParallelLinearAscent("multiplier", codec.ascent_values(steps)),
            codec,
        )
    if strategy in ("bo", "bo180"):
        codec = ParallelismCodec(topology, cluster, base_config)
        optimizer = BayesianOptimizer(
            codec.space,
            seed=seed,
            initial_configs=[_default_hint_config(codec)],
            screener=_screener(codec),
        )
        return optimizer, codec
    if strategy == "ibo":
        codec = InformedMultiplierCodec(topology, cluster, base_config)
        optimizer = BayesianOptimizer(
            codec.space, seed=seed, screener=_screener(codec)
        )
        return optimizer, codec
    if strategy == "rs":
        # Random-search control (not in the paper's Figure 4; used by
        # the ablation benches and available for what-if studies).
        from repro.core.baselines import RandomSearchOptimizer

        codec = ParallelismCodec(topology, cluster, base_config)
        return RandomSearchOptimizer(codec.space, seed=seed), codec
    raise ValueError(f"unknown synthetic strategy {strategy!r}")


@dataclass(frozen=True)
class SyntheticCellSpec:
    """One (size, condition, strategy) cell of the synthetic grid.

    ``loop_workers`` > 1 runs the cell's tuning loops over a concurrent
    evaluation executor (``loop_executor`` kind, ``batch_size``
    in-flight proposals — default the worker count); per-evaluation
    seeds keep the observations order-independent.

    ``checkpoint_dir`` makes the cell crash-safe: each pass checkpoints
    its tuning loop to ``<dir>/<cell>.pass<N>.jsonl`` after every
    ``tell``, and a finished cell writes ``<dir>/<cell>.done.json`` so
    a resumed study skips it entirely (see docs/ROBUSTNESS.md).
    """

    size: str
    condition: TopologyCondition
    strategy: str
    budget: Budget
    seed: int = 0
    fidelity: str = "analytic"
    loop_workers: int = 1
    loop_executor: str = "thread"
    batch_size: int | None = None
    checkpoint_dir: str | None = None


def run_synthetic_cell(spec: SyntheticCellSpec) -> list[TuningResult]:
    """Run all passes of one cell (module-level for process pools)."""
    ckpt_dir = Path(spec.checkpoint_dir) if spec.checkpoint_dir else None
    cell_stem = _sanitize_label(
        f"{spec.condition.label}/{spec.size}/{spec.strategy}"
    )
    done_path = None
    if ckpt_dir is not None:
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        done_path = ckpt_dir / f"{cell_stem}.done.json"
        cached = _load_done_cell(done_path)
        if cached is not None:
            return cached
    topology = make_topology(spec.size, spec.condition)
    cluster = default_cluster()
    if spec.strategy == "bo180":
        steps = spec.budget.steps_extended
    elif spec.strategy in ("pla", "ipla"):
        steps = spec.budget.baseline_steps
    else:
        steps = spec.budget.steps
    results: list[TuningResult] = []
    base = cell_seed(spec.seed, spec.condition.label, spec.size, spec.strategy)
    cell_t0 = time.perf_counter()
    for pass_idx in range(spec.budget.passes):
        pass_seed = base + pass_idx
        checkpoint_path = (
            ckpt_dir / f"{cell_stem}.pass{pass_idx}.jsonl"
            if ckpt_dir is not None
            else None
        )
        optimizer, codec = make_synthetic_optimizer(
            spec.strategy,
            topology,
            cluster,
            SYNTHETIC_BASE_CONFIG,
            steps,
            pass_seed,
            fidelity=spec.fidelity,
        )
        objective = StormObjective(
            topology,
            cluster,
            codec,
            fidelity=spec.fidelity,  # type: ignore[arg-type]
            noise=GaussianNoise(MEASUREMENT_NOISE_SIGMA),
            seed=pass_seed + 777,
        )
        executor = (
            make_executor(
                spec.loop_executor, objective, max_workers=spec.loop_workers
            )
            if spec.loop_workers > 1
            else None
        )
        try:
            loop = TuningLoop(
                objective,
                optimizer,
                max_steps=steps,
                repeat_best=spec.budget.repeat_best,
                strategy_name=spec.strategy,
                executor=executor,
                batch_size=spec.batch_size,
                # Checkpointed passes always get per-evaluation seeds:
                # resuming mid-pass in a fresh process must replay the
                # same noise streams the uninterrupted run would draw.
                seed=(
                    pass_seed + 991
                    if executor is not None or checkpoint_path is not None
                    else None
                ),
                checkpoint_path=checkpoint_path,
            )
            result = loop.run()
        finally:
            if executor is not None:
                executor.close()
        result.metadata.update(
            {
                "size": spec.size,
                "condition": spec.condition.label,
                "pass": pass_idx,
                "cell_seed": pass_seed,
                "cell_seconds": time.perf_counter() - cell_t0,
            }
        )
        cell_t0 = time.perf_counter()
        results.append(result)
    if done_path is not None:
        _save_done_cell(done_path, results)
    return results


class SyntheticStudy:
    """The Figure 4–7 grid over synthetic topologies.

    ``n_jobs`` controls cell-level process parallelism directly;
    ``workers``, when given, is a *total* budget split between cell
    processes and in-loop evaluation concurrency via
    :func:`split_worker_budget` (overriding ``n_jobs``).
    """

    def __init__(
        self,
        budget: Budget | None = None,
        *,
        conditions: Sequence[TopologyCondition] = CONDITIONS,
        sizes: Sequence[str] = SIZES,
        strategies: Sequence[str] = SYNTHETIC_STRATEGIES,
        seed: int = 0,
        fidelity: str = "analytic",
        n_jobs: int = 1,
        workers: int | None = None,
        batch_size: int | None = None,
        checkpoint_dir: str | None = None,
    ) -> None:
        self.budget = budget or default_budget()
        self.conditions = tuple(conditions)
        self.sizes = tuple(sizes)
        self.strategies = tuple(strategies)
        self.seed = seed
        self.fidelity = fidelity
        self.workers = workers
        self.batch_size = batch_size
        self.checkpoint_dir = checkpoint_dir
        if workers is not None:
            n_cells = len(self.conditions) * len(self.sizes) * len(self.strategies)
            self.n_jobs, self.loop_workers = split_worker_budget(workers, n_cells)
        else:
            self.n_jobs = max(1, n_jobs)
            self.loop_workers = 1
        self.results: dict[
            tuple[TopologyCondition, str, str], list[TuningResult]
        ] = {}

    def specs(self) -> list[SyntheticCellSpec]:
        return [
            SyntheticCellSpec(
                size=size,
                condition=condition,
                strategy=strategy,
                budget=self.budget,
                seed=self.seed,
                fidelity=self.fidelity,
                loop_workers=self.loop_workers,
                batch_size=self.batch_size,
                checkpoint_dir=self.checkpoint_dir,
            )
            for condition in self.conditions
            for size in self.sizes
            for strategy in self.strategies
        ]

    def run(self) -> "SyntheticStudy":
        specs = self.specs()
        labels = [
            f"{spec.condition.label}/{spec.size}/{spec.strategy}" for spec in specs
        ]
        outcomes = _run_cells(
            "synthetic", specs, labels, run_synthetic_cell, self.n_jobs, self.budget
        )
        for spec, results in zip(specs, outcomes):
            self.results[(spec.condition, spec.size, spec.strategy)] = results
        return self

    # ------------------------------------------------------------------
    def passes(
        self, condition: TopologyCondition, size: str, strategy: str
    ) -> list[TuningResult]:
        return self.results[(condition, size, strategy)]

    def best_pass(
        self, condition: TopologyCondition, size: str, strategy: str
    ) -> TuningResult:
        """The better of the passes (the paper graphs this one)."""
        return best_of(self.passes(condition, size, strategy))


@dataclass(frozen=True)
class SundogArmSpec:
    """One Figure 8 arm: a strategy on a parameter set."""

    strategy: str  # 'pla', 'bo', 'bo180'
    param_set: str  # 'h', 'h bs bp', 'bs bp cc'
    budget: Budget
    seed: int = 0
    fidelity: str = "analytic"
    loop_workers: int = 1
    loop_executor: str = "thread"
    batch_size: int | None = None
    checkpoint_dir: str | None = None

    @property
    def label(self) -> str:
        return f"{self.strategy}.{self.param_set}"


def _sundog_codec(
    param_set: str,
    topology: Topology,
    cluster: ClusterSpec,
    base_config: TopologyConfig,
) -> SundogParameterCodec:
    include = {
        "h": ("h",),
        "h bs bp": ("h", "bs", "bp"),
        "bs bp cc": ("bs", "bp", "cc"),
    }[param_set]
    fixed_hint = SUNDOG_PLA_BEST_HINT if "h" not in include else None
    return SundogParameterCodec(
        topology,
        cluster,
        base_config,
        include=include,
        fixed_hint=fixed_hint,
    )


def run_sundog_arm(spec: SundogArmSpec) -> list[TuningResult]:
    """Run all passes of one Figure 8 arm."""
    ckpt_dir = Path(spec.checkpoint_dir) if spec.checkpoint_dir else None
    cell_stem = _sanitize_label(f"sundog_{spec.label}")
    done_path = None
    if ckpt_dir is not None:
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        done_path = ckpt_dir / f"{cell_stem}.done.json"
        cached = _load_done_cell(done_path)
        if cached is not None:
            return cached
    topology = sundog_topology()
    cluster = default_cluster()
    base_config = sundog_default_config(cluster.total_workers)
    if spec.strategy == "bo180":
        steps = spec.budget.steps_extended
    elif spec.strategy == "pla":
        steps = spec.budget.baseline_steps
    else:
        steps = spec.budget.steps
    results: list[TuningResult] = []
    base = cell_seed(spec.seed, spec.strategy, spec.param_set)
    cell_t0 = time.perf_counter()
    for pass_idx in range(spec.budget.passes):
        pass_seed = base + pass_idx
        checkpoint_path = (
            ckpt_dir / f"{cell_stem}.pass{pass_idx}.jsonl"
            if ckpt_dir is not None
            else None
        )
        if spec.strategy == "pla":
            if spec.param_set != "h":
                raise ValueError(
                    "the parallel linear ascent only searches parallelism hints"
                )
            ucodec = UniformHintCodec(topology, cluster, base_config)
            codec: ConfigCodec = ucodec
            optimizer: Optimizer = ParallelLinearAscent(
                "uniform_hint", ucodec.ascent_values(steps)
            )
        else:
            scodec = _sundog_codec(spec.param_set, topology, cluster, base_config)
            codec = scodec
            initial = _sundog_default_params(scodec, base_config)
            optimizer = BayesianOptimizer(
                scodec.space, seed=pass_seed, initial_configs=[initial]
            )
        objective = StormObjective(
            topology,
            cluster,
            codec,
            fidelity=spec.fidelity,  # type: ignore[arg-type]
            noise=GaussianNoise(MEASUREMENT_NOISE_SIGMA),
            seed=pass_seed + 131,
        )
        executor = (
            make_executor(
                spec.loop_executor, objective, max_workers=spec.loop_workers
            )
            if spec.loop_workers > 1
            else None
        )
        try:
            loop = TuningLoop(
                objective,
                optimizer,
                max_steps=steps,
                repeat_best=spec.budget.repeat_best,
                strategy_name=spec.label,
                executor=executor,
                batch_size=spec.batch_size,
                seed=(
                    pass_seed + 991
                    if executor is not None or checkpoint_path is not None
                    else None
                ),
                checkpoint_path=checkpoint_path,
            )
            result = loop.run()
        finally:
            if executor is not None:
                executor.close()
        result.metadata.update(
            {
                "param_set": spec.param_set,
                "strategy": spec.strategy,
                "pass": pass_idx,
                "cell_seed": pass_seed,
                "cell_seconds": time.perf_counter() - cell_t0,
            }
        )
        cell_t0 = time.perf_counter()
        results.append(result)
    if done_path is not None:
        _save_done_cell(done_path, results)
    return results


def _sundog_default_params(
    codec: SundogParameterCodec, base_config: TopologyConfig
) -> dict[str, object]:
    """Encode the developers' manual configuration as a starting point."""
    params: dict[str, object] = {}
    if "h" in codec.include:
        for name in codec.topology.topological_order():
            params[f"{HINT_PREFIX}{name}"] = 1
        params["max_tasks"] = codec.space["max_tasks"].high
    if "bs" in codec.include:
        params["batch_size"] = base_config.batch_size
    if "bp" in codec.include:
        params["batch_parallelism"] = base_config.batch_parallelism
    if "cc" in codec.include:
        params["worker_threads"] = base_config.worker_threads
        params["receiver_threads"] = base_config.receiver_threads
        params["ackers"] = base_config.effective_ackers()
    return params


#: The Figure 8 arms: pla searches hints only; the Bayesian optimizer
#: additionally tunes the batch and concurrency parameter sets.
SUNDOG_ARMS: tuple[tuple[str, str], ...] = (
    ("pla", "h"),
    ("bo", "h"),
    ("bo180", "h"),
    ("bo", "h bs bp"),
    ("bo180", "h bs bp"),
    ("bo", "bs bp cc"),
    ("bo180", "bs bp cc"),
)


class SundogStudy:
    """The Figure 8 arms over the Sundog topology."""

    def __init__(
        self,
        budget: Budget | None = None,
        *,
        arms: Iterable[tuple[str, str]] = SUNDOG_ARMS,
        seed: int = 0,
        fidelity: str = "analytic",
        n_jobs: int = 1,
        workers: int | None = None,
        batch_size: int | None = None,
        checkpoint_dir: str | None = None,
    ) -> None:
        self.budget = budget or default_budget()
        self.arms = tuple(arms)
        self.seed = seed
        self.fidelity = fidelity
        self.workers = workers
        self.batch_size = batch_size
        self.checkpoint_dir = checkpoint_dir
        if workers is not None:
            self.n_jobs, self.loop_workers = split_worker_budget(
                workers, len(self.arms)
            )
        else:
            self.n_jobs = max(1, n_jobs)
            self.loop_workers = 1
        self.results: dict[tuple[str, str], list[TuningResult]] = {}

    def specs(self) -> list[SundogArmSpec]:
        return [
            SundogArmSpec(
                strategy=strategy,
                param_set=param_set,
                budget=self.budget,
                seed=self.seed,
                fidelity=self.fidelity,
                loop_workers=self.loop_workers,
                batch_size=self.batch_size,
                checkpoint_dir=self.checkpoint_dir,
            )
            for strategy, param_set in self.arms
        ]

    def run(self) -> "SundogStudy":
        specs = self.specs()
        labels = [spec.label for spec in specs]
        outcomes = _run_cells(
            "sundog", specs, labels, run_sundog_arm, self.n_jobs, self.budget
        )
        for spec, results in zip(specs, outcomes):
            self.results[(spec.strategy, spec.param_set)] = results
        return self

    def passes(self, strategy: str, param_set: str) -> list[TuningResult]:
        return self.results[(strategy, param_set)]

    def best_pass(self, strategy: str, param_set: str) -> TuningResult:
        return best_of(self.passes(strategy, param_set))
