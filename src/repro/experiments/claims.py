"""The paper's qualitative claims as executable checks.

DESIGN.md §3 lists the findings the reproduction must preserve; this
module encodes each as a predicate over the study results so the
claim-by-claim outcome is a program output, not prose.  Used by the
``repro-experiments claims`` command and asserted (for the robust
subset) in the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.history import best_of
from repro.experiments.runner import SundogStudy, SyntheticStudy
from repro.topology_gen.suite import TopologyCondition


@dataclass(frozen=True)
class ClaimResult:
    claim_id: str
    description: str
    holds: bool
    evidence: str


def _mean(study: SyntheticStudy, condition: TopologyCondition, size: str, strategy: str) -> float:
    return study.best_pass(condition, size, strategy).rerun_summary()[0]


def _condition(study: SyntheticStudy, tiim: float, cont: float) -> TopologyCondition:
    for condition in study.conditions:
        if (
            condition.time_imbalance == tiim
            and condition.contentious_share == cont
        ):
            return condition
    raise KeyError(f"study lacks condition TiIm={tiim}, contention={cont}")


SyntheticCheck = Callable[[SyntheticStudy], tuple[bool, str]]
SundogCheck = Callable[[SundogStudy], tuple[bool, str]]


# ----------------------------------------------------------------------
# Synthetic-study claims (Figures 4-7)
# ----------------------------------------------------------------------
def claim_f41_ipla_dominates_balanced(study: SyntheticStudy) -> tuple[bool, str]:
    cond = _condition(study, 0.0, 0.0)
    ratios = {
        size: _mean(study, cond, size, "ipla") / _mean(study, cond, size, "pla")
        for size in ("medium", "large")
        if size in study.sizes
    }
    holds = all(r > 1.15 for r in ratios.values())
    return holds, f"ipla/pla ratios { {k: round(v, 2) for k, v in ratios.items()} }"


def claim_f41_small_parity(study: SyntheticStudy) -> tuple[bool, str]:
    cond = _condition(study, 0.0, 0.0)
    values = [
        _mean(study, cond, "small", s)
        for s in ("pla", "bo", "ipla", "ibo")
        if s in study.strategies
    ]
    spread = max(values) / min(values)
    return spread < 1.6, f"small-topology spread {spread:.2f}x"


def claim_f42_bo_partially_compensates(study: SyntheticStudy) -> tuple[bool, str]:
    cond = _condition(study, 1.0, 0.0)
    wins = []
    for size in ("small", "medium", "large"):
        if size not in study.sizes:
            continue
        bo = max(
            _mean(study, cond, size, s)
            for s in ("bo", "bo180")
            if s in study.strategies
        )
        pla = _mean(study, cond, size, "pla")
        ipla = _mean(study, cond, size, "ipla")
        wins.append((size, bo > pla, bo < 1.1 * ipla))
    above_pla = sum(1 for _, w, _ in wins if w)
    below_informed = all(b for _, _, b in wins)
    return (
        above_pla >= 2 and below_informed,
        f"bo>pla on {above_pla}/{len(wins)} sizes, bo below informed: "
        f"{below_informed}",
    )


def claim_f43_contention_collapses_throughput(
    study: SyntheticStudy,
) -> tuple[bool, str]:
    balanced = _condition(study, 0.0, 0.0)
    contended = _condition(study, 0.0, 0.25)
    ratios = {
        size: _mean(study, contended, size, "pla")
        / _mean(study, balanced, size, "pla")
        for size in study.sizes
    }
    holds = all(r < 0.35 for r in ratios.values())
    return holds, f"contended/balanced pla ratios { {k: round(v, 2) for k, v in ratios.items()} }"


def claim_f44_collapse_to_unit_hints(study: SyntheticStudy) -> tuple[bool, str]:
    cond = _condition(study, 1.0, 0.25)
    sizes = [s for s in ("medium", "large") if s in study.sizes]
    hints = []
    for size in sizes:
        best = study.best_pass(cond, size, "pla").best_config
        hints.append(int(best["uniform_hint"]))  # type: ignore[arg-type]
    holds = all(h <= 4 for h in hints)
    return holds, f"pla best uniform hints under both stressors: {hints}"


def claim_f5_informed_converges_faster(study: SyntheticStudy) -> tuple[bool, str]:
    import numpy as np

    bo_steps, ibo_steps = [], []
    for condition in study.conditions:
        for size in study.sizes:
            for strategy, bucket in (("bo", bo_steps), ("ibo", ibo_steps)):
                if strategy in study.strategies:
                    for result in study.passes(condition, size, strategy):
                        bucket.append(result.best_step)
    if not bo_steps or not ibo_steps:
        return False, "missing strategies"
    holds = float(np.mean(ibo_steps)) < float(np.mean(bo_steps))
    return holds, (
        f"mean best step: ibo {np.mean(ibo_steps):.1f} vs bo "
        f"{np.mean(bo_steps):.1f}"
    )


def claim_f7_step_time_grows_with_dimension(
    study: SyntheticStudy,
) -> tuple[bool, str]:
    import numpy as np

    def mean_suggest(size: str) -> float:
        times = []
        for condition in study.conditions:
            for result in study.passes(condition, size, "bo"):
                times.extend(o.suggest_seconds for o in result.observations)
        return float(np.mean(times))

    small = mean_suggest("small")
    large = mean_suggest("large") if "large" in study.sizes else small
    holds = large > small
    return holds, f"bo mean step: small {small * 1e3:.1f} ms, large {large * 1e3:.1f} ms"


# ----------------------------------------------------------------------
# Sundog claims (Figure 8)
# ----------------------------------------------------------------------
def claim_f8_hint_only_plateau(study: SundogStudy) -> tuple[bool, str]:
    values = [
        best_of(study.passes(s, "h")).rerun_summary()[0]
        for s in ("pla", "bo", "bo180")
        if (s, "h") in study.results
    ]
    spread = max(values) / min(values)
    return spread < 1.8, f"hint-only spread {spread:.2f}x across strategies"


def claim_f8_batch_tuning_step_change(study: SundogStudy) -> tuple[bool, str]:
    from repro.experiments.figures import speedup_over_pla

    speedup = speedup_over_pla(study)
    return 1.7 < speedup < 4.0, f"speedup {speedup:.2f}x (paper: 2.8x)"


def claim_f8_fixed_hints_equivalent(study: SundogStudy) -> tuple[bool, str]:
    full = max(
        best_of(study.passes(s, "h bs bp")).rerun_summary()[0]
        for s in ("bo", "bo180")
        if (s, "h bs bp") in study.results
    )
    fixed = max(
        best_of(study.passes(s, "bs bp cc")).rerun_summary()[0]
        for s in ("bo", "bo180")
        if (s, "bs bp cc") in study.results
    )
    ratio = fixed / full
    return 0.8 < ratio < 1.25, f"bs+bp+cc / h+bs+bp = {ratio:.2f}"


def claim_f8_bo_raises_batch_parameters(study: SundogStudy) -> tuple[bool, str]:
    best = best_of(study.passes("bo", "h bs bp")).best_config
    bs = int(best["batch_size"])  # type: ignore[arg-type]
    bp = int(best["batch_parallelism"])  # type: ignore[arg-type]
    holds = bs > 100_000 and bp >= 10
    return holds, f"bo chose batch_size={bs}, batch_parallelism={bp} (paper: 265312, 16)"


SYNTHETIC_CLAIMS: tuple[tuple[str, str, SyntheticCheck], ...] = (
    (
        "F4.1a",
        "balanced: informed linear ascent dominates medium/large",
        claim_f41_ipla_dominates_balanced,
    ),
    (
        "F4.1b",
        "balanced: all strategies comparable on the small topology",
        claim_f41_small_parity,
    ),
    (
        "F4.2",
        "imbalance: BO partially compensates for missing topology info",
        claim_f42_bo_partially_compensates,
    ),
    (
        "F4.3",
        "contention collapses throughput for uniform scaling",
        claim_f43_contention_collapses_throughput,
    ),
    (
        "F4.4",
        "imbalance+contention: optima collapse towards hint 1",
        claim_f44_collapse_to_unit_hints,
    ),
    (
        "F5",
        "informed optimizer converges in fewer steps than uninformed",
        claim_f5_informed_converges_faster,
    ),
    (
        "F7",
        "optimizer step time grows with the number of parameters",
        claim_f7_step_time_grows_with_dimension,
    ),
)

SUNDOG_CLAIMS: tuple[tuple[str, str, SundogCheck], ...] = (
    ("F8.1", "hint-only tuning plateaus across strategies", claim_f8_hint_only_plateau),
    (
        "F8.2",
        "batch tuning is a ~2.8x step change over pla hints-only",
        claim_f8_batch_tuning_step_change,
    ),
    (
        "F8.3",
        "fixed hints + bs/bp/cc reaches the full space's level",
        claim_f8_fixed_hints_equivalent,
    ),
    (
        "F8.4",
        "BO raises batch size and batch parallelism far beyond defaults",
        claim_f8_bo_raises_batch_parameters,
    ),
)


def evaluate_claims(
    synthetic: SyntheticStudy | None = None,
    sundog: SundogStudy | None = None,
) -> list[ClaimResult]:
    """Evaluate every applicable claim against the given studies."""
    results: list[ClaimResult] = []
    if synthetic is not None:
        for claim_id, description, check in SYNTHETIC_CLAIMS:
            try:
                holds, evidence = check(synthetic)
            except KeyError as exc:
                holds, evidence = False, f"not evaluable: {exc}"
            results.append(ClaimResult(claim_id, description, holds, evidence))
    if sundog is not None:
        for claim_id, description, check in SUNDOG_CLAIMS:
            try:
                holds, evidence = check(sundog)
            except KeyError as exc:
                holds, evidence = False, f"not evaluable: {exc}"
            results.append(ClaimResult(claim_id, description, holds, evidence))
    return results


def render_claims(results: list[ClaimResult]) -> str:
    lines = ["== Paper claims checklist =="]
    for r in results:
        mark = "PASS" if r.holds else "MISS"
        lines.append(f"[{mark}] {r.claim_id}: {r.description}")
        lines.append(f"       {r.evidence}")
    passed = sum(1 for r in results if r.holds)
    lines.append(f"{passed}/{len(results)} claims reproduced")
    return "\n".join(lines)
