"""Paper constants and experiment budgets.

The paper's procedure (§V-A): at most 60 evaluation runs per optimizer
pass (180 for the extended bo180 runs), two passes per cell with the
better one graphed, and the winning configuration re-run 30 times.
Because the reproduction regenerates *every* figure, benchmarks default
to a scaled-down budget that keeps the full suite in the minutes range;
set ``REPRO_FULL=1`` (or pass :func:`full_budget`) for paper-scale runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.storm.cluster import ClusterSpec, paper_cluster
from repro.storm.config import TopologyConfig

#: Batch configuration used for the synthetic-topology experiments.
#: The paper tunes only parallelism there; batch size is small enough
#: that every condition has feasible configurations under the 30 s
#: message timeout and large enough that per-batch overhead matters.
SYNTHETIC_BASE_CONFIG = TopologyConfig(
    batch_size=200,
    batch_parallelism=16,
    worker_threads=8,
    receiver_threads=1,
    ackers=None,
    num_workers=80,
)

#: Observation noise applied to every simulated measurement (§III-C
#: assumes Gaussian noise; the testbed was shared student hardware).
#: Calibrated against the paper's §V-D significance results: a 611k vs
#: 660k tuples/s difference was *insignificant* over 30 re-runs, which
#: implies a coefficient of variation of roughly this size.
MEASUREMENT_NOISE_SIGMA = 0.08

#: Paper strategy names in presentation order.
SYNTHETIC_STRATEGIES: tuple[str, ...] = ("pla", "bo", "ipla", "ibo", "bo180")

#: Paper sizes in presentation order.
SIZES: tuple[str, ...] = ("small", "medium", "large")


@dataclass(frozen=True)
class Budget:
    """Step/repeat budgets for one study run.

    ``steps`` bounds the (expensive) Bayesian-optimizer runs;
    ``baseline_steps`` bounds the cheap linear-ascent baselines, which
    keep the paper's full 60-run schedule even under scaled budgets so
    their ascent is never artificially truncated.
    """

    steps: int = 60
    steps_extended: int = 180  # the bo180 budget
    baseline_steps: int = 60  # pla / ipla schedule length
    passes: int = 2
    repeat_best: int = 30

    def __post_init__(self) -> None:
        if self.steps < 1 or self.steps_extended < self.steps:
            raise ValueError("need steps >= 1 and steps_extended >= steps")
        if self.baseline_steps < 1:
            raise ValueError("baseline_steps must be >= 1")
        if self.passes < 1:
            raise ValueError("passes must be >= 1")
        if self.repeat_best < 2:
            raise ValueError("repeat_best must be >= 2 (t-tests need n >= 2)")


def full_budget() -> Budget:
    """The paper's budgets: 60/180 steps, 2 passes, 30 re-runs."""
    return Budget(
        steps=60, steps_extended=180, baseline_steps=60, passes=2, repeat_best=30
    )


def scaled_budget() -> Budget:
    """Benchmark default: same shape, roughly 1/3 of the evaluations."""
    return Budget(
        steps=20, steps_extended=45, baseline_steps=60, passes=2, repeat_best=10
    )


def quick_budget() -> Budget:
    """Smoke-test budget used by integration tests and the quickstart."""
    return Budget(
        steps=8, steps_extended=12, baseline_steps=20, passes=1, repeat_best=3
    )


def default_budget() -> Budget:
    """Scaled budget, or the paper's when ``REPRO_FULL=1`` is set."""
    if os.environ.get("REPRO_FULL", "").strip() in {"1", "true", "yes"}:
        return full_budget()
    return scaled_budget()


def default_cluster() -> ClusterSpec:
    """The paper's 80-machine, 320-core testbed."""
    return paper_cluster()
