"""ASCII rendering and CSV export of figure/table data."""

from __future__ import annotations

import csv
import re
from pathlib import Path
from typing import Mapping, Sequence

from repro.experiments.figures import FigureData


def render_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for c in columns:
            widths[c] = max(widths[c], len(str(row.get(c, ""))))
    sep = "-+-".join("-" * widths[c] for c in columns)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines = [header, sep]
    for row in rows:
        lines.append(
            " | ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def render_bars(
    rows: Sequence[Mapping[str, object]],
    *,
    value_key: str,
    label_keys: Sequence[str],
    width: int = 40,
) -> str:
    """Render rows as labelled ASCII bars scaled to the maximum value."""
    if not rows:
        return "(no rows)"
    values = [float(row[value_key]) for row in rows]  # type: ignore[arg-type]
    peak = max(values) or 1.0
    labels = [" ".join(str(row[k]) for k in label_keys) for row in rows]
    label_width = max(len(lbl) for lbl in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:g}")
    return "\n".join(lines)


def render_series(
    series: Mapping[str, tuple[list[float], list[float]]],
    *,
    height: int = 12,
    width: int = 60,
) -> str:
    """Render line series as a coarse ASCII chart (one glyph per series)."""
    if not series:
        return "(no series)"
    glyphs = "ox+*#@%&"
    xs_all = [x for xs, _ in series.values() for x in xs]
    ys_all = [y for _, ys in series.values() for y in ys]
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(ys_all), max(ys_all)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        glyph = glyphs[idx % len(glyphs)]
        for x, y in zip(xs, ys):
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    legend = [
        f"{glyphs[i % len(glyphs)]} = {name}" for i, name in enumerate(series)
    ]
    lines.extend(legend)
    lines.append(
        f"x: [{x_lo:g}, {x_hi:g}]   y: [{y_lo:g}, {y_hi:g}]"
    )
    return "\n".join(lines)


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_")


def write_csv(data: FigureData, directory: str | Path) -> list[Path]:
    """Export an exhibit's rows (and series) as CSV files.

    Returns the paths written: ``<exhibit>.csv`` for tabular rows and
    ``<exhibit>_series.csv`` (long format: series, x, y) for line data.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    base = _slug(data.exhibit)
    if data.rows:
        path = directory / f"{base}.csv"
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(data.rows[0].keys()))
            writer.writeheader()
            writer.writerows(data.rows)
        written.append(path)
    if data.series:
        path = directory / f"{base}_series.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["series", "x", "y"])
            for name, (xs, ys) in data.series.items():
                for x, y in zip(xs, ys):
                    writer.writerow([name, x, y])
        written.append(path)
    return written


def render_figure(data: FigureData) -> str:
    """Full rendering: title, rows, series, notes."""
    parts = [f"== {data.exhibit}: {data.title} =="]
    if data.rows:
        parts.append(render_table(data.rows))
    if data.series:
        parts.append(render_series(data.series))
    for note in data.notes:
        parts.append(f"note: {note}")
    return "\n".join(parts)
