"""Persist and reload study results.

Paper-scale studies take real time; exports make their results
re-renderable (and diffable across calibration changes) without
re-running.  The JSON layout is stable and versioned.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.core.history import TuningResult
from repro.experiments.presets import Budget
from repro.experiments.runner import SundogStudy, SyntheticStudy
from repro.topology_gen.suite import TopologyCondition

FORMAT_VERSION = 1


def _budget_to_dict(budget: Budget) -> dict[str, object]:
    return {
        "steps": budget.steps,
        "steps_extended": budget.steps_extended,
        "baseline_steps": budget.baseline_steps,
        "passes": budget.passes,
        "repeat_best": budget.repeat_best,
    }


def _budget_from_dict(data: Mapping[str, object]) -> Budget:
    return Budget(**{k: int(v) for k, v in data.items()})  # type: ignore[arg-type]


def synthetic_study_to_dict(study: SyntheticStudy) -> dict[str, object]:
    cells = []
    for (condition, size, strategy), results in study.results.items():
        cells.append(
            {
                "time_imbalance": condition.time_imbalance,
                "contentious_share": condition.contentious_share,
                "size": size,
                "strategy": strategy,
                "passes": [r.as_dict() for r in results],
            }
        )
    return {
        "format_version": FORMAT_VERSION,
        "kind": "synthetic",
        "budget": _budget_to_dict(study.budget),
        "seed": study.seed,
        "fidelity": study.fidelity,
        "cells": cells,
    }


def synthetic_study_from_dict(data: Mapping[str, object]) -> SyntheticStudy:
    if data.get("kind") != "synthetic":
        raise ValueError(f"not a synthetic study export: kind={data.get('kind')!r}")
    cells = list(data["cells"])  # type: ignore[arg-type]
    conditions: list[TopologyCondition] = []
    sizes: list[str] = []
    strategies: list[str] = []
    results = {}
    for cell in cells:
        condition = TopologyCondition(
            time_imbalance=float(cell["time_imbalance"]),
            contentious_share=float(cell["contentious_share"]),
        )
        size = str(cell["size"])
        strategy = str(cell["strategy"])
        if condition not in conditions:
            conditions.append(condition)
        if size not in sizes:
            sizes.append(size)
        if strategy not in strategies:
            strategies.append(strategy)
        results[(condition, size, strategy)] = [
            TuningResult.from_dict(r) for r in cell["passes"]
        ]
    study = SyntheticStudy(
        _budget_from_dict(data["budget"]),  # type: ignore[arg-type]
        conditions=conditions,
        sizes=sizes,
        strategies=strategies,
        seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
        fidelity=str(data.get("fidelity", "analytic")),
    )
    study.results = results
    return study


def sundog_study_to_dict(study: SundogStudy) -> dict[str, object]:
    arms = []
    for (strategy, param_set), results in study.results.items():
        arms.append(
            {
                "strategy": strategy,
                "param_set": param_set,
                "passes": [r.as_dict() for r in results],
            }
        )
    return {
        "format_version": FORMAT_VERSION,
        "kind": "sundog",
        "budget": _budget_to_dict(study.budget),
        "seed": study.seed,
        "fidelity": study.fidelity,
        "arms": arms,
    }


def sundog_study_from_dict(data: Mapping[str, object]) -> SundogStudy:
    if data.get("kind") != "sundog":
        raise ValueError(f"not a sundog study export: kind={data.get('kind')!r}")
    arm_specs = []
    results = {}
    for arm in data["arms"]:  # type: ignore[union-attr]
        key = (str(arm["strategy"]), str(arm["param_set"]))
        arm_specs.append(key)
        results[key] = [TuningResult.from_dict(r) for r in arm["passes"]]
    study = SundogStudy(
        _budget_from_dict(data["budget"]),  # type: ignore[arg-type]
        arms=arm_specs,
        seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
        fidelity=str(data.get("fidelity", "analytic")),
    )
    study.results = results
    return study


def save_study(study: SyntheticStudy | SundogStudy, path: str | Path) -> None:
    if isinstance(study, SyntheticStudy):
        payload = synthetic_study_to_dict(study)
    else:
        payload = sundog_study_to_dict(study)
    Path(path).write_text(json.dumps(payload, indent=1))


def load_study(path: str | Path) -> SyntheticStudy | SundogStudy:
    data = json.loads(Path(path).read_text())
    kind = data.get("kind")
    if kind == "synthetic":
        return synthetic_study_from_dict(data)
    if kind == "sundog":
        return sundog_study_from_dict(data)
    raise ValueError(f"unknown study kind {kind!r}")
