"""Dependency-free SVG rendering of figure data.

The benchmark harness prints ASCII; this module writes the same
exhibits as standalone SVG files (no matplotlib required offline) so
the regenerated figures can be compared with the paper's visually.
Bar charts serve the throughput/convergence exhibits, line charts the
trace exhibits.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Mapping, Sequence

from repro.experiments.figures import FigureData
from repro.experiments.report import _slug

#: A small colour-blind-safe palette.
PALETTE = (
    "#4477aa",
    "#ee6677",
    "#228833",
    "#ccbb44",
    "#66ccee",
    "#aa3377",
    "#bbbbbb",
)

_MARGIN = 60
_WIDTH = 860
_HEIGHT = 420


def _esc(text: object) -> str:
    return html.escape(str(text))


def _svg_header(title: str) -> list[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" font-family="sans-serif" font-size="11">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2}" y="20" text-anchor="middle" '
        f'font-size="14">{_esc(title)}</text>',
    ]


def _y_scale(max_value: float) -> float:
    return (_HEIGHT - 2 * _MARGIN) / max_value if max_value > 0 else 1.0


def _y_axis(lines: list[str], max_value: float, y_label: str) -> None:
    x0 = _MARGIN
    y0 = _HEIGHT - _MARGIN
    y1 = _MARGIN
    lines.append(
        f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>'
    )
    for i in range(5):
        value = max_value * i / 4
        y = y0 - (y0 - y1) * i / 4
        lines.append(
            f'<text x="{x0 - 6}" y="{y + 4}" text-anchor="end">'
            f"{value:.3g}</text>"
        )
        lines.append(
            f'<line x1="{x0 - 3}" y1="{y}" x2="{x0}" y2="{y}" stroke="black"/>'
        )
    lines.append(
        f'<text x="14" y="{(y0 + y1) / 2}" text-anchor="middle" '
        f'transform="rotate(-90 14 {(y0 + y1) / 2})">{_esc(y_label)}</text>'
    )


def svg_bar_chart(
    rows: Sequence[Mapping[str, object]],
    *,
    value_key: str,
    label_keys: Sequence[str],
    color_key: str | None = None,
    title: str = "",
    y_label: str | None = None,
    error_keys: tuple[str, str] | None = None,
) -> str:
    """Grouped bar chart with optional min/max error bars."""
    if not rows:
        raise ValueError("rows must be non-empty")
    values = [float(row[value_key]) for row in rows]  # type: ignore[arg-type]
    max_value = max(values) or 1.0
    scale = _y_scale(max_value)
    lines = _svg_header(title)
    _y_axis(lines, max_value, y_label or value_key)

    colors: dict[str, str] = {}
    plot_width = _WIDTH - 2 * _MARGIN
    slot = plot_width / len(rows)
    bar_width = max(4.0, slot * 0.7)
    y0 = _HEIGHT - _MARGIN
    for i, (row, value) in enumerate(zip(rows, values)):
        x = _MARGIN + slot * i + (slot - bar_width) / 2
        key = str(row[color_key]) if color_key else "default"
        color = colors.setdefault(key, PALETTE[len(colors) % len(PALETTE)])
        height = value * scale
        lines.append(
            f'<rect x="{x:.1f}" y="{y0 - height:.1f}" width="{bar_width:.1f}" '
            f'height="{height:.1f}" fill="{color}"/>'
        )
        if error_keys is not None:
            lo = float(row[error_keys[0]]) * scale  # type: ignore[arg-type]
            hi = float(row[error_keys[1]]) * scale  # type: ignore[arg-type]
            cx = x + bar_width / 2
            lines.append(
                f'<line x1="{cx:.1f}" y1="{y0 - lo:.1f}" x2="{cx:.1f}" '
                f'y2="{y0 - hi:.1f}" stroke="black"/>'
            )
        label = " ".join(str(row[k]) for k in label_keys)
        lines.append(
            f'<text x="{x + bar_width / 2:.1f}" y="{y0 + 12}" '
            f'text-anchor="end" transform="rotate(-35 '
            f'{x + bar_width / 2:.1f} {y0 + 12})">{_esc(label)}</text>'
        )
    if color_key:
        for j, (key, color) in enumerate(colors.items()):
            lx = _WIDTH - _MARGIN - 130
            ly = _MARGIN + 16 * j
            lines.append(
                f'<rect x="{lx}" y="{ly - 9}" width="10" height="10" '
                f'fill="{color}"/>'
            )
            lines.append(f'<text x="{lx + 14}" y="{ly}">{_esc(key)}</text>')
    lines.append("</svg>")
    return "\n".join(lines)


def svg_line_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str = "",
    x_label: str = "step",
    y_label: str = "value",
) -> str:
    """Multi-series line chart (optimization traces, LOESS curves)."""
    if not series:
        raise ValueError("series must be non-empty")
    xs_all = [x for xs, _ in series.values() for x in xs]
    ys_all = [y for _, ys in series.values() for y in ys]
    if not xs_all:
        raise ValueError("series must contain points")
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_hi = max(ys_all) or 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    scale_y = _y_scale(y_hi)
    plot_width = _WIDTH - 2 * _MARGIN
    y0 = _HEIGHT - _MARGIN

    lines = _svg_header(title)
    _y_axis(lines, y_hi, y_label)
    lines.append(
        f'<line x1="{_MARGIN}" y1="{y0}" x2="{_WIDTH - _MARGIN}" y2="{y0}" '
        f'stroke="black"/>'
    )
    lines.append(
        f'<text x="{_WIDTH / 2}" y="{_HEIGHT - 14}" text-anchor="middle">'
        f"{_esc(x_label)}</text>"
    )
    for i in range(5):
        x_val = x_lo + (x_hi - x_lo) * i / 4
        x = _MARGIN + plot_width * i / 4
        lines.append(
            f'<text x="{x:.1f}" y="{y0 + 14}" text-anchor="middle">'
            f"{x_val:.3g}</text>"
        )

    for j, (name, (xs, ys)) in enumerate(series.items()):
        color = PALETTE[j % len(PALETTE)]
        points = " ".join(
            f"{_MARGIN + (x - x_lo) / (x_hi - x_lo) * plot_width:.1f},"
            f"{y0 - y * scale_y:.1f}"
            for x, y in zip(xs, ys)
        )
        lines.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="1.5"/>'
        )
        lx = _WIDTH - _MARGIN - 170
        ly = _MARGIN + 16 * j
        lines.append(
            f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 12}" y2="{ly - 4}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        lines.append(f'<text x="{lx + 16}" y="{ly}">{_esc(name)}</text>')
    lines.append("</svg>")
    return "\n".join(lines)


def svg_scatter_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str = "",
    x_label: str = "step",
    y_label: str = "value",
    hlines: Sequence[tuple[float, str]] = (),
) -> str:
    """Multi-series scatter plot; handles negative y (calibration plots).

    Unlike :func:`svg_line_chart` the y axis spans the data's actual
    range rather than anchoring at zero, so standardized residuals plot
    symmetrically.  ``hlines`` draws dashed horizontal guides (e.g. the
    ±1.96 bounds of the 95% predictive interval).
    """
    if not series:
        raise ValueError("series must be non-empty")
    xs_all = [x for xs, _ in series.values() for x in xs]
    ys_all = [y for _, ys in series.values() for y in ys]
    if not xs_all:
        raise ValueError("series must contain points")
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo = min([*ys_all, *(y for y, _ in hlines)])
    y_hi = max([*ys_all, *(y for y, _ in hlines)])
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    pad = 0.05 * (y_hi - y_lo)
    y_lo, y_hi = y_lo - pad, y_hi + pad
    plot_width = _WIDTH - 2 * _MARGIN
    plot_height = _HEIGHT - 2 * _MARGIN
    y0 = _HEIGHT - _MARGIN

    def px(x: float) -> float:
        return _MARGIN + (x - x_lo) / (x_hi - x_lo) * plot_width

    def py(y: float) -> float:
        return y0 - (y - y_lo) / (y_hi - y_lo) * plot_height

    lines = _svg_header(title)
    lines.append(
        f'<line x1="{_MARGIN}" y1="{y0}" x2="{_MARGIN}" y2="{_MARGIN}" '
        f'stroke="black"/>'
    )
    for i in range(5):
        y_val = y_lo + (y_hi - y_lo) * i / 4
        y = y0 - plot_height * i / 4
        lines.append(
            f'<text x="{_MARGIN - 6}" y="{y + 4:.1f}" text-anchor="end">'
            f"{y_val:.3g}</text>"
        )
        lines.append(
            f'<line x1="{_MARGIN - 3}" y1="{y:.1f}" x2="{_MARGIN}" '
            f'y2="{y:.1f}" stroke="black"/>'
        )
    lines.append(
        f'<text x="14" y="{(y0 + _MARGIN) / 2}" text-anchor="middle" '
        f'transform="rotate(-90 14 {(y0 + _MARGIN) / 2})">{_esc(y_label)}</text>'
    )
    lines.append(
        f'<line x1="{_MARGIN}" y1="{y0}" x2="{_WIDTH - _MARGIN}" y2="{y0}" '
        f'stroke="black"/>'
    )
    lines.append(
        f'<text x="{_WIDTH / 2}" y="{_HEIGHT - 14}" text-anchor="middle">'
        f"{_esc(x_label)}</text>"
    )
    for i in range(5):
        x_val = x_lo + (x_hi - x_lo) * i / 4
        x = _MARGIN + plot_width * i / 4
        lines.append(
            f'<text x="{x:.1f}" y="{y0 + 14}" text-anchor="middle">'
            f"{x_val:.3g}</text>"
        )
    for y_val, label in hlines:
        y = py(y_val)
        lines.append(
            f'<line x1="{_MARGIN}" y1="{y:.1f}" x2="{_WIDTH - _MARGIN}" '
            f'y2="{y:.1f}" stroke="#888888" stroke-dasharray="5,4"/>'
        )
        if label:
            lines.append(
                f'<text x="{_WIDTH - _MARGIN - 4}" y="{y - 4:.1f}" '
                f'text-anchor="end" fill="#888888">{_esc(label)}</text>'
            )
    for j, (name, (xs, ys)) in enumerate(series.items()):
        color = PALETTE[j % len(PALETTE)]
        for x, y in zip(xs, ys):
            lines.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3" '
                f'fill="{color}" fill-opacity="0.7"/>'
            )
        lx = _WIDTH - _MARGIN - 170
        ly = _MARGIN + 16 * j
        lines.append(
            f'<circle cx="{lx + 6}" cy="{ly - 4}" r="3" fill="{color}"/>'
        )
        lines.append(f'<text x="{lx + 16}" y="{ly}">{_esc(name)}</text>')
    lines.append("</svg>")
    return "\n".join(lines)


#: Per-exhibit hints: which column carries the value and which carry
#: labels/groups/error bars.
_BAR_HINTS: dict[str, dict[str, object]] = {
    "Figure 3": {
        "value_key": "MB/s per worker",
        "label_keys": ["Topology"],
    },
    "Figure 4": {
        "value_key": "tuples/s",
        "label_keys": ["Size", "Strategy"],
        "color_key": "Strategy",
        "error_keys": ("min", "max"),
    },
    "Figure 5": {
        "value_key": "steps(avg)",
        "label_keys": ["Size", "Strategy"],
        "color_key": "Strategy",
        "error_keys": ("min", "max"),
    },
    "Figure 7": {
        "value_key": "seconds(avg)",
        "label_keys": ["Size", "Strategy"],
        "color_key": "Strategy",
        "error_keys": ("min", "max"),
    },
    "Figure 8a": {
        "value_key": "mil tuples/s",
        "label_keys": ["Strategy", "Params"],
        "color_key": "Params",
        "error_keys": ("min", "max"),
    },
}


def save_figure_svg(data: FigureData, directory: str | Path) -> list[Path]:
    """Write an exhibit's SVG rendering(s); returns the paths written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    base = _slug(data.exhibit)
    hints = _BAR_HINTS.get(data.exhibit)
    if data.rows and hints is not None:
        svg = svg_bar_chart(data.rows, title=f"{data.exhibit}: {data.title}", **hints)  # type: ignore[arg-type]
        path = directory / f"{base}.svg"
        path.write_text(svg)
        written.append(path)
    if data.series:
        svg = svg_line_chart(
            data.series, title=f"{data.exhibit}: {data.title}"
        )
        path = directory / f"{base}_series.svg"
        path.write_text(svg)
        written.append(path)
    return written
