"""Data builders for every table and figure of the paper's evaluation.

Each builder returns a :class:`FigureData` with plain-dict rows (and,
for line figures, series) so the benchmarks can print them and the
tests can assert on the qualitative claims (DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.history import convergence_spread
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.obs.summary import summarize_trace, summary_rows
from repro.experiments.runner import SundogStudy, SyntheticStudy
from repro.stats.loess import loess
from repro.stats.summarize import summarize
from repro.stats.ttest import TTestResult, welch_t_test
from repro.storm.analytic import AnalyticPerformanceModel
from repro.storm.config import TABLE1_PARAMETERS, TopologyConfig
from repro.storm.metrics import MeasuredRun
from repro.storm.topology import Topology
from repro.sundog import sundog_default_config, sundog_topology
from repro.topology_gen.properties import table2_stats
from repro.topology_gen.suite import PRESETS, base_topology


@dataclass
class FigureData:
    """Rows (tables/bars) and series (lines) for one paper exhibit."""

    exhibit: str
    title: str
    rows: list[dict[str, object]] = field(default_factory=list)
    series: dict[str, tuple[list[float], list[float]]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table1_parameters() -> FigureData:
    """Table I: the tuned configuration parameters."""
    data = FigureData("Table I", "Configuration parameters")
    for name, description in TABLE1_PARAMETERS:
        data.rows.append({"Parameter": name, "Description": description})
    return data


def table2_topologies(seed: int = 0) -> FigureData:
    """Table II: statistics of the generated synthetic topologies."""
    data = FigureData("Table II", "Generated topology statistics")
    for size, preset in PRESETS.items():
        topo = base_topology(size, seed=seed)
        row = table2_stats(
            topo, preset.edge_probability, layers=preset.n_layers
        ).as_dict()
        data.rows.append(row)
    return data


#: Table III is literature data quoted by the paper (operator counts of
#: published topologies) — reproduced verbatim, extended with the
#: operator counts of this reproduction's own four topologies.
TABLE3_LITERATURE: tuple[tuple[int, str, int], ...] = (
    (2003, "Data Dissemination Problem in [27]", 40),
    (2004, "Linear Road Benchmark in [28]", 60),
    (2013, "Linear Road Benchmark used in [29]", 7),
    (2013, "DEBS'13 Grand Challenge Query [30]", 3),
)


def table3_literature() -> FigureData:
    data = FigureData("Table III", "Number of operators of topologies in literature")
    for year, description, n_ops in TABLE3_LITERATURE:
        data.rows.append(
            {"Year": year, "Description": description, "# of Ops": n_ops}
        )
    for size in PRESETS:
        topo = base_topology(size)
        data.rows.append(
            {
                "Year": 2015,
                "Description": f"this paper, synthetic '{size}'",
                "# of Ops": len(topo),
            }
        )
    data.rows.append(
        {
            "Year": 2015,
            "Description": "this paper, Sundog",
            "# of Ops": len(sundog_topology()),
        }
    )
    return data


# ----------------------------------------------------------------------
# Figure 3: network load
# ----------------------------------------------------------------------
def _representative_run(
    topology: Topology, base_config: TopologyConfig, max_hint: int = 60
) -> MeasuredRun:
    """Measure the best uniform-hint deployment (noise-free).

    Figure 3 reports average network load per worker during the
    evaluations; the best uniform configuration is the natural
    representative operating point.
    """
    cluster = default_cluster()
    model = AnalyticPerformanceModel(topology, cluster)
    best: MeasuredRun | None = None
    for hint in range(1, max_hint + 1):
        config = base_config.replace(
            parallelism_hints={name: hint for name in topology}
        )
        run = model.evaluate_noise_free(config)
        if best is None or run.throughput_tps > best.throughput_tps:
            best = run
    assert best is not None
    return best


def figure3_network_load() -> FigureData:
    """Figure 3: average network load in MB/s per worker per topology."""
    data = FigureData(
        "Figure 3", "Average network load in MB/s per worker for each topology"
    )
    for size in ("large", "medium", "small"):
        topo = base_topology(size)
        run = _representative_run(topo, SYNTHETIC_BASE_CONFIG)
        data.rows.append(
            {
                "Topology": size,
                "MB/s per worker": round(run.network_mb_per_worker_s, 2),
                "at tuples/s": round(run.throughput_tps, 1),
            }
        )
    sundog = sundog_topology()
    run = _representative_run(sundog, sundog_default_config())
    data.rows.append(
        {
            "Topology": "sundog",
            "MB/s per worker": round(run.network_mb_per_worker_s, 2),
            "at tuples/s": round(run.throughput_tps, 1),
        }
    )
    nic_limit = default_cluster().machine.nic_mbps / 8.0
    data.notes.append(
        f"theoretical NIC limit {nic_limit:.0f} MB/s — the network is "
        "never saturated (paper §IV-B3)"
    )
    return data


# ----------------------------------------------------------------------
# Figures 4-7: synthetic study views
# ----------------------------------------------------------------------
def figure4_throughput(study: SyntheticStudy) -> FigureData:
    """Figure 4: best-config throughput per condition/size/strategy."""
    data = FigureData(
        "Figure 4",
        "Throughput of the best configuration (mean of re-runs, min/max bars)",
    )
    for condition in study.conditions:
        for size in study.sizes:
            for strategy in study.strategies:
                result = study.best_pass(condition, size, strategy)
                mean, lo, hi = result.rerun_summary()
                data.rows.append(
                    {
                        "Condition": condition.label,
                        "Size": size,
                        "Strategy": strategy,
                        "tuples/s": round(mean, 1),
                        "min": round(lo, 1),
                        "max": round(hi, 1),
                    }
                )
    return data


def figure5_convergence(study: SyntheticStudy) -> FigureData:
    """Figure 5: step at which the best performance was first measured."""
    data = FigureData(
        "Figure 5",
        "Convergence speed: steps to reach maximum throughput "
        "(min/avg/max over passes)",
    )
    strategies = [s for s in study.strategies if s != "bo180"]
    for condition in study.conditions:
        for size in study.sizes:
            for strategy in strategies:
                passes = study.passes(condition, size, strategy)
                lo, avg, hi = convergence_spread(passes)
                data.rows.append(
                    {
                        "Condition": condition.label,
                        "Size": size,
                        "Strategy": strategy,
                        "steps(avg)": round(avg, 1),
                        "min": lo,
                        "max": hi,
                    }
                )
    return data


def figure6_loess_traces(study: SyntheticStudy, span: float = 0.75) -> FigureData:
    """Figure 6: LOESS smoothing of the Bayesian optimizer's traces."""
    data = FigureData(
        "Figure 6",
        f"LOESS (span {span}) of Bayesian-optimizer throughput traces",
    )
    source = "bo180" if "bo180" in study.strategies else "bo"
    for condition in study.conditions:
        for size in study.sizes:
            xs: list[float] = []
            ys: list[float] = []
            for result in study.passes(condition, size, source):
                for obs in result.observations:
                    xs.append(obs.step + 1)
                    ys.append(obs.value)
            x_eval = np.linspace(1, max(xs), min(40, int(max(xs))))
            x_s, y_s = loess(np.array(xs), np.array(ys), span=span, x_eval=x_eval)
            key = f"{condition.label} / {size}"
            data.series[key] = (list(map(float, x_s)), list(map(float, y_s)))
    return data


def figure7_step_time(study: SyntheticStudy) -> FigureData:
    """Figure 7: optimizer wall time per step (scalability)."""
    data = FigureData(
        "Figure 7",
        "Average time per optimization step in seconds "
        "(time to choose the next configuration)",
    )
    strategies = [s for s in study.strategies if s != "bo180"]
    for condition in study.conditions:
        for size in study.sizes:
            for strategy in strategies:
                times: list[float] = []
                fit_seconds = 0.0
                refits = updates = 0
                for result in study.passes(condition, size, strategy):
                    times.extend(o.suggest_seconds for o in result.observations)
                    telemetry = result.metadata.get("optimizer_telemetry")
                    if isinstance(telemetry, Mapping):
                        fit_seconds += float(telemetry["gp_fit_seconds_total"])
                        refits += int(telemetry["gp_full_refits"])
                        updates += int(telemetry["gp_incremental_updates"])
                s = summarize(times)
                data.rows.append(
                    {
                        "Condition": condition.label,
                        "Size": size,
                        "Strategy": strategy,
                        "seconds(avg)": round(s.mean, 4),
                        "min": round(s.minimum, 4),
                        "max": round(s.maximum, 4),
                        # Where the GP-paying strategies spend it:
                        # periodic full refits vs rank-1 updates.
                        "gp_fit_s/step": (
                            round(fit_seconds / len(times), 4) if times else 0.0
                        ),
                        "refits": refits,
                        "updates": updates,
                    }
                )
    return data


# ----------------------------------------------------------------------
# Figure 8: Sundog
# ----------------------------------------------------------------------
def figure8a_sundog_throughput(study: SundogStudy) -> FigureData:
    """Figure 8a: Sundog throughput per strategy and parameter set."""
    data = FigureData(
        "Figure 8a",
        "Sundog throughput (mean of re-runs, min/max bars), million tuples/s",
    )
    for (strategy, param_set), results in study.results.items():
        from repro.core.history import best_of

        result = best_of(results)
        mean, lo, hi = result.rerun_summary()
        data.rows.append(
            {
                "Strategy": strategy,
                "Params": param_set,
                "mil tuples/s": round(mean / 1e6, 3),
                "min": round(lo / 1e6, 3),
                "max": round(hi / 1e6, 3),
                "best config": _summarize_config(result.best_config),
            }
        )
    data.rows.sort(key=lambda r: (str(r["Params"]), str(r["Strategy"])))
    for t in sundog_t_tests(study):
        data.notes.append(t)
    return data


def _summarize_config(config: Mapping[str, object]) -> str:
    """Compact rendering of the interesting non-hint parameters."""
    keys = ("batch_size", "batch_parallelism", "worker_threads",
            "receiver_threads", "ackers", "uniform_hint", "max_tasks")
    parts = [f"{k}={config[k]}" for k in keys if k in config]
    hints = [v for k, v in config.items() if k.startswith("hint__")]
    if hints:
        parts.append(f"hints median={int(np.median(hints))}")
    return ", ".join(parts)


def sundog_t_tests(study: SundogStudy) -> list[str]:
    """The paper's §V-D significance statements, recomputed."""
    from repro.core.history import best_of

    def reruns(strategy: str, param_set: str) -> list[float] | None:
        results = study.results.get((strategy, param_set))
        if not results:
            return None
        values = best_of(results).best_rerun_values
        return values if len(values) >= 2 else None

    comparisons = [
        ("pla", "h", "bo", "h"),
        ("pla", "h", "bo180", "h"),
        ("bo", "bs bp cc", "bo", "h bs bp"),
        ("bo", "bs bp cc", "bo180", "h bs bp"),
    ]
    notes = []
    for s1, p1, s2, p2 in comparisons:
        a, b = reruns(s1, p1), reruns(s2, p2)
        if a is None or b is None:
            continue
        test: TTestResult = welch_t_test(a, b)
        notes.append(f"{s1}.{p1} vs {s2}.{p2}: {test.verdict()}")
    return notes


def figure8b_sundog_convergence(study: SundogStudy) -> FigureData:
    """Figure 8b: best-so-far traces for the Figure 8 arms."""
    data = FigureData(
        "Figure 8b", "Sundog convergence: best-so-far throughput by step"
    )
    from repro.core.history import best_of

    trace_arms = [
        ("pla", "h"),
        ("bo180", "h"),
        ("bo180", "h bs bp"),
        ("bo", "bs bp cc"),
    ]
    for strategy, param_set in trace_arms:
        results = study.results.get((strategy, param_set))
        if not results:
            continue
        result = best_of(results)
        trace = result.best_so_far()
        label = f"{strategy}.{param_set}"
        data.series[label] = (
            [float(i + 1) for i in range(len(trace))],
            [v / 1e6 for v in trace],
        )
    return data


def speedup_over_pla(study: SundogStudy) -> float:
    """The headline number: tuned throughput over pla-hints-only (2.8x)."""
    from repro.core.history import best_of

    pla = best_of(study.passes("pla", "h")).rerun_summary()[0]
    candidates = [
        best_of(study.passes(s, p)).rerun_summary()[0]
        for (s, p) in study.results
        if p != "h"
    ]
    if not candidates or pla <= 0:
        raise ValueError("study lacks the arms needed for the speedup")
    return max(candidates) / pla


def trace_summary(events: list[Mapping[str, object]]) -> FigureData:
    """Where-time-goes aggregate of a run trace (``obs summary``).

    Consumes the JSONL event stream an :func:`repro.obs.session` wrote
    and reduces it to per-span timing rows — the suggest/evaluate/tell
    phase split first (the paper's Figure 7 cost axis), then every other
    instrumented span (GP refits vs rank-1 updates, acquisition
    proposals, engine evaluations).
    """
    summary = summarize_trace(events)
    data = FigureData(
        "Obs Summary",
        "Where the wall-clock went (aggregated from the run trace)",
    )
    data.rows = summary_rows(summary)
    data.notes.append(
        f"{summary.n_runs} tuning run(s), {summary.n_steps} steps, "
        f"wall {summary.wall_seconds:.3f}s"
    )
    data.notes.append(
        f"suggest+evaluate+tell account for {summary.coverage:.1%} of "
        f"tuning.run wall-clock ({summary.phase_total_seconds:.3f}s)"
    )
    if summary.failures:
        data.notes.append(f"{summary.failures} failure event(s) in the trace")
    hits = summary.counters.get("objective.cache_hits", 0)
    misses = summary.counters.get("objective.cache_misses", 0)
    if hits or misses:
        data.notes.append(
            f"objective cache: {hits} hits / {misses} misses "
            f"({hits / (hits + misses):.1%} hit rate)"
        )
    return data
