"""Experiment pipeline: regenerate every table and figure of the paper.

* :mod:`repro.experiments.presets` — paper constants and step budgets,
* :mod:`repro.experiments.runner` — the synthetic (Figure 4–7) and
  Sundog (Figure 8) studies,
* :mod:`repro.experiments.figures` — data builders per table/figure,
* :mod:`repro.experiments.report` — ASCII rendering.

The mapping from paper table/figure to builder and benchmark lives in
DESIGN.md §3; measured-vs-paper numbers in EXPERIMENTS.md.
"""

from repro.experiments.presets import Budget, default_budget, full_budget

__all__ = [
    "Budget",
    "SundogStudy",
    "SyntheticStudy",
    "default_budget",
    "full_budget",
]


def __getattr__(name: str) -> object:
    # The study classes are loaded lazily: the runner module sits on
    # top of repro.service.campaign, which itself imports
    # repro.experiments.presets — an eager import here would make that
    # chain circular.
    if name in ("SundogStudy", "SyntheticStudy"):
        from repro.experiments import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
