"""Experiment pipeline: regenerate every table and figure of the paper.

* :mod:`repro.experiments.presets` — paper constants and step budgets,
* :mod:`repro.experiments.runner` — the synthetic (Figure 4–7) and
  Sundog (Figure 8) studies,
* :mod:`repro.experiments.figures` — data builders per table/figure,
* :mod:`repro.experiments.report` — ASCII rendering.

The mapping from paper table/figure to builder and benchmark lives in
DESIGN.md §3; measured-vs-paper numbers in EXPERIMENTS.md.
"""

from repro.experiments.presets import Budget, default_budget, full_budget
from repro.experiments.runner import SundogStudy, SyntheticStudy

__all__ = [
    "Budget",
    "SundogStudy",
    "SyntheticStudy",
    "default_budget",
    "full_budget",
]
