"""Self-contained HTML run reports from a JSONL observability trace.

``repro-experiments obs report RUN.jsonl -o report.html`` renders one
file a browser can open offline — no JavaScript, no external assets:
charts are inline SVG from :mod:`repro.experiments.svg`, styling is one
embedded stylesheet.  Sections degrade gracefully: a trace without
diagnostics still gets its phase-time breakdown, and vice versa.

Sections
--------
* **Run manifest** — identity attrs from the trace's first record.
* **Convergence & regret** — best-so-far / per-tell values and, when
  the analytic reference exists, incumbent regret (``diag.tell``
  series; docs/OBSERVABILITY.md §diagnostics).
* **Calibration** — one-step-ahead standardized residuals vs the ±1.96
  interval bounds, running 95% coverage, NLPD.
* **Phase-time breakdown** — the Figure 7-style where-time-goes table
  and bar chart (:func:`repro.obs.summarize_trace`).
* **Drift & fault timeline** — drift detections, evaluation failures,
  fault injections, retries, resumes, in trace order.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.obs.diagnostics import extract_diagnostics
from repro.obs.summary import summarize_trace, summary_rows
from repro.experiments.svg import (
    svg_bar_chart,
    svg_line_chart,
    svg_scatter_chart,
)

#: Z bound of the central 95% normal interval (plotted calibration band).
_Z95 = 1.959964

#: Event-name prefixes that belong on the drift/fault timeline.
TIMELINE_PREFIXES = (
    "drift.",
    "resilience.",
    "engine.fault_injected",
    "tuning.evaluation_failure",
    "tuning.early_stop",
    "tuning.resume",
    "continuous.",
)

_STYLE = """
body { font-family: sans-serif; margin: 2em auto; max-width: 960px;
       color: #222; }
h1 { border-bottom: 2px solid #4477aa; padding-bottom: 0.3em; }
h2 { margin-top: 2em; color: #4477aa; }
table { border-collapse: collapse; margin: 1em 0; font-size: 0.9em; }
th, td { border: 1px solid #ccc; padding: 0.3em 0.7em; text-align: left; }
th { background: #eef2f7; }
.note { color: #777; font-style: italic; }
svg { max-width: 100%; height: auto; }
"""


def _esc(text: object) -> str:
    return html.escape(str(text))


def _html_table(rows: Sequence[Mapping[str, object]]) -> str:
    if not rows:
        return '<p class="note">(no rows)</p>'
    columns = list(rows[0].keys())
    parts = ["<table>", "<tr>"]
    parts += [f"<th>{_esc(c)}</th>" for c in columns]
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        parts += [f"<td>{_esc(row.get(c, ''))}</td>" for c in columns]
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def _note(text: str) -> str:
    return f'<p class="note">{_esc(text)}</p>'


def _manifest_section(events: Sequence[Mapping[str, object]]) -> str:
    for record in events:
        if record.get("type") == "manifest":
            attrs = record.get("attrs")
            if isinstance(attrs, Mapping) and attrs:
                rows = [{"key": k, "value": v} for k, v in attrs.items()]
                return _html_table(rows)
            break
    return _note("trace carries no manifest")


def _convergence_section(diags: Sequence[Mapping[str, object]]) -> str:
    telling = [d for d in diags if "value" in d]
    if not telling:
        return _note(
            "no diag.tell events in this trace — record it with an obs "
            "session active (e.g. --trace) to get convergence diagnostics"
        )
    xs = list(range(len(telling)))
    series: dict[str, tuple[list[float], list[float]]] = {
        "best so far": (xs, [float(d["best_value"]) for d in telling]),  # type: ignore[arg-type]
        "per-tell value": (xs, [float(d["value"]) for d in telling]),  # type: ignore[arg-type]
    }
    refs = [
        (i, float(d["reference_optimum"]))  # type: ignore[arg-type]
        for i, d in enumerate(telling)
        if "reference_optimum" in d
    ]
    if refs:
        series["noise-free reference optimum"] = (
            [x for x, _ in refs],
            [r for _, r in refs],
        )
    parts = [
        svg_line_chart(
            series,
            title="Convergence",
            x_label="tell",
            y_label="objective value",
        )
    ]
    regret = [
        (i, float(d["incumbent_regret"]))  # type: ignore[arg-type]
        for i, d in enumerate(telling)
        if "incumbent_regret" in d
    ]
    if regret:
        parts.append(
            svg_line_chart(
                {
                    "incumbent regret": (
                        [x for x, _ in regret],
                        [max(0.0, r) for _, r in regret],
                    )
                },
                title="Incumbent regret vs noise-free reference",
                x_label="tell",
                y_label="relative regret",
            )
        )
    acq = [
        (i, float(d["acquisition_value"]))  # type: ignore[arg-type]
        for i, d in enumerate(telling)
        if "acquisition_value" in d
    ]
    if acq:
        parts.append(
            svg_line_chart(
                {
                    "acquisition value": (
                        [x for x, _ in acq],
                        [max(0.0, a) for _, a in acq],
                    )
                },
                title="Acquisition-value decay",
                x_label="tell",
                y_label="acquisition value",
            )
        )
    return "\n".join(parts)


def _calibration_section(diags: Sequence[Mapping[str, object]]) -> str:
    scored = [d for d in diags if "residual_z" in d]
    if not scored:
        return _note(
            "no scored tells (surrogate predictions) in this trace — "
            "grid/random strategies and warm-up steps carry no "
            "calibration data"
        )
    xs = list(range(len(scored)))
    zs = [float(d["residual_z"]) for d in scored]  # type: ignore[arg-type]
    scatter = svg_scatter_chart(
        {"standardized residual": (xs, zs)},
        title="One-step-ahead calibration",
        x_label="scored tell",
        y_label="z = (y − μ) / σ",
        hlines=((_Z95, "+1.96"), (-_Z95, "−1.96"), (0.0, "")),
    )
    n = len(scored)
    covered = sum(1 for z in zs if abs(z) <= _Z95)
    nlpds = [float(d["nlpd"]) for d in scored if "nlpd" in d]  # type: ignore[arg-type]
    stats_rows = [
        {
            "scored tells": n,
            "95% coverage": f"{covered / n:.1%} (target 95%)",
            "mean |z|": f"{sum(abs(z) for z in zs) / n:.2f}",
            "mean NLPD": (
                f"{sum(nlpds) / len(nlpds):.3f}" if nlpds else "n/a"
            ),
        }
    ]
    return scatter + "\n" + _html_table(stats_rows)


def _phase_section(events: Sequence[Mapping[str, object]]) -> str:
    summary = summarize_trace(events)
    rows = summary_rows(summary)
    if not rows:
        return _note("no span records in this trace")
    chart_rows = [r for r in rows if float(r["total_s"]) > 0.0]  # type: ignore[arg-type]
    parts = []
    if chart_rows:
        parts.append(
            svg_bar_chart(
                chart_rows,
                value_key="total_s",
                label_keys=["span"],
                title="Where time goes (total seconds per span)",
                y_label="seconds",
            )
        )
    parts.append(_html_table(rows))
    parts.append(
        _note(
            f"{summary.n_runs} run(s), {summary.n_steps} step(s); "
            f"suggest/evaluate/tell cover {summary.coverage:.1%} of "
            f"run wall-clock"
        )
    )
    return "\n".join(parts)


def _timeline_section(events: Sequence[Mapping[str, object]]) -> str:
    rows: list[dict[str, object]] = []
    for record in events:
        if record.get("type") != "event":
            continue
        name = str(record.get("name", ""))
        if not name.startswith(TIMELINE_PREFIXES):
            continue
        attrs = record.get("attrs")
        detail = ""
        if isinstance(attrs, Mapping) and attrs:
            detail = ", ".join(f"{k}={v}" for k, v in attrs.items())
        rows.append(
            {
                "t (s)": f"{float(record.get('t', 0.0)):.3f}",  # type: ignore[arg-type]
                "event": name,
                "detail": detail,
            }
        )
    if not rows:
        return _note("no drift, fault, or resilience events in this trace")
    shown = rows[:200]
    out = _html_table(shown)
    if len(rows) > len(shown):
        out += _note(f"... and {len(rows) - len(shown)} more events")
    return out


def render_report(
    events: Iterable[Mapping[str, object]], *, title: str = "Tuning run report"
) -> str:
    """Render a trace's event stream as one self-contained HTML page."""
    events = list(events)
    diags = extract_diagnostics(events)
    sections = (
        ("Run manifest", _manifest_section(events)),
        ("Convergence & regret", _convergence_section(diags)),
        ("Calibration", _calibration_section(diags)),
        ("Phase-time breakdown", _phase_section(events)),
        ("Drift & fault timeline", _timeline_section(events)),
    )
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    for heading, body in sections:
        parts.append(f"<h2>{_esc(heading)}</h2>")
        parts.append(body)
    parts.append("</body></html>")
    return "\n".join(parts)


def write_report(
    events: Iterable[Mapping[str, object]],
    path: str | Path,
    *,
    title: str = "Tuning run report",
) -> Path:
    """Render and write the report; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report(events, title=title), encoding="utf-8")
    return path
