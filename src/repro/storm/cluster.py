"""Physical cluster model: machines, cores, memory, network.

The paper's testbed (§IV-C) is 80 student iMacs — 4 cores at 2.7 GHz,
8 GB RAM, SSDs — on a 1 Gbps switched network (two Catalyst 4510R+E
aggregation switches), running Storm on YARN with one worker per
machine.  :func:`paper_cluster` reconstructs that deployment; arbitrary
clusters can be described for what-if studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MachineSpec:
    """Hardware of one cluster machine.

    ``core_speed`` expresses how many compute units a core retires per
    millisecond; 1.0 is the calibration point at which one compute unit
    equals one millisecond of busy work (paper §IV-B1).
    """

    cores: int = 4
    core_speed: float = 1.0
    memory_mb: int = 8192
    nic_mbps: float = 1000.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.core_speed <= 0:
            raise ValueError("core_speed must be > 0")
        if self.memory_mb < 1:
            raise ValueError("memory_mb must be >= 1")
        if self.nic_mbps <= 0:
            raise ValueError("nic_mbps must be > 0")

    @property
    def nic_bytes_per_ms(self) -> float:
        return self.nic_mbps * 1e6 / 8.0 / 1000.0


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of ``n_machines`` identical machines."""

    n_machines: int = 80
    machine: MachineSpec = field(default_factory=MachineSpec)
    workers_per_machine: int = 1
    #: Supervisors refuse to start more executors than this per worker —
    #: the hard limit that yields the paper's "zero performance" runs
    #: when the parallel linear ascent overshoots.
    max_executors_per_worker: int = 50

    def __post_init__(self) -> None:
        if self.n_machines < 1:
            raise ValueError("n_machines must be >= 1")
        if self.workers_per_machine < 1:
            raise ValueError("workers_per_machine must be >= 1")
        if self.max_executors_per_worker < 1:
            raise ValueError("max_executors_per_worker must be >= 1")

    @property
    def total_cores(self) -> int:
        return self.n_machines * self.machine.cores

    @property
    def total_workers(self) -> int:
        return self.n_machines * self.workers_per_machine

    @property
    def total_compute_rate(self) -> float:
        """Compute units the whole cluster retires per millisecond."""
        return self.total_cores * self.machine.core_speed

    @property
    def max_total_executors(self) -> int:
        return self.total_workers * self.max_executors_per_worker

    def worker_slots(self) -> list["WorkerSlot"]:
        """All worker slots in deterministic (machine, slot) order."""
        slots = []
        for machine_id in range(self.n_machines):
            for slot_id in range(self.workers_per_machine):
                slots.append(WorkerSlot(machine_id=machine_id, slot_id=slot_id))
        return slots


@dataclass(frozen=True, order=True)
class WorkerSlot:
    """One worker process slot, identified by machine and local slot id."""

    machine_id: int
    slot_id: int

    @property
    def key(self) -> str:
        return f"m{self.machine_id}w{self.slot_id}"


def paper_cluster() -> ClusterSpec:
    """The paper's 80-iMac testbed (§IV-C1): 320 cores, 1 Gbps, 8 GB."""
    return ClusterSpec(
        n_machines=80,
        machine=MachineSpec(cores=4, core_speed=1.0, memory_mb=8192, nic_mbps=1000.0),
        workers_per_machine=1,
        max_executors_per_worker=50,
    )


def small_test_cluster() -> ClusterSpec:
    """A 4-machine cluster, handy for fast tests and examples."""
    return ClusterSpec(
        n_machines=4,
        machine=MachineSpec(cores=4, core_speed=1.0, memory_mb=4096, nic_mbps=1000.0),
        workers_per_machine=1,
        max_executors_per_worker=50,
    )
