"""Analytic bottleneck model of a Storm/Trident deployment.

This is the fast execution engine: a closed-form steady-state capacity
analysis of the same mechanics the discrete-event simulator
(:mod:`repro.storm.simulation`) realizes event-by-event.  Experiments
default to it because Bayesian-optimization studies evaluate thousands
of configurations; tests cross-validate it against the DES.

Model summary (DESIGN.md §5).  For batch size ``B``, batch parallelism
``P`` and per-operator task counts ``n_o``:

* effective per-tuple cost ``c'_o = c_o * n_o`` for contentious
  operators (parallelising a bolt gated on a shared resource only adds
  contention, §IV-B2), else ``c_o``;
* per-batch stage time ``T_o = B v_o c'_o / (p_o * speed * eta)`` where
  ``v_o`` is the operator's relative tuple volume, ``p_o`` its usable
  parallelism (tasks, grouping skew, cores) and ``eta`` the
  context-switch efficiency of the placement;
* batch completion rate = min(pipeline fill ``P / T_lat``, bottleneck
  stage ``1 / max T_o``, CPU saturation, acker capacity, receiver
  capacity, NIC capacity), with ``T_lat = sum of layer times + per-batch
  coordination overhead``;
* throughput = rate × ``B``; configurations exceeding executor or
  memory capacity fail with zero throughput (the parallel linear
  ascent's stop signal).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.obs import runtime as obs_runtime
from repro.storm.acker import AckerModel
from repro.storm.cluster import ClusterSpec
from repro.storm.config import TopologyConfig
from repro.storm.faults import FaultPlan, inject_faults
from repro.storm.grouping import effective_parallelism, remote_fraction
from repro.storm.metrics import MeasuredRun
from repro.storm.noise import NoiseModel, NoNoise, draw_observation
from repro.storm.schedule import WorkloadPoint, WorkloadSchedule
from repro.storm.topology import Topology, effective_cost

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.storm.analytic_batch import AnalyticBatchModel


@dataclass(frozen=True)
class CalibrationParams:
    """Tunable constants of the execution model.

    Defaults are calibrated so the paper's Sundog anchors reproduce
    (≈0.6M tuples/s with the developers' manual settings, ≈1.7M after
    batch tuning) and the synthetic topologies land in a plausible
    regime; EXPERIMENTS.md documents the calibration.
    """

    #: Per-mini-batch coordination/commit overhead in ms (Trident batch
    #: setup, master batch coordinator round-trips, state commit).
    batch_overhead_ms: float = 150.0
    #: Per-operator, per-batch coordination overhead in ms: every bolt
    #: sees a batch-begin and batch-commit signal from the master batch
    #: coordinator regardless of how many tuples the batch carries.
    #: This is the latency *floor* that parallelism hints cannot tune
    #: away — the reason hint-only tuning plateaus on Sundog while
    #: batch-size/batch-parallelism tuning unlocks ~2.8x (§V-D).
    stage_overhead_ms: float = 20.0
    #: Storm fails tuples (and Trident the whole batch) that are not
    #: fully processed within the message timeout
    #: (``topology.message.timeout.secs``, default 30 s).  A deployment
    #: whose batch latency exceeds it replays batches forever and
    #: measures zero throughput — the cliff the parallel linear ascent
    #: falls off (its three-consecutive-zeros stop rule, §V-A).
    batch_timeout_ms: float = 30_000.0
    #: Context-switch penalty coefficient: efficiency is
    #: ``1 / (1 + kappa * max(0, (threads - cores) / cores)^2)``.
    #: Quadratic in the oversubscription ratio: a couple of extra
    #: runnable threads per core are nearly free, drowning a 4-core
    #: machine in dozens of executors is not.
    context_switch_kappa: float = 0.03
    #: Background CPU each executor burns per millisecond regardless of
    #: load (heartbeats, disruptor-queue polling, metrics).  This is
    #: what makes *over*-parallelization costly: a cluster drowning in
    #: executors loses budget before processing a single tuple.
    per_task_cpu_overhead: float = 0.012
    #: Idle worker-pool threads beyond the core count still burn a
    #: fraction of a runnable thread each (scheduler pressure).
    pool_oversubscription_weight: float = 0.25
    #: Tuples one receiver thread can deserialize per millisecond.
    receiver_tuples_per_ms: float = 300.0
    #: Heap overhead per executor (task bookkeeping, buffers).
    per_task_memory_mb: float = 32.0
    #: Memory fraction of a machine usable for in-flight batch data.
    usable_memory_fraction: float = 0.8
    #: Acker cost model.
    ack_cost_units: float = 0.002
    #: Fraction of a batch's tuple bytes that is framing/serialization
    #: overhead on the wire.
    wire_overhead: float = 0.1

    def __post_init__(self) -> None:
        if self.batch_overhead_ms < 0:
            raise ValueError("batch_overhead_ms must be >= 0")
        if self.context_switch_kappa < 0:
            raise ValueError("context_switch_kappa must be >= 0")
        if self.receiver_tuples_per_ms <= 0:
            raise ValueError("receiver_tuples_per_ms must be > 0")
        if not 0 < self.usable_memory_fraction <= 1:
            raise ValueError("usable_memory_fraction must be in (0, 1]")


@dataclass(frozen=True)
class CapacityBreakdown:
    """The individual throughput caps (tuples/s) and which one bound."""

    pipeline_fill: float
    bottleneck_stage: float
    cpu_saturation: float
    acker: float
    receiver: float
    nic: float

    def limiting(self) -> tuple[str, float]:
        caps = {
            "pipeline_fill": self.pipeline_fill,
            "bottleneck_stage": self.bottleneck_stage,
            "cpu_saturation": self.cpu_saturation,
            "acker": self.acker,
            "receiver": self.receiver,
            "nic": self.nic,
        }
        name = min(caps, key=lambda k: caps[k])
        return name, caps[name]


class AnalyticPerformanceModel:
    """Evaluate configurations of one topology on one cluster."""

    def __init__(
        self,
        topology: Topology,
        cluster: ClusterSpec,
        calibration: CalibrationParams | None = None,
        noise: NoiseModel | None = None,
        seed: int | None = None,
        faults: FaultPlan | None = None,
        schedule: WorkloadSchedule | None = None,
    ) -> None:
        self.topology = topology
        self.cluster = cluster
        self.calibration = calibration or CalibrationParams()
        self.noise = noise or NoNoise()
        self.faults = faults
        self.schedule = schedule
        self._rng = np.random.default_rng(seed)
        self._acker_model = AckerModel(ack_cost_units=self.calibration.ack_cost_units)
        # Topology-derived constants, independent of the configuration.
        self._volumes = topology.volumes()
        self._order = topology.topological_order()
        self._layers = {name: topology.layer_of(name) for name in self._order}
        self._edge_min_parallelism_grouping = {
            name: [
                topology.edge(p, name).grouping for p in topology.parents(name)
            ]
            for name in self._order
        }
        # Hoisted per-evaluation invariants (PR 5): grouping skew and
        # network/memory demand coefficients depend only on the topology
        # and cluster, so compute them once instead of per evaluation.
        # The stored factors are deliberately kept *unreduced* (volume,
        # selectivity, fraction, bytes as separate terms) so the
        # per-evaluation arithmetic performs the exact same float
        # operations, in the same order, as the original inline code —
        # bit-for-bit identical results.
        self._parallelism_cache: dict[tuple[str, int], float] = {}
        self._ack_demand_units = self._acker_model.demand_units_per_source_tuple(
            topology
        )
        self._edge_terms = tuple(
            (
                self._volumes[edge.src],
                topology.operator(edge.src).selectivity,
                remote_fraction(edge.grouping, cluster.n_machines),
                topology.operator(edge.src).tuple_bytes,
            )
            for edge in topology.edges
        )
        self._ingest_terms = tuple(
            (self._volumes[s], topology.operator(s).tuple_bytes)
            for s in topology.sources()
        )
        self._inflight_bytes_per_batch_unit = sum(
            self._volumes[name] * topology.operator(name).tuple_bytes
            for name in self._order
        )
        self._batch_model: AnalyticBatchModel | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(
        self,
        config: TopologyConfig,
        *,
        seed: int | None = None,
        workload_time_s: float = 0.0,
    ) -> MeasuredRun:
        """Deterministic mechanics plus faults and observation noise.

        ``seed`` draws the noise (and any injected fault decision, see
        :mod:`repro.storm.faults`) from a per-evaluation stream instead
        of the engine's shared one (see
        :func:`repro.storm.noise.draw_observation`).  ``workload_time_s``
        samples the engine's :class:`WorkloadSchedule` (if any) at that
        offset; without a schedule it is ignored.
        """
        run = inject_faults(
            self.faults,
            lambda: self.evaluate_noise_free(
                config, workload_time_s=workload_time_s
            ),
            config_key=repr(config),
            seed=seed,
            tracer=obs_runtime.current().tracer,
            engine="analytic",
        )
        if run.failed:
            return run
        observed = draw_observation(self.noise, run.throughput_tps, self._rng, seed)
        return run.with_throughput(observed)

    def __call__(self, config: TopologyConfig) -> float:
        return self.evaluate(config).throughput_tps

    def evaluate_noise_free(
        self, config: TopologyConfig, *, workload_time_s: float = 0.0
    ) -> MeasuredRun:
        """Closed-form steady-state evaluation of one configuration.

        Computes per-operator stage times, batch latency, and the six
        throughput caps of DESIGN.md §5, returning the binding one in
        ``details["limiting_cap"]``; infeasible deployments (executor
        capacity, batch timeout, memory) fail with zero throughput.
        """
        ctx = obs_runtime.current()
        with ctx.tracer.span("engine.analytic.evaluate") as span:
            run = self._evaluate_mechanics(config, self._point_at(workload_time_s))
            if run.failed:
                span.set_attribute("failed", True)
                ctx.tracer.event(
                    "engine.failure", engine="analytic", reason=run.failure_reason
                )
            else:
                span.set_attribute(
                    "limiting_cap", run.details.get("limiting_cap", "")
                )
            return run

    @property
    def batch_model(self) -> AnalyticBatchModel:
        """Vectorized evaluator sharing this model's hoisted structures.

        Built lazily so pickled models (process-pool executors) stay
        small; the batch model is reconstructed on first use.
        """
        if self._batch_model is None:
            from repro.storm.analytic_batch import AnalyticBatchModel

            self._batch_model = AnalyticBatchModel(
                self.topology,
                self.cluster,
                self.calibration,
                schedule=self.schedule,
            )
        return self._batch_model

    def evaluate_noise_free_batch(
        self,
        configs: Sequence[TopologyConfig],
        *,
        workload_time_s: float = 0.0,
    ) -> list[MeasuredRun]:
        """Batch counterpart of :meth:`evaluate_noise_free`.

        One vectorized pass over all ``configs`` (span
        ``engine.analytic.evaluate_batch``), bit-identical to calling
        :meth:`evaluate_noise_free` per config.
        """
        batch = self.batch_model.evaluate(configs, workload_time_s=workload_time_s)
        tracer = obs_runtime.current().tracer
        runs = batch.runs()
        for run in runs:
            if run.failed:
                tracer.event(
                    "engine.failure", engine="analytic", reason=run.failure_reason
                )
        return runs

    def evaluate_batch(
        self,
        configs: Sequence[TopologyConfig],
        *,
        seeds: Sequence[int | None] | None = None,
        workload_time_s: float = 0.0,
        mechanics_runs: Sequence[MeasuredRun] | None = None,
    ) -> list[MeasuredRun]:
        """Batch counterpart of :meth:`evaluate`: mechanics + faults + noise.

        The deterministic mechanics run as one vectorized pass; fault
        decisions and noise draws then replay per evaluation in list
        order, exactly as a serial loop over :meth:`evaluate` would
        (same per-seed streams, same shared-RNG draw order), so the
        observations are bit-identical.  :class:`~repro.storm.noise.NoNoise`
        short-circuits the per-row draw entirely — the vectorized fast
        path for the common deterministic-objective case.

        ``mechanics_runs`` supplies precomputed noise-free mechanics, one
        per config — the cross-cell broker uses it to hand over rows it
        already evaluated through the packed engine.  They must be
        bit-identical to what :class:`AnalyticBatchModel` would produce
        (the packed engine guarantees this); faults and noise are still
        applied per row here so the observation streams do not change.
        """
        if seeds is not None and len(seeds) != len(configs):
            raise ValueError("seeds must match configs in length")
        if mechanics_runs is not None and len(mechanics_runs) != len(configs):
            raise ValueError("mechanics_runs must match configs in length")
        batch = (
            None
            if mechanics_runs is not None
            else self.batch_model.evaluate(configs, workload_time_s=workload_time_s)
        )
        tracer = obs_runtime.current().tracer
        noiseless = type(self.noise) is NoNoise
        out: list[MeasuredRun] = []
        for i, config in enumerate(configs):
            seed = seeds[i] if seeds is not None else None

            def mechanics(index: int = i) -> MeasuredRun:
                run = (
                    mechanics_runs[index]
                    if mechanics_runs is not None
                    else batch.run(index)
                )
                if run.failed:
                    tracer.event(
                        "engine.failure",
                        engine="analytic",
                        reason=run.failure_reason,
                    )
                return run

            run = inject_faults(
                self.faults,
                mechanics,
                config_key=repr(config),
                seed=seed,
                tracer=tracer,
                engine="analytic",
            )
            if run.failed:
                out.append(run)
                continue
            if noiseless:
                # NoNoise returns max(0.0, value) == value for the
                # non-negative throughputs the engine produces.
                out.append(run.with_throughput(run.throughput_tps))
                continue
            observed = draw_observation(
                self.noise, run.throughput_tps, self._rng, seed
            )
            out.append(run.with_throughput(observed))
        return out

    def _point_at(self, workload_time_s: float) -> WorkloadPoint | None:
        """Sample the schedule; ``None`` (no schedule) keeps the static path."""
        if self.schedule is None:
            return None
        return self.schedule.at(workload_time_s)

    def _evaluate_mechanics(
        self, config: TopologyConfig, point: WorkloadPoint | None = None
    ) -> MeasuredRun:
        topo = self.topology
        cluster = self.cluster
        cal = self.calibration
        hints = config.normalized_hints(topo)
        n_ackers = config.effective_ackers()
        total_executors = sum(hints.values()) + n_ackers

        if total_executors > cluster.max_total_executors:
            return MeasuredRun.failure(
                f"{total_executors} executors exceed cluster capacity "
                f"{cluster.max_total_executors}",
                total_tasks=sum(hints.values()),
            )

        machine = cluster.machine
        n_machines = cluster.n_machines
        eta = self._efficiency(config, total_executors)
        usable_cores = min(
            machine.cores,
            config.worker_threads * cluster.workers_per_machine,
        )
        cluster_rate = usable_cores * n_machines * machine.core_speed * eta

        B = float(config.batch_size)
        P = float(config.batch_parallelism)

        # Per-operator per-batch stage times.  A workload point scales
        # per-tuple cost by its load and shaves grouped-stream
        # parallelism by its skew — mirrored expression-for-expression
        # in AnalyticBatchModel._mechanics (bit-compatibility contract).
        skew_factor = 1.0 - point.skew if point is not None else 1.0
        stage_times: dict[str, float] = {}
        total_work = 0.0
        for name in self._order:
            op = topo.operator(name)
            n_tasks = hints[name]
            cost = effective_cost(op, n_tasks)
            if point is not None:
                cost = cost * point.load
            tuples = B * self._volumes[name]
            work = tuples * cost  # compute-unit milliseconds
            total_work += work
            parallelism = self._operator_parallelism(name, n_tasks)
            if (
                point is not None
                and point.skew != 0.0
                and self._edge_min_parallelism_grouping[name]
            ):
                parallelism = parallelism * skew_factor
            parallelism = min(parallelism, usable_cores * n_machines)
            rate = max(parallelism, 1e-12) * machine.core_speed * eta
            compute_time = work / rate if work > 0 else 0.0
            stage_times[name] = compute_time + cal.stage_overhead_ms

        # Acker work rides along on the CPU budget.
        ack_work = B * self._ack_demand_units
        total_work += ack_work

        # Layer times and batch latency.
        layer_time: dict[int, float] = {}
        for name, t in stage_times.items():
            layer = self._layers[name]
            layer_time[layer] = max(layer_time.get(layer, 0.0), t)
        sum_layer_times = sum(layer_time.values())
        t_max = max(stage_times.values()) if stage_times else 0.0
        latency = sum_layer_times + cal.batch_overhead_ms
        if latency > cal.batch_timeout_ms:
            return MeasuredRun.failure(
                f"batch latency {latency:.0f} ms exceeds the "
                f"{cal.batch_timeout_ms:.0f} ms message timeout (batches "
                "replay forever)",
                total_tasks=sum(hints.values()),
            )

        # Throughput caps, all expressed in source tuples per second.
        def batches_to_tps(rate_batches_per_ms: float) -> float:
            return rate_batches_per_ms * B * 1000.0

        cap_pipeline = batches_to_tps(P / latency) if latency > 0 else math.inf
        cap_stage = batches_to_tps(1.0 / t_max) if t_max > 0 else math.inf
        cap_cpu = (
            batches_to_tps(cluster_rate / total_work) if total_work > 0 else math.inf
        )
        # Inlined AckerModel.max_throughput_tps with the demand term
        # hoisted to __init__ (same operations, same order).
        if n_ackers == 0 or self._ack_demand_units <= 0:
            cap_acker = math.inf
        else:
            cap_acker = (
                self._acker_model.capacity_units_per_ms(
                    n_ackers, machine.core_speed * eta
                )
                * 1000.0
                / self._ack_demand_units
            )
        remote_tuples, remote_bytes, ingest_bytes = self._network_demand(B, hints)
        if point is not None:
            # Load is per-tuple weight: heavier tuples ship more bytes,
            # but the tuple *count* per batch is unchanged.
            remote_bytes = remote_bytes * point.load
            ingest_bytes = ingest_bytes * point.load
        cap_receiver = self._receiver_cap(config, remote_tuples, B)
        cap_nic = self._nic_cap(remote_bytes + ingest_bytes, B)

        caps = CapacityBreakdown(
            pipeline_fill=cap_pipeline,
            bottleneck_stage=cap_stage,
            cpu_saturation=cap_cpu,
            acker=cap_acker,
            receiver=cap_receiver,
            nic=cap_nic,
        )
        limiting_name, throughput = caps.limiting()

        # Memory feasibility: executor overhead plus resident batch data.
        mem_fail = self._memory_exceeded(config, hints, total_executors, B, P, point)
        if mem_fail is not None:
            return MeasuredRun.failure(mem_fail, total_tasks=sum(hints.values()))

        batches_per_ms = throughput / (B * 1000.0) if B > 0 else 0.0
        network_bytes_per_ms = batches_per_ms * (remote_bytes + ingest_bytes)
        network_mb_per_worker_s = (
            network_bytes_per_ms * 1000.0 / 1e6 / cluster.total_workers
        )

        return MeasuredRun(
            throughput_tps=throughput,
            network_mb_per_worker_s=network_mb_per_worker_s,
            batch_latency_ms=latency,
            total_tasks=sum(hints.values()),
            details={
                "caps": caps,
                "limiting_cap": limiting_name,
                "eta": eta,
                "stage_times_ms": stage_times,
                "total_work_ms": total_work,
                "total_executors": total_executors,
            },
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _efficiency(self, config: TopologyConfig, total_executors: int) -> float:
        """Combined context-switch and per-executor-overhead efficiency."""
        cluster = self.cluster
        cal = self.calibration
        system_threads = 2.0
        per_worker = (
            config.receiver_threads
            + system_threads
            + cal.pool_oversubscription_weight
            * max(0, config.worker_threads - cluster.machine.cores)
        )
        threads_per_machine = (
            total_executors / cluster.n_machines
            + per_worker * cluster.workers_per_machine
        )
        cores = cluster.machine.cores
        excess = max(0.0, (threads_per_machine - cores) / cores)
        cs_efficiency = 1.0 / (1.0 + cal.context_switch_kappa * excess**2)
        overhead_share = min(
            0.95,
            cal.per_task_cpu_overhead
            * total_executors
            / cluster.total_compute_rate,
        )
        return cs_efficiency * (1.0 - overhead_share)

    def _operator_parallelism(self, name: str, n_tasks: int) -> float:
        """Usable parallelism of an operator's task set.

        Bounded by the task count and by the load skew the incoming
        groupings induce (a FIELDS consumer is held back by its hottest
        key partition; GLOBAL pins everything on one task).
        """
        key = (name, n_tasks)
        cached = self._parallelism_cache.get(key)
        if cached is not None:
            return cached
        groupings = self._edge_min_parallelism_grouping[name]
        if not groupings:
            value = float(n_tasks)
        else:
            value = min(effective_parallelism(g, n_tasks) for g in groupings)
        self._parallelism_cache[key] = value
        return value

    def _network_demand(
        self, batch_size: float, hints: dict[str, int]
    ) -> tuple[float, float, float]:
        """Remote tuples, remote bytes and source-ingest bytes per batch."""
        wire = 1.0 + self.calibration.wire_overhead
        remote_tuples = 0.0
        remote_bytes = 0.0
        for volume, selectivity, frac, tuple_bytes in self._edge_terms:
            emitted = batch_size * volume * selectivity
            remote_tuples += emitted * frac
            remote_bytes += emitted * frac * tuple_bytes * wire
        ingest_bytes = sum(
            batch_size * volume * tuple_bytes * wire
            for volume, tuple_bytes in self._ingest_terms
        )
        return remote_tuples, remote_bytes, ingest_bytes

    def _receiver_cap(
        self, config: TopologyConfig, remote_tuples_per_batch: float, B: float
    ) -> float:
        if remote_tuples_per_batch <= 0:
            return math.inf
        per_worker = remote_tuples_per_batch / self.cluster.total_workers
        capacity = config.receiver_threads * self.calibration.receiver_tuples_per_ms
        batches_per_ms = capacity / per_worker
        return batches_per_ms * B * 1000.0

    def _nic_cap(self, bytes_per_batch: float, B: float) -> float:
        if bytes_per_batch <= 0:
            return math.inf
        per_machine = bytes_per_batch / self.cluster.n_machines
        batches_per_ms = self.cluster.machine.nic_bytes_per_ms / per_machine
        return batches_per_ms * B * 1000.0

    def _memory_exceeded(
        self,
        config: TopologyConfig,
        hints: dict[str, int],
        total_executors: int,
        B: float,
        P: float,
        point: WorkloadPoint | None = None,
    ) -> str | None:
        cal = self.calibration
        cluster = self.cluster
        executors_per_machine = total_executors / cluster.n_machines
        task_mb = executors_per_machine * cal.per_task_memory_mb
        inflight_bytes = B * P * self._inflight_bytes_per_batch_unit
        if point is not None:
            inflight_bytes = inflight_bytes * point.load
        data_mb = inflight_bytes / cluster.n_machines / 1e6
        budget = cluster.machine.memory_mb * cal.usable_memory_fraction
        if task_mb + data_mb > budget:
            return (
                f"memory exhausted: {task_mb:.0f} MB task overhead + "
                f"{data_mb:.0f} MB in-flight data > {budget:.0f} MB budget"
            )
        return None
