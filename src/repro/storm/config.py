"""The Table I configuration surface of a Storm/Trident deployment.

The paper tunes six kinds of parameters (Table I):

==================  =====================================================
Worker Threads      threads in each worker's executor pool
Receiver Threads    threads each worker starts to receive messages
Ackers              number of acker task instances (bookkeeping)
Batch Parallelism   mini-batches processed concurrently (Trident)
Batch Size          tuples per mini-batch (Trident)
Parallelism Hints   task instances per operator (one value per vertex)
==================  =====================================================

:class:`TopologyConfig` bundles one concrete setting of all of them plus
the ``max_tasks`` cap the paper lets Spearmint choose; hints are
normalized against it exactly as described in §V-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.storm.topology import Topology


@dataclass(frozen=True)
class TopologyConfig:
    """One complete configuration of a topology deployment.

    Attributes
    ----------
    parallelism_hints:
        Requested task instances per operator.  Operators missing from
        the mapping fall back to their spec's ``default_hint``.
    max_tasks:
        Upper bound on the *total* number of task instances Storm should
        create.  ``None`` disables normalization.  The paper has the
        optimizer choose this value and rescales hints so their sum does
        not exceed it (§V-A).
    batch_size:
        Tuples ingested per Trident mini-batch.
    batch_parallelism:
        Mini-batches allowed in the processing pipeline concurrently
        (a.k.a. pipeline parallelism, §III-B footnote).
    worker_threads:
        Size of the thread pool available to each worker.
    receiver_threads:
        Message-receive threads started per worker.
    ackers:
        Acker task instances for Storm's at-least-once bookkeeping.
        ``None`` means Storm's default of one acker per worker.
    num_workers:
        Worker processes (one per machine in the paper's deployment).
    """

    parallelism_hints: Mapping[str, int] = field(default_factory=dict)
    max_tasks: int | None = None
    batch_size: int = 1000
    batch_parallelism: int = 1
    worker_threads: int = 8
    receiver_threads: int = 1
    ackers: int | None = None
    num_workers: int = 80

    def __post_init__(self) -> None:
        for name, hint in self.parallelism_hints.items():
            if hint < 1:
                raise ValueError(f"hint for {name!r} must be >= 1, got {hint}")
        if self.max_tasks is not None and self.max_tasks < 1:
            raise ValueError("max_tasks must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.batch_parallelism < 1:
            raise ValueError("batch_parallelism must be >= 1")
        if self.worker_threads < 1:
            raise ValueError("worker_threads must be >= 1")
        if self.receiver_threads < 1:
            raise ValueError("receiver_threads must be >= 1")
        if self.ackers is not None and self.ackers < 0:
            raise ValueError("ackers must be >= 0")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        # Freeze the mapping so the dataclass is safely hashable-by-value.
        object.__setattr__(self, "parallelism_hints", dict(self.parallelism_hints))

    # ------------------------------------------------------------------
    # Hints
    # ------------------------------------------------------------------
    def raw_hint(self, topology: Topology, name: str) -> int:
        hint = self.parallelism_hints.get(name)
        if hint is None:
            hint = topology.operator(name).default_hint
        return int(hint)

    def normalized_hints(self, topology: Topology) -> dict[str, int]:
        """Task counts per operator after max-tasks normalization.

        If the hint sum exceeds ``max_tasks``, hints are scaled down
        proportionally, with a floor of one task per operator (Storm
        never instantiates zero tasks for a component).
        """
        hints = {name: self.raw_hint(topology, name) for name in topology}
        if self.max_tasks is None:
            return hints
        total = sum(hints.values())
        if total <= self.max_tasks:
            return hints
        scale = self.max_tasks / total
        return {name: max(1, round(hint * scale)) for name, hint in hints.items()}

    def total_tasks(self, topology: Topology) -> int:
        return sum(self.normalized_hints(topology).values())

    def effective_ackers(self) -> int:
        """Acker count with Storm's one-per-worker default applied."""
        return self.num_workers if self.ackers is None else self.ackers

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls, topology: Topology, hint: int, **overrides: object
    ) -> "TopologyConfig":
        """All operators share one hint — the parallel-linear-ascent shape."""
        hints = {name: hint for name in topology}
        return cls(parallelism_hints=hints, **overrides)  # type: ignore[arg-type]

    def with_hints(self, hints: Mapping[str, int]) -> "TopologyConfig":
        merged = dict(self.parallelism_hints)
        merged.update(hints)
        return self.replace(parallelism_hints=merged)

    def replace(self, **changes: object) -> "TopologyConfig":
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        return {
            "parallelism_hints": dict(self.parallelism_hints),
            "max_tasks": self.max_tasks,
            "batch_size": self.batch_size,
            "batch_parallelism": self.batch_parallelism,
            "worker_threads": self.worker_threads,
            "receiver_threads": self.receiver_threads,
            "ackers": self.ackers,
            "num_workers": self.num_workers,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TopologyConfig":
        return cls(**data)  # type: ignore[arg-type]


#: Human-readable catalogue of the Table I parameters, used by the
#: Table I benchmark and the documentation.
TABLE1_PARAMETERS: tuple[tuple[str, str], ...] = (
    ("Worker Threads", "Number of threads per worker"),
    ("Receiver Threads", "Number of receiver threads per worker"),
    ("Ackers", "Number of acker tasks"),
    ("Batch Parallelism", "Number of batches being processed in parallel"),
    ("Batch Size", "Number of tuples in each batch"),
    ("Parallelism Hints", "Number of task instances to create for operators"),
)
