"""Acker bookkeeping model.

Storm tracks tuple completion through dedicated "acker" bolts: every
tuple emission results in an ack message that some acker task must
process.  Too few ackers turn bookkeeping into the topology bottleneck;
many ackers add executors (threads, memory) without benefit.  The paper
includes the acker count in its concurrency parameter set (Table I,
§V-D) and uses Storm's one-acker-per-worker default as baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storm.topology import Topology


#: Compute units an acker spends per tracked emission.  Ack processing is
#: an XOR and a hash-map update — orders of magnitude cheaper than
#: application bolts.
DEFAULT_ACK_COST_UNITS = 0.002


@dataclass(frozen=True)
class AckerModel:
    """Capacity/demand model for the acker subsystem."""

    ack_cost_units: float = DEFAULT_ACK_COST_UNITS

    def __post_init__(self) -> None:
        if self.ack_cost_units <= 0:
            raise ValueError("ack_cost_units must be > 0")

    def emissions_per_source_tuple(self, topology: Topology) -> float:
        """Tracked emissions per ingested tuple: every operator's output."""
        volumes = topology.volumes()
        return sum(
            volumes[name] * topology.operator(name).selectivity for name in topology
        )

    def demand_units_per_source_tuple(self, topology: Topology) -> float:
        """Acker compute units consumed per ingested source tuple."""
        return self.emissions_per_source_tuple(topology) * self.ack_cost_units

    def capacity_units_per_ms(self, n_ackers: int, core_speed: float = 1.0) -> float:
        """Aggregate acker service rate in compute units per millisecond."""
        if n_ackers < 0:
            raise ValueError("n_ackers must be >= 0")
        return n_ackers * core_speed

    def max_throughput_tps(
        self, topology: Topology, n_ackers: int, core_speed: float = 1.0
    ) -> float:
        """Source tuples/s the acker subsystem can keep up with.

        Infinite when acking is disabled (``n_ackers == 0`` — Storm then
        skips tracking entirely, trading reliability for speed).
        """
        if n_ackers == 0:
            return float("inf")
        demand = self.demand_units_per_source_tuple(topology)
        if demand <= 0:
            return float("inf")
        capacity_per_s = self.capacity_units_per_ms(n_ackers, core_speed) * 1000.0
        return capacity_per_s / demand
