"""Logical Storm topologies: spouts, bolts, and grouped streams.

A topology is a directed acyclic graph.  *Spouts* ingest data from the
outside world; *bolts* consume tuples from upstream operators and emit
tuples downstream (paper §III-A, Figure 1).  Each operator carries the
workload attributes used throughout the paper's synthetic benchmark
(§IV-B): a per-tuple *time complexity* in compute units (1 unit ≈ 1 ms of
single-core execution), a *resource contention* flag, and a *selectivity*
(tuples emitted per tuple consumed).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Mapping, Sequence

from repro.storm.grouping import Grouping


class OperatorKind(enum.Enum):
    """Whether an operator is a data source (spout) or a processor (bolt)."""

    SPOUT = "spout"
    BOLT = "bolt"


@dataclass(frozen=True)
class OperatorSpec:
    """One logical operator (vertex) of a topology.

    Attributes
    ----------
    name:
        Unique operator identifier.
    kind:
        Spout or bolt.
    cost:
        Time complexity: compute units consumed per processed tuple.
        One unit corresponds to about 1 ms of single-core busy work
        (paper §IV-B1); the paper's synthetic default is 20 units.
    contentious:
        If true, the operator depends on a globally contended resource
        (e.g. a central database).  Its effective per-tuple cost is
        multiplied by its own task count, negating parallelism gains
        (paper §IV-B2).
    selectivity:
        Tuples emitted on the output stream per consumed tuple
        (paper §IV-B3).  Every downstream subscriber receives all
        emitted tuples, mirroring Storm stream semantics.
    default_hint:
        Parallelism hint used when a configuration does not specify one.
    tuple_bytes:
        Serialized size of one emitted tuple, used for network-load
        accounting (paper Figure 3).
    """

    name: str
    kind: OperatorKind
    cost: float = 20.0
    contentious: bool = False
    selectivity: float = 1.0
    default_hint: int = 1
    tuple_bytes: int = 4096

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operator name must be non-empty")
        if self.cost < 0:
            raise ValueError(f"operator {self.name!r}: cost must be >= 0")
        if self.selectivity < 0:
            raise ValueError(f"operator {self.name!r}: selectivity must be >= 0")
        if self.default_hint < 1:
            raise ValueError(f"operator {self.name!r}: default_hint must be >= 1")
        if self.tuple_bytes < 0:
            raise ValueError(f"operator {self.name!r}: tuple_bytes must be >= 0")

    @property
    def is_spout(self) -> bool:
        return self.kind is OperatorKind.SPOUT


@dataclass(frozen=True)
class Edge:
    """A directed stream between two operators with a grouping strategy."""

    src: str
    dst: str
    grouping: Grouping = Grouping.SHUFFLE

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-loop on operator {self.src!r} is not allowed")


class TopologyError(ValueError):
    """Raised for structurally invalid topologies."""


class Topology:
    """An immutable, validated operator DAG.

    Use :class:`TopologyBuilder` to construct instances.  The class
    precomputes the derived quantities the execution engines need:
    topological order, layer assignment (longest path from a source),
    and relative tuple volumes per operator.
    """

    def __init__(
        self,
        name: str,
        operators: Sequence[OperatorSpec],
        edges: Sequence[Edge],
    ) -> None:
        self.name = name
        self._operators: dict[str, OperatorSpec] = {}
        for op in operators:
            if op.name in self._operators:
                raise TopologyError(f"duplicate operator name {op.name!r}")
            self._operators[op.name] = op
        self._edges: tuple[Edge, ...] = tuple(edges)
        seen_pairs: set[tuple[str, str]] = set()
        for edge in self._edges:
            for endpoint in (edge.src, edge.dst):
                if endpoint not in self._operators:
                    raise TopologyError(f"edge references unknown operator {endpoint!r}")
            pair = (edge.src, edge.dst)
            if pair in seen_pairs:
                raise TopologyError(f"duplicate edge {edge.src!r} -> {edge.dst!r}")
            seen_pairs.add(pair)

        self._parents: dict[str, list[str]] = {n: [] for n in self._operators}
        self._children: dict[str, list[str]] = {n: [] for n in self._operators}
        for edge in self._edges:
            self._parents[edge.dst].append(edge.src)
            self._children[edge.src].append(edge.dst)

        self._validate_structure()
        self._topo_order = self._compute_topological_order()
        self._layers = self._compute_layers()
        self._volumes = self._compute_volumes()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def _validate_structure(self) -> None:
        if not self._operators:
            raise TopologyError("topology has no operators")
        for name, op in self._operators.items():
            if op.is_spout and self._parents[name]:
                raise TopologyError(f"spout {name!r} has incoming edges")
            if not op.is_spout and not self._parents[name]:
                raise TopologyError(f"bolt {name!r} has no incoming edges")
        if not any(op.is_spout for op in self._operators.values()):
            raise TopologyError("topology has no spouts")
        if len(self._operators) > 1:
            for name in self._operators:
                if not self._parents[name] and not self._children[name]:
                    raise TopologyError(f"operator {name!r} is isolated")

    def _compute_topological_order(self) -> tuple[str, ...]:
        in_degree = {n: len(ps) for n, ps in self._parents.items()}
        ready = sorted(n for n, d in in_degree.items() if d == 0)
        order: list[str] = []
        queue = list(ready)
        while queue:
            node = queue.pop(0)
            order.append(node)
            for child in sorted(self._children[node]):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        if len(order) != len(self._operators):
            raise TopologyError("topology contains a cycle")
        return tuple(order)

    def _compute_layers(self) -> dict[str, int]:
        """Layer = longest path distance from any source (sources are 0)."""
        layers: dict[str, int] = {}
        for node in self._topo_order:
            parents = self._parents[node]
            layers[node] = 0 if not parents else 1 + max(layers[p] for p in parents)
        return layers

    def _compute_volumes(self) -> dict[str, float]:
        """Relative tuple volume per operator.

        Sources share one unit of ingested volume equally; a bolt's input
        volume is the sum over parents of ``parent_volume * parent
        selectivity`` (every subscriber receives all emitted tuples).
        The returned value is the operator's *input* tuple volume per
        ingested source tuple; for spouts it is their ingest share.
        """
        sources = self.sources()
        share = 1.0 / len(sources)
        volumes: dict[str, float] = {}
        for node in self._topo_order:
            parents = self._parents[node]
            if not parents:
                volumes[node] = share
            else:
                volumes[node] = sum(
                    volumes[p] * self._operators[p].selectivity for p in parents
                )
        return volumes

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def operators(self) -> Mapping[str, OperatorSpec]:
        return dict(self._operators)

    @property
    def edges(self) -> tuple[Edge, ...]:
        return self._edges

    def __len__(self) -> int:
        return len(self._operators)

    def __contains__(self, name: object) -> bool:
        return name in self._operators

    def __iter__(self) -> Iterator[str]:
        return iter(self._topo_order)

    def operator(self, name: str) -> OperatorSpec:
        return self._operators[name]

    def parents(self, name: str) -> tuple[str, ...]:
        return tuple(self._parents[name])

    def children(self, name: str) -> tuple[str, ...]:
        return tuple(self._children[name])

    def edge(self, src: str, dst: str) -> Edge:
        for e in self._edges:
            if e.src == src and e.dst == dst:
                return e
        raise KeyError(f"no edge {src!r} -> {dst!r}")

    def sources(self) -> tuple[str, ...]:
        return tuple(n for n in self._topo_order if not self._parents[n])

    def sinks(self) -> tuple[str, ...]:
        return tuple(n for n in self._topo_order if not self._children[n])

    def topological_order(self) -> tuple[str, ...]:
        return self._topo_order

    def layer_of(self, name: str) -> int:
        return self._layers[name]

    def layers(self) -> list[tuple[str, ...]]:
        """Operators grouped by layer index, shallowest first."""
        depth = max(self._layers.values()) + 1
        grouped: list[list[str]] = [[] for _ in range(depth)]
        for node in self._topo_order:
            grouped[self._layers[node]].append(node)
        return [tuple(group) for group in grouped]

    def num_layers(self) -> int:
        return max(self._layers.values()) + 1

    def volume(self, name: str) -> float:
        """Input tuple volume of ``name`` per ingested source tuple."""
        return self._volumes[name]

    def volumes(self) -> dict[str, float]:
        return dict(self._volumes)

    def average_out_degree(self) -> float:
        return len(self._edges) / len(self._operators)

    def total_compute_units_per_tuple(self) -> float:
        """Compute units consumed across the topology per ingested tuple."""
        return sum(
            self._volumes[n] * self._operators[n].cost for n in self._topo_order
        )

    def stats(self) -> "TopologyStats":
        return TopologyStats(
            name=self.name,
            vertices=len(self._operators),
            edges=len(self._edges),
            layers=self.num_layers(),
            sources=len(self.sources()),
            sinks=len(self.sinks()),
            average_out_degree=self.average_out_degree(),
        )

    # ------------------------------------------------------------------
    # Functional updates (used by topology_gen.modifications)
    # ------------------------------------------------------------------
    def with_operator_updates(
        self, updates: Mapping[str, Mapping[str, object]]
    ) -> "Topology":
        """Return a copy with per-operator attribute overrides.

        ``updates`` maps operator name to keyword overrides accepted by
        :func:`dataclasses.replace` on :class:`OperatorSpec`.
        """
        new_ops = []
        for name in self._topo_order:
            op = self._operators[name]
            if name in updates:
                op = replace(op, **updates[name])
            new_ops.append(op)
        unknown = set(updates) - set(self._operators)
        if unknown:
            raise KeyError(f"unknown operators in updates: {sorted(unknown)}")
        return Topology(self.name, new_ops, self._edges)

    def renamed(self, name: str) -> "Topology":
        return Topology(name, list(self._operators.values()), self._edges)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Topology(name={self.name!r}, vertices={len(self)}, "
            f"edges={len(self._edges)}, layers={self.num_layers()})"
        )


@dataclass(frozen=True)
class TopologyStats:
    """The graph statistics reported in the paper's Table II."""

    name: str
    vertices: int
    edges: int
    layers: int
    sources: int
    sinks: int
    average_out_degree: float

    def as_row(self) -> dict[str, object]:
        return {
            "Name": self.name,
            "V": self.vertices,
            "E": self.edges,
            "L": self.layers,
            "Src": self.sources,
            "Snk": self.sinks,
            "AOD": round(self.average_out_degree, 2),
        }


class TopologyBuilder:
    """Fluent construction of :class:`Topology` instances.

    Example
    -------
    >>> builder = TopologyBuilder("example")
    >>> _ = builder.spout("source", cost=5.0)
    >>> _ = builder.bolt("work", inputs=["source"], cost=20.0)
    >>> topo = builder.build()
    >>> topo.sources()
    ('source',)
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("topology name must be non-empty")
        self.name = name
        self._operators: list[OperatorSpec] = []
        self._edges: list[Edge] = []

    def spout(
        self,
        name: str,
        *,
        cost: float = 1.0,
        selectivity: float = 1.0,
        default_hint: int = 1,
        tuple_bytes: int = 4096,
    ) -> "TopologyBuilder":
        self._operators.append(
            OperatorSpec(
                name=name,
                kind=OperatorKind.SPOUT,
                cost=cost,
                selectivity=selectivity,
                default_hint=default_hint,
                tuple_bytes=tuple_bytes,
            )
        )
        return self

    def bolt(
        self,
        name: str,
        *,
        inputs: Iterable[str],
        cost: float = 20.0,
        contentious: bool = False,
        selectivity: float = 1.0,
        default_hint: int = 1,
        tuple_bytes: int = 4096,
        grouping: Grouping = Grouping.SHUFFLE,
    ) -> "TopologyBuilder":
        self._operators.append(
            OperatorSpec(
                name=name,
                kind=OperatorKind.BOLT,
                cost=cost,
                contentious=contentious,
                selectivity=selectivity,
                default_hint=default_hint,
                tuple_bytes=tuple_bytes,
            )
        )
        inputs = list(inputs)
        if not inputs:
            raise TopologyError(f"bolt {name!r} declared without inputs")
        for src in inputs:
            self._edges.append(Edge(src=src, dst=name, grouping=grouping))
        return self

    def edge(
        self, src: str, dst: str, grouping: Grouping = Grouping.SHUFFLE
    ) -> "TopologyBuilder":
        self._edges.append(Edge(src=src, dst=dst, grouping=grouping))
        return self

    def build(self) -> Topology:
        return Topology(self.name, self._operators, self._edges)


def linear_topology(
    name: str, num_bolts: int, *, cost: float = 20.0, spout_cost: float = 1.0
) -> Topology:
    """A simple spout -> bolt_1 -> ... -> bolt_n chain (test/demo helper)."""
    if num_bolts < 1:
        raise ValueError("num_bolts must be >= 1")
    builder = TopologyBuilder(name)
    builder.spout("spout", cost=spout_cost)
    prev = "spout"
    for i in range(1, num_bolts + 1):
        node = f"bolt{i}"
        builder.bolt(node, inputs=[prev], cost=cost)
        prev = node
    return builder.build()


def diamond_topology(name: str = "diamond", *, cost: float = 20.0) -> Topology:
    """The Figure 1 shape: one spout fanning out to two bolts that join."""
    builder = TopologyBuilder(name)
    builder.spout("S", cost=cost / 4)
    builder.bolt("B1", inputs=["S"], cost=cost)
    builder.bolt("B2", inputs=["S", "B1"], cost=cost)
    return builder.build()


def effective_cost(op: OperatorSpec, n_tasks: int) -> float:
    """Per-tuple compute cost of ``op`` when run with ``n_tasks`` instances.

    Contentious operators pay their cost multiplied by the task count
    (paper §IV-B2): adding instances of a bolt gated on a shared resource
    only adds contention, so the *aggregate* service rate stays constant
    while per-task work grows linearly.
    """
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    if op.contentious:
        return op.cost * n_tasks
    return op.cost


def operator_path_depth(topology: Topology) -> float:
    """Average layer depth weighted by tuple volume (pipeline depth proxy)."""
    vols = topology.volumes()
    total = sum(vols.values())
    if total <= 0 or math.isclose(total, 0.0):
        return float(topology.num_layers())
    return sum(topology.layer_of(n) * v for n, v in vols.items()) / total
