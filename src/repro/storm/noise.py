"""Measurement noise models.

The paper's runs were noisy: the testbed machines were student
workstations that could be in interactive use during evaluations
(§IV-C1), and two-minute windows sample a stochastic system.  The
optimizer explicitly assumes Gaussian observation noise (§III-C), so the
default model is multiplicative Gaussian jitter; an interference model
adds the occasional "a student sat down at the iMac" slowdown.
"""

from __future__ import annotations

import abc
import threading

import numpy as np

#: Guards noise draws from an engine's *shared* RNG stream.  NumPy
#: ``Generator`` objects are not thread-safe, and a threaded evaluation
#: executor (:mod:`repro.core.executor`) may run several engine
#: evaluations at once.  Per-evaluation seeded draws bypass the lock —
#: each gets a Generator of its own.
_SHARED_RNG_LOCK = threading.Lock()


def draw_observation(
    noise: "NoiseModel",
    value: float,
    shared_rng: np.random.Generator,
    seed: int | None = None,
) -> float:
    """Apply ``noise`` to ``value`` from the right random stream.

    With ``seed`` the draw comes from a dedicated one-shot stream, so
    the observed value is a pure function of (value, seed) — the
    property concurrent runs rely on for order-independent replay.
    Without it the draw consumes the engine's shared stream under a
    process-wide lock, preserving the classic serial draw order.
    """
    if seed is not None:
        return noise(value, np.random.default_rng(seed))
    with _SHARED_RNG_LOCK:
        return noise(value, shared_rng)


class NoiseModel(abc.ABC):
    """Perturbs a noise-free throughput measurement."""

    @abc.abstractmethod
    def apply(self, value: float, rng: np.random.Generator) -> float:
        """Return the observed value for true value ``value``."""

    def __call__(self, value: float, rng: np.random.Generator) -> float:
        if value < 0:
            raise ValueError("value must be >= 0")
        if value == 0.0:
            return 0.0  # failed runs are observed as exactly zero
        return max(0.0, self.apply(value, rng))


class NoNoise(NoiseModel):
    """Deterministic observations (useful in tests)."""

    def apply(self, value: float, rng: np.random.Generator) -> float:
        return value


class GaussianNoise(NoiseModel):
    """Multiplicative Gaussian jitter: ``observed = value * N(1, sigma)``."""

    def __init__(self, sigma: float = 0.03) -> None:
        if sigma < 0:
            raise ValueError("sigma must be >= 0")
        self.sigma = sigma

    def apply(self, value: float, rng: np.random.Generator) -> float:
        return value * rng.normal(1.0, self.sigma)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"GaussianNoise(sigma={self.sigma})"


class InterferenceNoise(NoiseModel):
    """Gaussian jitter plus occasional co-tenant interference bursts.

    With probability ``p_interference`` a measurement window overlaps
    interactive use of some machines, multiplying throughput by
    ``slowdown`` (< 1).  Matches the paper's caveat that student use of
    the iMacs could not be excluded.
    """

    def __init__(
        self,
        sigma: float = 0.03,
        p_interference: float = 0.05,
        slowdown: float = 0.7,
    ) -> None:
        if not 0.0 <= p_interference <= 1.0:
            raise ValueError("p_interference must be in [0, 1]")
        if not 0.0 < slowdown <= 1.0:
            raise ValueError("slowdown must be in (0, 1]")
        self.gaussian = GaussianNoise(sigma)
        self.p_interference = p_interference
        self.slowdown = slowdown

    def apply(self, value: float, rng: np.random.Generator) -> float:
        observed = self.gaussian.apply(value, rng)
        if rng.random() < self.p_interference:
            observed *= self.slowdown
        return observed

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"InterferenceNoise(sigma={self.gaussian.sigma}, "
            f"p={self.p_interference}, slowdown={self.slowdown})"
        )
