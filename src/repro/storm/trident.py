"""Trident-layer behaviour: mini-batches and operator fusion.

Trident (paper §III-A) processes tuples in mini-batches with per-batch
consistency, and may *fuse* several consecutive operators into one
processing element to avoid reshuffling — overriding the programmer's
parallelism hints for the fused chain, like SPADE's operator fusion in
System-S.  :func:`fuse_linear_chains` implements that pass on our
topology model; the execution engines consume the fused topology so the
"framework obfuscates the impact of single parameters" effect (§III-B)
is present in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.storm.grouping import Grouping
from repro.storm.topology import Edge, OperatorSpec, Topology


#: Groupings that do not force a repartition boundary; a bolt consuming
#: its single parent through one of these can be fused with it.
_FUSABLE_GROUPINGS = frozenset({Grouping.SHUFFLE, Grouping.LOCAL_OR_SHUFFLE})


@dataclass(frozen=True)
class FusionResult:
    """Outcome of a fusion pass."""

    topology: Topology
    #: Maps each fused operator name to the chain of original names.
    chains: dict[str, tuple[str, ...]]

    def fused_name_of(self, original: str) -> str:
        for fused, members in self.chains.items():
            if original in members:
                return fused
        raise KeyError(original)


def _chain_head_candidates(topology: Topology) -> list[str]:
    """Operators that can start a fusable chain."""
    heads = []
    for name in topology.topological_order():
        parents = topology.parents(name)
        if len(parents) == 1:
            parent = parents[0]
            edge = topology.edge(parent, name)
            if (
                edge.grouping in _FUSABLE_GROUPINGS
                and len(topology.children(parent)) == 1
            ):
                continue  # this node is fusable into its parent, not a head
        heads.append(name)
    return heads


def fuse_linear_chains(topology: Topology) -> FusionResult:
    """Merge maximal linear chains into single processing elements.

    A bolt is absorbed into its parent when it is the parent's only
    child, it has no other parent, and the connecting grouping does not
    require repartitioning.  The fused operator's cost and selectivity
    compose along the chain; the parallelism hint is overridden to the
    chain minimum (Trident "overrides the parallelism-hints specified by
    the programmer", §III-A).
    """
    heads = _chain_head_candidates(topology)
    chains: dict[str, tuple[str, ...]] = {}
    member_of: dict[str, str] = {}

    for head in heads:
        chain = [head]
        current = head
        while True:
            children = topology.children(current)
            if len(children) != 1:
                break
            child = children[0]
            if len(topology.parents(child)) != 1:
                break
            edge = topology.edge(current, child)
            if edge.grouping not in _FUSABLE_GROUPINGS:
                break
            if child in heads:
                break
            chain.append(child)
            current = child
        chains[head] = tuple(chain)
        for member in chain:
            member_of[member] = head

    fused_ops: list[OperatorSpec] = []
    for head, members in chains.items():
        specs = [topology.operator(m) for m in members]
        # Cost composes weighted by the chain's internal volume growth:
        # member i sees the product of upstream members' selectivities.
        cost = 0.0
        volume = 1.0
        for spec in specs:
            cost += volume * spec.cost
            volume *= spec.selectivity
        selectivity = volume
        contentious = any(s.contentious for s in specs)
        hint = min(s.default_hint for s in specs)
        fused_ops.append(
            replace(
                specs[0],
                cost=cost,
                selectivity=selectivity,
                contentious=contentious,
                default_hint=hint,
                tuple_bytes=specs[-1].tuple_bytes,
            )
        )

    fused_edges: list[Edge] = []
    seen: set[tuple[str, str]] = set()
    for edge in topology.edges:
        src = member_of[edge.src]
        dst = member_of[edge.dst]
        if src == dst:
            continue  # internal to a fused chain
        if (src, dst) in seen:
            continue
        seen.add((src, dst))
        fused_edges.append(Edge(src=src, dst=dst, grouping=edge.grouping))

    fused = Topology(f"{topology.name}(fused)", fused_ops, fused_edges)
    return FusionResult(topology=fused, chains=chains)


def fusion_ratio(topology: Topology) -> float:
    """Fraction of operators eliminated by fusion (0 = nothing fusable)."""
    result = fuse_linear_chains(topology)
    return 1.0 - len(result.topology) / len(topology)
