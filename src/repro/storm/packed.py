"""Cross-cell packed evaluation: one tensor pass over a whole study grid.

:class:`~repro.storm.analytic_batch.AnalyticBatchModel` (PR 5)
vectorized evaluation *within* one (topology, condition) cell.  A
Figure-4/5 study still pays one NumPy dispatch per cell per optimizer
round — dozens of small ``(N, D)`` passes instead of a handful of big
ones.  This module fuses them: :class:`PackedTopologySet` packs M
heterogeneous cells (different topologies, clusters, calibrations,
workload schedules) into padded ``(M, O_max, ...)`` operator/edge
tensors with validity masks, and :class:`PackedBatchModel` evaluates an
arbitrary mix of rows — each row a (cell, config) pair — in **one**
masked NumPy pass via :meth:`PackedBatchModel.evaluate_cells`.

Bit-compatibility contract
--------------------------
Every row is **bit-identical** to evaluating the same configuration
through that cell's own ``AnalyticBatchModel`` (and therefore to the
scalar engine; property-tested in ``tests/test_packed.py``).  The
packing preserves the scalar operation order by construction:

* Padded operators/edges/sources carry exactly-zero cost, volume and
  byte coefficients, and sit at the *end* of their axis — adding
  ``+0.0`` at the tail of a ``np.cumsum`` scan leaves every partial sum
  bit-identical.
* Per-cell constants (core speed, calibration knobs, ack demand) are
  gathered into per-row vectors; ``x op row_constant`` is elementwise,
  so values match the per-cell broadcast exactly.
* Workload load/skew multipliers are applied unconditionally with a
  per-row factor that is ``1.0`` for cells without a schedule —
  ``x * 1.0`` is an exact IEEE-754 identity, matching the scalar
  engine's *conditional* multiply bit-for-bit.
* max/argmax reductions see padded entries as ``-inf`` (max is exact
  and order-independent; padding at the tail preserves argmax's
  first-max-wins tie-break).
* Grouping skew tables are fused per (cell, operator): the combined
  table entry is ``min`` over the operator's distinct incoming
  groupings of ``effective_parallelism(g, n)`` — a min over the same
  floats the per-cell model gathers, so the single fused gather equals
  the per-grouping gather-then-minimum loop.

Optional JIT kernel
-------------------
``engine="packed-jit"`` (or ``REPRO_JIT=1``) compiles the stage/layer
inner kernel with numba when it is importable and silently falls back
to the pure-NumPy path otherwise.  The kernel replays the exact same
elementwise operation sequence, so it stays bit-compatible
(parity-tested; the test skips cleanly when numba is absent).
"""

from __future__ import annotations

import math
import operator as operator_mod
import os
import time
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.obs import runtime as obs_runtime
from repro.storm.acker import AckerModel
from repro.storm.analytic import CalibrationParams, CapacityBreakdown
from repro.storm.analytic_batch import _CONFIG_SCALARS, CAP_NAMES
from repro.storm.cluster import ClusterSpec
from repro.storm.config import TopologyConfig
from repro.storm.grouping import Grouping, effective_parallelism, remote_fraction
from repro.storm.metrics import MeasuredRun
from repro.storm.schedule import WorkloadSchedule
from repro.storm.topology import Topology

__all__ = [
    "PACKED_ENGINES",
    "CellPack",
    "PackedTopologySet",
    "PackedEvaluation",
    "PackedBatchModel",
    "jit_available",
    "pack_cells",
]

#: Engine names accepted by :class:`PackedBatchModel`.
PACKED_ENGINES = ("packed", "packed-jit")



# ----------------------------------------------------------------------
# Optional numba JIT kernel
# ----------------------------------------------------------------------
def _stage_layer_core(
    work: np.ndarray,
    parallelism: np.ndarray,
    core_speed: np.ndarray,
    eta: np.ndarray,
    stage_overhead: np.ndarray,
    lid: np.ndarray,
    n_layers: np.ndarray,
    n_ops: np.ndarray,
    max_layers: int,
    stage_out: np.ndarray,
    t_max_out: np.ndarray,
    sum_layers_out: np.ndarray,
    bottleneck_out: np.ndarray,
) -> None:
    """Stage times, per-row stage max/argmax, and layered latency sum.

    Plain-Python loop nest replaying the vectorized expressions one
    element at a time in the same order — numba-compilable as-is, and
    bit-identical to the NumPy path (``min``/``max`` are exact, the
    layer sum is the same left-to-right accumulation as ``np.cumsum``).
    """
    n_rows = work.shape[0]
    for r in range(n_rows):
        cs = core_speed[r]
        e = eta[r]
        so = stage_overhead[r]
        d = n_ops[r]
        layer_max = np.full(max_layers, -np.inf)
        t_max = -np.inf
        b_idx = 0
        for j in range(d):
            p = parallelism[r, j]
            if p < 1e-12:
                p = 1e-12
            rate = p * cs * e
            w = work[r, j]
            if w > 0.0:
                ct = w / rate
            else:
                ct = 0.0
            st = ct + so
            stage_out[r, j] = st
            if st > t_max:
                t_max = st
                b_idx = j
            lj = lid[r, j]
            if st > layer_max[lj]:
                layer_max[lj] = st
        s = 0.0
        for layer in range(n_layers[r]):
            s += layer_max[layer]
        t_max_out[r] = t_max
        sum_layers_out[r] = s
        bottleneck_out[r] = b_idx


_JIT_KERNEL: Callable[..., None] | None = None
_JIT_STATE = "cold"  # "cold" | "ready" | "unavailable"


def jit_available() -> bool:
    """True when numba is importable (the JIT leg can run)."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def _compiled_kernel() -> Callable[..., None] | None:
    """The numba-compiled stage/layer kernel, or None when unavailable."""
    global _JIT_KERNEL, _JIT_STATE
    if _JIT_STATE == "cold":
        try:
            import numba

            _JIT_KERNEL = numba.njit(cache=False)(_stage_layer_core)
            _JIT_STATE = "ready"
        except Exception:
            _JIT_KERNEL = None
            _JIT_STATE = "unavailable"
    return _JIT_KERNEL


# ----------------------------------------------------------------------
# Per-cell precompute
# ----------------------------------------------------------------------
class CellPack:
    """One cell's topology/cluster/calibration constants, pack-ready.

    Mirrors ``AnalyticBatchModel.__init__``'s precompute as flat 1-D
    arrays plus scalar knobs, so a :class:`PackedTopologySet` can stack
    many cells into padded tensors without re-walking any topology.
    Building a pack is the expensive step; reuse packs across set
    rebuilds (the cross-cell broker caches them per objective).
    """

    def __init__(
        self,
        topology: Topology,
        cluster: ClusterSpec,
        calibration: CalibrationParams | None = None,
        schedule: WorkloadSchedule | None = None,
    ) -> None:
        self.topology = topology
        self.cluster = cluster
        self.calibration = calibration or CalibrationParams()
        self.schedule = schedule
        cal = self.calibration
        machine = cluster.machine

        self.order: tuple[str, ...] = tuple(topology.topological_order())
        self.n_ops = len(self.order)
        volumes = topology.volumes()
        ops = [topology.operator(name) for name in self.order]
        self.cost = np.asarray([float(op.cost) for op in ops], dtype=np.float64)
        self.volume = np.asarray(
            [float(volumes[name]) for name in self.order], dtype=np.float64
        )
        self.contentious = np.asarray(
            [bool(op.contentious) for op in ops], dtype=bool
        )
        self.default_hints = [int(op.default_hint) for op in ops]
        layer_of = {name: topology.layer_of(name) for name in self.order}
        self.n_layers = max(layer_of.values()) + 1 if self.order else 0
        self.layer_ids = np.asarray(
            [layer_of[name] for name in self.order], dtype=np.int64
        )
        # Distinct incoming groupings per operator, first-seen order —
        # the key the set fuses into one combined parallelism table.
        self.grouping_keys: list[tuple[Grouping, ...] | None] = []
        for name in self.order:
            gs = [topology.edge(p, name).grouping for p in topology.parents(name)]
            self.grouping_keys.append(tuple(dict.fromkeys(gs)) if gs else None)
        self.grouped = np.asarray(
            [key is not None for key in self.grouping_keys], dtype=bool
        )
        # Network demand coefficients (1-D; the set pads/stacks them).
        edge_terms = [
            (
                float(volumes[edge.src]),
                float(topology.operator(edge.src).selectivity),
                float(remote_fraction(edge.grouping, cluster.n_machines)),
                float(topology.operator(edge.src).tuple_bytes),
            )
            for edge in topology.edges
        ]
        edge_matrix = np.asarray(edge_terms, dtype=np.float64).reshape(-1, 4)
        self.edge_vol = edge_matrix[:, 0]
        self.edge_sel = edge_matrix[:, 1]
        self.edge_frac = edge_matrix[:, 2]
        self.edge_bytes = edge_matrix[:, 3]
        self.n_edges = edge_matrix.shape[0]
        ingest_terms = [
            (float(volumes[s]), float(topology.operator(s).tuple_bytes))
            for s in topology.sources()
        ]
        ingest_matrix = np.asarray(ingest_terms, dtype=np.float64).reshape(-1, 2)
        self.ingest_vol = ingest_matrix[:, 0]
        self.ingest_bytes = ingest_matrix[:, 1]
        self.n_sources = ingest_matrix.shape[0]
        self.inflight_unit = sum(
            volumes[name] * topology.operator(name).tuple_bytes
            for name in self.order
        )
        self.ack_units = AckerModel(
            ack_cost_units=cal.ack_cost_units
        ).demand_units_per_source_tuple(topology)

        # Cluster / calibration scalars, one slot per packed vector.
        self.n_machines = int(cluster.n_machines)
        self.cores = int(machine.cores)
        self.core_speed = float(machine.core_speed)
        self.workers_per_machine = int(cluster.workers_per_machine)
        self.total_workers = int(cluster.total_workers)
        self.total_compute_rate = float(cluster.total_compute_rate)
        self.max_total_executors = int(cluster.max_total_executors)
        self.nic_bytes_per_ms = float(machine.nic_bytes_per_ms)
        self.stage_overhead_ms = float(cal.stage_overhead_ms)
        self.batch_overhead_ms = float(cal.batch_overhead_ms)
        self.batch_timeout_ms = float(cal.batch_timeout_ms)
        self.context_switch_kappa = float(cal.context_switch_kappa)
        self.per_task_cpu_overhead = float(cal.per_task_cpu_overhead)
        self.pool_oversubscription_weight = float(cal.pool_oversubscription_weight)
        self.receiver_tuples_per_ms = float(cal.receiver_tuples_per_ms)
        self.per_task_memory_mb = float(cal.per_task_memory_mb)
        self.wire = 1.0 + cal.wire_overhead
        self.memory_budget_mb = machine.memory_mb * cal.usable_memory_fraction

    def extract_hints(self, configs: list[TopologyConfig]) -> np.ndarray:
        """Raw hint matrix for this cell (same fast path as the batch model)."""
        n = len(configs)
        d = self.n_ops
        hints = None
        if d > 1:
            get_hints = operator_mod.itemgetter(*self.order)
            try:
                hints = np.array(
                    [get_hints(c.parallelism_hints) for c in configs],
                    dtype=np.int64,
                ).reshape(n, d)
            except (KeyError, TypeError, ValueError):
                hints = None
        if hints is None:
            hints = np.empty((n, d), dtype=np.int64)
            for i, config in enumerate(configs):
                ph = config.parallelism_hints
                row = hints[i]
                for j, name in enumerate(self.order):
                    hint = ph.get(name)
                    row[j] = self.default_hints[j] if hint is None else hint
        return hints


# ----------------------------------------------------------------------
# The packed set
# ----------------------------------------------------------------------
class PackedTopologySet:
    """M heterogeneous cells stacked into padded ``(M, O_max, ...)`` tensors.

    Cells are appended with :meth:`add`; the padded tensors are
    (re)assembled lazily on first use after a membership change.  The
    per-(cell, operator) grouping tables are fused into one ``(K, T)``
    table shared across cells (``K`` distinct grouping combinations)
    and grown geometrically as larger hints appear —
    ``table_constructions`` counts rebuilds for the obs gauges.
    """

    def __init__(self, cells: Iterable[CellPack] = ()) -> None:
        self._cells: list[CellPack] = []
        self._dirty = True
        # Combo 0 is always the "no incoming grouping" identity table
        # (parallelism = float(hint)); padded operators also point here.
        self._combo_index: dict[tuple[Grouping, ...] | None, int] = {None: 0}
        self._combo_table: np.ndarray | None = None
        self.table_constructions = 0
        for pack in cells:
            self.add(pack)

    # -- membership ----------------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self._cells)

    def cell(self, m: int) -> CellPack:
        return self._cells[m]

    def add(self, pack: CellPack) -> int:
        """Append a cell; returns its index."""
        for key in pack.grouping_keys:
            if key is not None and key not in self._combo_index:
                self._combo_index[key] = len(self._combo_index)
                self._combo_table = None  # force a rebuild with the new row
        self._cells.append(pack)
        self._dirty = True
        return len(self._cells) - 1

    # -- fused grouping tables -----------------------------------------
    def _ensure_tables(self, n_max: int) -> np.ndarray:
        """``(K, T)`` fused tables; entry ``[k, n]`` is the parallelism
        bound for ``n`` tasks under combo ``k`` (min over its groupings,
        or ``float(n)`` for the identity combo).  Grown geometrically so
        a slowly rising ``n_max`` does not rebuild every dispatch.
        """
        table = self._combo_table
        if table is not None and table.shape[1] > n_max:
            return table
        size = n_max
        if table is not None:
            size = max(size, 2 * (table.shape[1] - 1))
        combos = sorted(self._combo_index.items(), key=lambda kv: kv[1])
        rows = np.empty((len(combos), size + 1), dtype=np.float64)
        for key, k in combos:
            rows[k, 0] = math.nan
            if key is None:
                rows[k, 1:] = np.arange(1, size + 1, dtype=np.float64)
            else:
                for n in range(1, size + 1):
                    rows[k, n] = min(
                        effective_parallelism(g, n) for g in key
                    )
        self._combo_table = rows
        self.table_constructions += 1
        return rows

    # -- padded tensor assembly ----------------------------------------
    def _ensure_assembled(self) -> None:
        if not self._dirty:
            return
        cells = self._cells
        m_count = len(cells)
        o_max = max((c.n_ops for c in cells), default=0)
        e_max = max((c.n_edges for c in cells), default=0)
        s_max = max((c.n_sources for c in cells), default=0)
        self._O = o_max
        self._E = e_max
        self._S = s_max
        self._L = max((c.n_layers for c in cells), default=0)

        self._op_valid = np.zeros((m_count, o_max), dtype=bool)
        self._cost = np.zeros((m_count, o_max), dtype=np.float64)
        self._volume = np.zeros((m_count, o_max), dtype=np.float64)
        self._contentious = np.zeros((m_count, o_max), dtype=bool)
        self._combo_idx = np.zeros((m_count, o_max), dtype=np.intp)
        self._grouped = np.zeros((m_count, o_max), dtype=bool)
        self._lid = np.full((m_count, o_max), -1, dtype=np.int64)
        self._edge_vol = np.zeros((m_count, e_max), dtype=np.float64)
        self._edge_sel = np.zeros((m_count, e_max), dtype=np.float64)
        self._edge_frac = np.zeros((m_count, e_max), dtype=np.float64)
        self._edge_bytes = np.zeros((m_count, e_max), dtype=np.float64)
        self._ingest_vol = np.zeros((m_count, s_max), dtype=np.float64)
        self._ingest_bytes = np.zeros((m_count, s_max), dtype=np.float64)

        def vec(attr: str, dtype: type) -> np.ndarray:
            return np.asarray([getattr(c, attr) for c in cells], dtype=dtype)

        self._n_ops = vec("n_ops", np.int64)
        self._n_layer_count = vec("n_layers", np.int64)
        self._n_machines = vec("n_machines", np.int64)
        self._cores = vec("cores", np.int64)
        self._core_speed = vec("core_speed", np.float64)
        self._wpm = vec("workers_per_machine", np.int64)
        self._total_workers = vec("total_workers", np.int64)
        self._compute_rate = vec("total_compute_rate", np.float64)
        self._max_total_executors = vec("max_total_executors", np.int64)
        self._nic = vec("nic_bytes_per_ms", np.float64)
        self._stage_overhead = vec("stage_overhead_ms", np.float64)
        self._batch_overhead = vec("batch_overhead_ms", np.float64)
        self._batch_timeout = vec("batch_timeout_ms", np.float64)
        self._kappa = vec("context_switch_kappa", np.float64)
        self._pt_cpu = vec("per_task_cpu_overhead", np.float64)
        self._pool_w = vec("pool_oversubscription_weight", np.float64)
        self._rec_tpms = vec("receiver_tuples_per_ms", np.float64)
        self._per_task_mem = vec("per_task_memory_mb", np.float64)
        self._wire = vec("wire", np.float64)
        self._ack_units = vec("ack_units", np.float64)
        self._inflight_unit = vec("inflight_unit", np.float64)
        self._budget = vec("memory_budget_mb", np.float64)

        for m, pack in enumerate(cells):
            d = pack.n_ops
            self._op_valid[m, :d] = True
            self._cost[m, :d] = pack.cost
            self._volume[m, :d] = pack.volume
            self._contentious[m, :d] = pack.contentious
            self._grouped[m, :d] = pack.grouped
            self._lid[m, :d] = pack.layer_ids
            for j, key in enumerate(pack.grouping_keys):
                self._combo_idx[m, j] = self._combo_index[key]
            e = pack.n_edges
            self._edge_vol[m, :e] = pack.edge_vol
            self._edge_sel[m, :e] = pack.edge_sel
            self._edge_frac[m, :e] = pack.edge_frac
            self._edge_bytes[m, :e] = pack.edge_bytes
            s = pack.n_sources
            self._ingest_vol[m, :s] = pack.ingest_vol
            self._ingest_bytes[m, :s] = pack.ingest_bytes
        self._dirty = False
        obs_runtime.current().metrics.counter("pack.builds").inc()


def pack_cells(
    parts: Iterable[
        CellPack
        | tuple[Topology, ClusterSpec]
        | tuple[Topology, ClusterSpec, CalibrationParams | None]
        | tuple[
            Topology,
            ClusterSpec,
            CalibrationParams | None,
            WorkloadSchedule | None,
        ]
    ],
) -> PackedTopologySet:
    """Build a :class:`PackedTopologySet` from packs or spec tuples."""
    packs = []
    for part in parts:
        if isinstance(part, CellPack):
            packs.append(part)
        else:
            packs.append(CellPack(*part))
    return PackedTopologySet(packs)


# ----------------------------------------------------------------------
# Packed evaluation result
# ----------------------------------------------------------------------
class PackedEvaluation:
    """Result of one fused pass over R (cell, config) rows.

    Row-wise mirror of
    :class:`~repro.storm.analytic_batch.BatchEvaluation`: headline
    vectors exposed directly, per-row :class:`MeasuredRun` materialized
    on demand — bit-identical to each cell's own batch/scalar engines.
    Per-batch scalars of the single-cell result (memory budget, executor
    cap, timeout) become per-row vectors here.
    """

    def __init__(
        self,
        *,
        cells: PackedTopologySet,
        cell_indices: np.ndarray,
        throughput_tps: np.ndarray,
        failed_capacity: np.ndarray,
        failed_latency: np.ndarray,
        failed_memory: np.ndarray,
        latency_ms: np.ndarray,
        network_mb_per_worker_s: np.ndarray,
        total_tasks: np.ndarray,
        total_executors: np.ndarray,
        total_work_ms: np.ndarray,
        eta: np.ndarray,
        caps: np.ndarray,
        limiting_idx: np.ndarray,
        bottleneck_idx: np.ndarray,
        stage_times_ms: np.ndarray,
        task_mb: np.ndarray,
        data_mb: np.ndarray,
        memory_budget_mb: np.ndarray,
        max_total_executors: np.ndarray,
        batch_timeout_ms: np.ndarray,
    ) -> None:
        self._cells = cells
        self.cell_indices = cell_indices
        self.throughput_tps = throughput_tps
        self.failed_capacity = failed_capacity
        self.failed_latency = failed_latency
        self.failed_memory = failed_memory
        self.failed = failed_capacity | failed_latency | failed_memory
        self.latency_ms = latency_ms
        self.network_mb_per_worker_s = network_mb_per_worker_s
        self.total_tasks = total_tasks
        self.total_executors = total_executors
        self.total_work_ms = total_work_ms
        self.eta = eta
        self.caps = caps
        self.limiting_idx = limiting_idx
        self.bottleneck_idx = bottleneck_idx
        self.stage_times_ms = stage_times_ms  # (R, O_max), row-major
        self._task_mb = task_mb
        self._data_mb = data_mb
        self._memory_budget_mb = memory_budget_mb
        self._max_total_executors = max_total_executors
        self._batch_timeout_ms = batch_timeout_ms

    def __len__(self) -> int:
        return int(self.throughput_tps.shape[0])

    def _order(self, i: int) -> tuple[str, ...]:
        return self._cells.cell(int(self.cell_indices[i])).order

    @property
    def limiting_cap(self) -> list[str]:
        return [
            "" if self.failed[i] else CAP_NAMES[int(self.limiting_idx[i])]
            for i in range(len(self))
        ]

    @property
    def bottleneck(self) -> list[str]:
        return [
            "" if self.failed[i] else self._order(i)[int(self.bottleneck_idx[i])]
            for i in range(len(self))
        ]

    def failure_reason(self, i: int) -> str:
        if self.failed_capacity[i]:
            return (
                f"{int(self.total_executors[i])} executors exceed cluster "
                f"capacity {int(self._max_total_executors[i])}"
            )
        if self.failed_latency[i]:
            return (
                f"batch latency {float(self.latency_ms[i]):.0f} ms exceeds "
                f"the {float(self._batch_timeout_ms[i]):.0f} ms message "
                "timeout (batches replay forever)"
            )
        if self.failed_memory[i]:
            return (
                f"memory exhausted: {float(self._task_mb[i]):.0f} MB task "
                f"overhead + {float(self._data_mb[i]):.0f} MB in-flight "
                f"data > {float(self._memory_budget_mb[i]):.0f} MB budget"
            )
        return ""

    def run(self, i: int) -> MeasuredRun:
        """Materialize row ``i`` as the scalar engine's ``MeasuredRun``."""
        total_tasks = int(self.total_tasks[i])
        if self.failed[i]:
            return MeasuredRun.failure(self.failure_reason(i), total_tasks=total_tasks)
        caps = CapacityBreakdown(
            pipeline_fill=float(self.caps[0, i]),
            bottleneck_stage=float(self.caps[1, i]),
            cpu_saturation=float(self.caps[2, i]),
            acker=float(self.caps[3, i]),
            receiver=float(self.caps[4, i]),
            nic=float(self.caps[5, i]),
        )
        stage_times = {
            name: float(self.stage_times_ms[i, j])
            for j, name in enumerate(self._order(i))
        }
        return MeasuredRun(
            throughput_tps=float(self.throughput_tps[i]),
            network_mb_per_worker_s=float(self.network_mb_per_worker_s[i]),
            batch_latency_ms=float(self.latency_ms[i]),
            total_tasks=total_tasks,
            details={
                "caps": caps,
                "limiting_cap": CAP_NAMES[int(self.limiting_idx[i])],
                "eta": float(self.eta[i]),
                "stage_times_ms": stage_times,
                "total_work_ms": float(self.total_work_ms[i]),
                "total_executors": int(self.total_executors[i]),
            },
        )

    def runs(self) -> list[MeasuredRun]:
        return [self.run(i) for i in range(len(self))]


# ----------------------------------------------------------------------
# The packed model
# ----------------------------------------------------------------------
class PackedBatchModel:
    """Evaluate an R-row (cell, config) matrix in one masked NumPy pass."""

    def __init__(
        self,
        cells: PackedTopologySet,
        engine: str | None = None,
    ) -> None:
        if engine is None:
            engine = (
                "packed-jit" if os.environ.get("REPRO_JIT") == "1" else "packed"
            )
        if engine not in PACKED_ENGINES:
            raise ValueError(
                f"unknown packed engine {engine!r}; expected one of "
                f"{PACKED_ENGINES}"
            )
        self.cells = cells
        self.engine = engine
        self._kernel = _compiled_kernel() if engine == "packed-jit" else None
        #: True when the numba kernel actually compiled (the "packed-jit"
        #: engine silently degrades to pure NumPy when numba is absent).
        self.jit_active = self._kernel is not None
        if engine == "packed-jit" and not self.jit_active:
            obs_runtime.current().metrics.counter("pack.jit_fallbacks").inc()

    # -- public API ----------------------------------------------------
    def evaluate_cells(
        self,
        cell_indices: Sequence[int],
        configs: Sequence[TopologyConfig],
        *,
        workload_times_s: Sequence[float] | None = None,
    ) -> PackedEvaluation:
        """One fused pass: row ``i`` evaluates ``configs[i]`` on cell
        ``cell_indices[i]`` (optionally at workload offset
        ``workload_times_s[i]`` for cells with a schedule).
        """
        if len(cell_indices) != len(configs):
            raise ValueError(
                f"{len(cell_indices)} cell indices for {len(configs)} configs"
            )
        if workload_times_s is not None and len(workload_times_s) != len(configs):
            raise ValueError(
                f"{len(workload_times_s)} workload times for "
                f"{len(configs)} configs"
            )
        ctx = obs_runtime.current()
        started = time.perf_counter()
        with ctx.tracer.span(
            "engine.packed.evaluate_cells",
            n_rows=len(configs),
            n_cells=self.cells.n_cells,
            engine=self.engine,
        ) as span:
            result = self._mechanics(
                list(cell_indices), list(configs), workload_times_s
            )
            span.set_attribute("n_failed", int(result.failed.sum()))
        seconds = time.perf_counter() - started
        ctx.metrics.counter("pack.dispatches").inc()
        ctx.metrics.histogram("pack.rows").record(float(len(configs)))
        ctx.metrics.histogram("pack.seconds").record(seconds)
        return result

    def evaluate_cell(
        self,
        cell_index: int,
        configs: Sequence[TopologyConfig],
        *,
        workload_time_s: float = 0.0,
    ) -> PackedEvaluation:
        """Single-cell convenience wrapper around :meth:`evaluate_cells`."""
        n = len(configs)
        return self.evaluate_cells(
            [cell_index] * n,
            configs,
            workload_times_s=[workload_time_s] * n,
        )

    # -- internals -----------------------------------------------------
    def _mechanics(
        self,
        cell_indices: list[int],
        configs: list[TopologyConfig],
        workload_times_s: Sequence[float] | None,
    ) -> PackedEvaluation:
        pset = self.cells
        pset._ensure_assembled()
        cell = np.asarray(cell_indices, dtype=np.intp)
        n_rows = cell.shape[0]
        o_max = pset._O
        if n_rows == 0:
            empty = np.empty(0)
            empty_bool = np.empty(0, dtype=bool)
            empty_int = np.empty(0, dtype=np.int64)
            return PackedEvaluation(
                cells=pset,
                cell_indices=cell,
                throughput_tps=empty,
                failed_capacity=empty_bool,
                failed_latency=empty_bool,
                failed_memory=empty_bool,
                latency_ms=empty,
                network_mb_per_worker_s=empty,
                total_tasks=empty_int,
                total_executors=empty_int,
                total_work_ms=empty,
                eta=empty,
                caps=np.empty((6, 0)),
                limiting_idx=empty_int,
                bottleneck_idx=empty_int,
                stage_times_ms=np.empty((0, o_max)),
                task_mb=empty,
                data_mb=empty,
                memory_budget_mb=empty,
                max_total_executors=empty_int,
                batch_timeout_ms=empty,
            )

        # Group rows by cell for the per-cell hint fast path.
        groups: dict[int, list[int]] = {}
        for i, m in enumerate(cell_indices):
            groups.setdefault(int(m), []).append(i)

        valid = pset._op_valid[cell]
        raw_hints = np.zeros((n_rows, o_max), dtype=np.int64)
        load = np.ones(n_rows, dtype=np.float64)
        skew_factor = np.ones(n_rows, dtype=np.float64)
        for m, idxs in groups.items():
            pack = pset.cell(m)
            sub = [configs[i] for i in idxs]
            rows = np.asarray(idxs, dtype=np.intp)
            raw_hints[np.ix_(rows, np.arange(pack.n_ops))] = pack.extract_hints(
                sub
            )
            if pack.schedule is not None:
                for i in idxs:
                    t = 0.0 if workload_times_s is None else float(
                        workload_times_s[i]
                    )
                    point = pack.schedule.at(t)
                    load[i] = point.load
                    if point.skew != 0.0:
                        skew_factor[i] = 1.0 - point.skew

        scalars = np.array(
            [_CONFIG_SCALARS(c) for c in configs], dtype=np.int64
        ).reshape(n_rows, 4)
        batch_size = scalars[:, 0]
        batch_parallelism = scalars[:, 1]
        worker_threads = scalars[:, 2]
        receiver_threads = scalars[:, 3]
        raw_caps = [c.max_tasks for c in configs]
        has_cap = np.array([cap is not None for cap in raw_caps], dtype=bool)
        max_tasks = np.array(
            [0 if cap is None else cap for cap in raw_caps], dtype=np.int64
        )
        n_ackers = np.fromiter(
            (c.effective_ackers() for c in configs), dtype=np.int64, count=n_rows
        )

        # Hint normalization: padded columns scale to max(1, rint(0)) = 1,
        # so mask them back to 0 — totals stay integer-exact either way.
        totals = raw_hints.sum(axis=1)
        need = has_cap & (totals > max_tasks)
        hints = raw_hints
        if bool(need.any()):
            scale = max_tasks[need] / totals[need]
            scaled = np.maximum(
                1, np.rint(raw_hints[need] * scale[:, None])
            ).astype(np.int64)
            scaled = np.where(valid[need], scaled, 0)
            hints = raw_hints.copy()
            hints[need] = scaled

        total_tasks = hints.sum(axis=1)
        total_executors = total_tasks + n_ackers
        failed_capacity = total_executors > pset._max_total_executors[cell]

        n_machines = pset._n_machines[cell]
        cores = pset._cores[cell]
        core_speed = pset._core_speed[cell]
        wpm = pset._wpm[cell]

        per_worker = (
            receiver_threads
            + 2.0
            + pset._pool_w[cell] * np.maximum(0, worker_threads - cores)
        )
        threads_per_machine = total_executors / n_machines + per_worker * wpm
        excess = np.maximum(0.0, (threads_per_machine - cores) / cores)
        cs_efficiency = 1.0 / (1.0 + pset._kappa[cell] * excess**2)
        overhead_share = np.minimum(
            0.95,
            pset._pt_cpu[cell] * total_executors / pset._compute_rate[cell],
        )
        eta = cs_efficiency * (1.0 - overhead_share)

        usable_cores = np.minimum(cores, worker_threads * wpm)
        cluster_rate = usable_cores * n_machines * core_speed * eta

        B = batch_size.astype(np.float64)
        P = batch_parallelism.astype(np.float64)
        n_max = int(hints.max()) if hints.size else 1
        machine_cores_f = (usable_cores * n_machines).astype(np.float64)
        hints_f = hints.astype(np.float64)

        cost_rows = pset._cost[cell]
        volume_rows = pset._volume[cell]
        contentious_rows = pset._contentious[cell]
        lid_rows = pset._lid[cell]
        stage_overhead = pset._stage_overhead[cell]
        with np.errstate(divide="ignore", invalid="ignore"):
            cost_matrix = np.where(
                contentious_rows, cost_rows * hints_f, cost_rows
            )
            cost_matrix = cost_matrix * load[:, None]
            work = (B[:, None] * volume_rows) * cost_matrix
            total_work = np.cumsum(work, axis=1)[:, -1]

            # Fused parallelism gather: one fancy index against the
            # shared (K, T) combo tables replaces the per-grouping
            # gather-then-minimum loop of the single-cell model.
            table = pset._ensure_tables(n_max)
            parallelism = table[
                pset._combo_idx[cell], np.maximum(hints, 1)
            ]
            skew_rows = np.where(
                pset._grouped[cell], skew_factor[:, None], 1.0
            )
            parallelism = parallelism * skew_rows
            np.minimum(parallelism, machine_cores_f[:, None], out=parallelism)

            n_layer_count = pset._n_layer_count[cell]
            if self._kernel is not None:
                stage_rows = np.zeros((n_rows, o_max), dtype=np.float64)
                t_max = np.empty(n_rows, dtype=np.float64)
                sum_layer_times = np.empty(n_rows, dtype=np.float64)
                bottleneck_idx = np.zeros(n_rows, dtype=np.int64)
                self._kernel(
                    np.ascontiguousarray(work),
                    np.ascontiguousarray(parallelism),
                    core_speed,
                    eta,
                    stage_overhead,
                    np.ascontiguousarray(lid_rows),
                    n_layer_count,
                    pset._n_ops[cell],
                    pset._L,
                    stage_rows,
                    t_max,
                    sum_layer_times,
                    bottleneck_idx,
                )
            else:
                rate = (
                    np.maximum(parallelism, 1e-12)
                    * core_speed[:, None]
                    * eta[:, None]
                )
                compute_time = np.where(work > 0, work / rate, 0.0)
                stage_rows = compute_time + stage_overhead[:, None]
                masked = np.where(valid, stage_rows, -np.inf)
                t_max = masked.max(axis=1)
                bottleneck_idx = np.argmax(masked, axis=1)
                if pset._L:
                    layer_time = np.zeros((n_rows, pset._L), dtype=np.float64)
                    in_range = np.arange(pset._L) < n_layer_count[:, None]
                    for layer in range(pset._L):
                        layer_max = np.where(
                            lid_rows == layer, masked, -np.inf
                        ).max(axis=1)
                        layer_time[:, layer] = np.where(
                            in_range[:, layer], layer_max, 0.0
                        )
                    sum_layer_times = np.cumsum(layer_time, axis=1)[:, -1]
                else:
                    sum_layer_times = np.zeros(n_rows, dtype=np.float64)

            ack_units = pset._ack_units[cell]
            ack_work = B * ack_units
            total_work = total_work + ack_work

            latency = sum_layer_times + pset._batch_overhead[cell]
            batch_timeout = pset._batch_timeout[cell]
            failed_latency = ~failed_capacity & (latency > batch_timeout)

            inf = np.inf
            cap_pipeline = np.where(latency > 0, P / latency * B * 1000.0, inf)
            cap_stage = np.where(t_max > 0, 1.0 / t_max * B * 1000.0, inf)
            cap_cpu = np.where(
                total_work > 0, cluster_rate / total_work * B * 1000.0, inf
            )
            acker_speed = core_speed * eta
            cap_acker = np.where(
                (ack_units <= 0) | (n_ackers == 0),
                inf,
                n_ackers * acker_speed * 1000.0 / ack_units,
            )

            wire = pset._wire[cell]
            if pset._E:
                emitted = (B[:, None] * pset._edge_vol[cell]) * pset._edge_sel[
                    cell
                ]
                remote = emitted * pset._edge_frac[cell]
                remote_tuples = np.cumsum(remote, axis=1)[:, -1]
                remote_bytes = np.cumsum(
                    (remote * pset._edge_bytes[cell]) * wire[:, None], axis=1
                )[:, -1]
            else:
                remote_tuples = np.zeros(n_rows, dtype=np.float64)
                remote_bytes = np.zeros(n_rows, dtype=np.float64)
            if pset._S:
                ingest_bytes = np.cumsum(
                    ((B[:, None] * pset._ingest_vol[cell]) * pset._ingest_bytes[cell])
                    * wire[:, None],
                    axis=1,
                )[:, -1]
            else:
                ingest_bytes = np.zeros(n_rows, dtype=np.float64)
            remote_bytes = remote_bytes * load
            ingest_bytes = ingest_bytes * load

            total_workers = pset._total_workers[cell]
            rec_per_worker = remote_tuples / total_workers
            rec_capacity = receiver_threads * pset._rec_tpms[cell]
            cap_receiver = np.where(
                remote_tuples > 0,
                rec_capacity / rec_per_worker * B * 1000.0,
                inf,
            )
            bytes_per_batch = remote_bytes + ingest_bytes
            nic_per_machine = bytes_per_batch / n_machines
            cap_nic = np.where(
                bytes_per_batch > 0,
                pset._nic[cell] / nic_per_machine * B * 1000.0,
                inf,
            )

            caps = np.stack(
                [cap_pipeline, cap_stage, cap_cpu, cap_acker, cap_receiver, cap_nic]
            )
            limiting_idx = np.argmin(caps, axis=0)
            throughput = caps[limiting_idx, np.arange(n_rows)]

            executors_per_machine = total_executors / n_machines
            task_mb = executors_per_machine * pset._per_task_mem[cell]
            inflight_bytes = B * P * pset._inflight_unit[cell]
            inflight_bytes = inflight_bytes * load
            data_mb = inflight_bytes / n_machines / 1e6
            budget = pset._budget[cell]
            failed_memory = (
                ~failed_capacity
                & ~failed_latency
                & (task_mb + data_mb > budget)
            )

            failed = failed_capacity | failed_latency | failed_memory
            throughput = np.where(failed, 0.0, throughput)

            batches_per_ms = np.where(B > 0, throughput / (B * 1000.0), 0.0)
            network_bytes_per_ms = batches_per_ms * (remote_bytes + ingest_bytes)
            network_mb = network_bytes_per_ms * 1000.0 / 1e6 / total_workers
            network_mb = np.where(failed, 0.0, network_mb)
            latency_out = np.where(failed, 0.0, latency)

        return PackedEvaluation(
            cells=pset,
            cell_indices=cell,
            throughput_tps=throughput,
            failed_capacity=failed_capacity,
            failed_latency=failed_latency,
            failed_memory=failed_memory,
            latency_ms=np.where(failed_latency, latency, latency_out),
            network_mb_per_worker_s=network_mb,
            total_tasks=total_tasks,
            total_executors=total_executors,
            total_work_ms=total_work,
            eta=eta,
            caps=caps,
            limiting_idx=limiting_idx,
            bottleneck_idx=bottleneck_idx.astype(np.int64),
            stage_times_ms=stage_rows,
            task_mb=task_mb,
            data_mb=data_mb,
            memory_budget_mb=pset._budget[cell],
            max_total_executors=pset._max_total_executors[cell],
            batch_timeout_ms=batch_timeout,
        )
