"""Topology serialization: save/load operator graphs as JSON.

Lets users persist generated benchmark topologies, ship custom
topologies to the tuning CLI, and reload the exact graphs behind
recorded experiment results.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.storm.grouping import Grouping
from repro.storm.topology import Edge, OperatorKind, OperatorSpec, Topology


def operator_to_dict(op: OperatorSpec) -> dict[str, object]:
    return {
        "name": op.name,
        "kind": op.kind.value,
        "cost": op.cost,
        "contentious": op.contentious,
        "selectivity": op.selectivity,
        "default_hint": op.default_hint,
        "tuple_bytes": op.tuple_bytes,
    }


def operator_from_dict(data: Mapping[str, object]) -> OperatorSpec:
    return OperatorSpec(
        name=str(data["name"]),
        kind=OperatorKind(str(data["kind"])),
        cost=float(data.get("cost", 20.0)),  # type: ignore[arg-type]
        contentious=bool(data.get("contentious", False)),
        selectivity=float(data.get("selectivity", 1.0)),  # type: ignore[arg-type]
        default_hint=int(data.get("default_hint", 1)),  # type: ignore[arg-type]
        tuple_bytes=int(data.get("tuple_bytes", 4096)),  # type: ignore[arg-type]
    )


def topology_to_dict(topology: Topology) -> dict[str, object]:
    """JSON-ready representation of a topology."""
    return {
        "name": topology.name,
        "operators": [
            operator_to_dict(topology.operator(n))
            for n in topology.topological_order()
        ],
        "edges": [
            {"src": e.src, "dst": e.dst, "grouping": e.grouping.value}
            for e in topology.edges
        ],
    }


def topology_from_dict(data: Mapping[str, object]) -> Topology:
    """Inverse of :func:`topology_to_dict` (validates on construction)."""
    operators = [operator_from_dict(d) for d in data["operators"]]  # type: ignore[union-attr]
    edges = [
        Edge(
            src=str(d["src"]),
            dst=str(d["dst"]),
            grouping=Grouping(str(d.get("grouping", "shuffle"))),
        )
        for d in data["edges"]  # type: ignore[union-attr]
    ]
    return Topology(str(data["name"]), operators, edges)


def save_topology(topology: Topology, path: str | Path) -> None:
    Path(path).write_text(json.dumps(topology_to_dict(topology), indent=2))


def load_topology(path: str | Path) -> Topology:
    return topology_from_dict(json.loads(Path(path).read_text()))
