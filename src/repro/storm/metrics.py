"""Run metrics reported by the execution engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class MeasuredRun:
    """Result of evaluating one configuration for a measurement window.

    Attributes
    ----------
    throughput_tps:
        Ingested tuples per second, the paper's objective.  Zero for
        failed runs (the signal the parallel linear ascent's stop rule
        watches for).
    network_mb_per_worker_s:
        Average network load in MB/s per worker (Figure 3's metric).
    batch_latency_ms:
        End-to-end latency of one mini-batch through the pipeline.
    total_tasks:
        Executors instantiated for the topology (after normalization).
    failed:
        True if the deployment could not run (e.g. executor capacity or
        memory exhausted); throughput is zero in that case.
    failure_reason:
        Human-readable cause when ``failed``.
    details:
        Engine-specific extras (per-operator utilization, bottleneck
        operator, cap that bound throughput, ...).
    """

    throughput_tps: float
    network_mb_per_worker_s: float = 0.0
    batch_latency_ms: float = 0.0
    total_tasks: int = 0
    failed: bool = False
    failure_reason: str = ""
    details: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.throughput_tps < 0:
            raise ValueError("throughput_tps must be >= 0")
        if self.failed and self.throughput_tps != 0:
            raise ValueError("failed runs must report zero throughput")
        object.__setattr__(self, "details", dict(self.details))

    @classmethod
    def failure(cls, reason: str, *, total_tasks: int = 0) -> "MeasuredRun":
        return cls(
            throughput_tps=0.0,
            total_tasks=total_tasks,
            failed=True,
            failure_reason=reason,
        )

    def with_throughput(self, throughput_tps: float) -> "MeasuredRun":
        from dataclasses import replace

        return replace(self, throughput_tps=max(0.0, throughput_tps))
