"""Time-varying workload schedules (drift profiles).

The paper tunes each (topology, condition) cell under a *fixed*
workload; real stream processors face diurnal curves, flash crowds and
gradual key-skew shifts.  A :class:`WorkloadSchedule` makes the
execution engines time-aware: sampled at a wall-clock offset ``t`` (in
seconds), it yields a :class:`WorkloadPoint` that modulates the
otherwise-static workload:

``load``
    Per-tuple weight multiplier (``1.0`` = the calibrated baseline).
    Scales every operator's per-tuple processing cost and every tuple's
    on-wire/in-memory byte size — a flash crowd of heavier pages makes
    each tuple more expensive to process *and* to ship, without
    changing the tuple count per batch (Trident batches stay
    ``batch_size`` tuples).

``skew``
    Additional key-concentration in ``[0, 1)`` on top of the grouping
    model's baseline.  Every *consumer* operator (one with incoming
    streams) loses usable parallelism by the factor ``1 - skew``: the
    hottest upstream partition dominates its input, so its effective
    task-set parallelism shrinks.  Source operators, which draw from
    the ingest queue directly, are unaffected.

Both engines (:class:`~repro.storm.analytic.AnalyticPerformanceModel`
and :class:`~repro.storm.analytic_batch.AnalyticBatchModel`) apply a
point with bit-identical arithmetic, and the discrete-event simulator
samples the schedule at batch-admission time, so a batch admitted
mid-flash carries the flash's weight through every downstream stage.

Schedules are immutable and cheap to sample; ``at`` must be a pure
function of ``t`` so replayed evaluations (crash-safe resume,
``docs/ROBUSTNESS.md``) reproduce byte-identically.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadPoint:
    """The workload at one instant: load multiplier and extra skew."""

    load: float = 1.0
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.load <= 0:
            raise ValueError("load must be > 0")
        if not 0.0 <= self.skew < 1.0:
            raise ValueError("skew must be in [0, 1)")

    @property
    def is_baseline(self) -> bool:
        """True when the point leaves the workload untouched."""
        return self.load == 1.0 and self.skew == 0.0


class WorkloadSchedule(ABC):
    """A pure function ``t_seconds -> WorkloadPoint``."""

    @abstractmethod
    def at(self, t_s: float) -> WorkloadPoint:
        """Sample the workload at offset ``t_s`` seconds."""


@dataclass(frozen=True)
class ConstantSchedule(WorkloadSchedule):
    """A fixed point at every instant (useful as an explicit baseline)."""

    point: WorkloadPoint = WorkloadPoint()

    def at(self, t_s: float) -> WorkloadPoint:
        return self.point


@dataclass(frozen=True)
class DiurnalSchedule(WorkloadSchedule):
    """Sinusoidal day/night load curve.

    ``load(t) = 1 + amplitude * sin(2 pi t / period_s + phase)``; the
    default phase puts the trough at ``t = 0`` so a study started "at
    night" climbs toward the midday peak.
    """

    period_s: float = 86_400.0
    amplitude: float = 0.5
    phase: float = -math.pi / 2.0
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be > 0")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1) to keep load > 0")

    def at(self, t_s: float) -> WorkloadPoint:
        load = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * t_s / self.period_s + self.phase
        )
        return WorkloadPoint(load=load, skew=self.skew)


@dataclass(frozen=True)
class FlashCrowdSchedule(WorkloadSchedule):
    """Step change in load at ``onset_s`` (a flash crowd arriving).

    Load is ``base_load`` before the onset and ``flash_load`` from the
    onset on; an optional ``decay_s`` relaxes the flash back toward the
    base exponentially (``decay_s = 0`` keeps the step forever).
    """

    onset_s: float = 600.0
    flash_load: float = 1.8
    base_load: float = 1.0
    decay_s: float = 0.0
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.flash_load <= 0 or self.base_load <= 0:
            raise ValueError("loads must be > 0")
        if self.decay_s < 0:
            raise ValueError("decay_s must be >= 0")

    def at(self, t_s: float) -> WorkloadPoint:
        if t_s < self.onset_s:
            return WorkloadPoint(load=self.base_load, skew=self.skew)
        load = self.flash_load
        if self.decay_s > 0:
            load = self.base_load + (self.flash_load - self.base_load) * math.exp(
                -(t_s - self.onset_s) / self.decay_s
            )
        return WorkloadPoint(load=load, skew=self.skew)


@dataclass(frozen=True)
class SkewShiftSchedule(WorkloadSchedule):
    """Gradual key-distribution shift: skew ramps linearly over a window.

    Skew is ``initial_skew`` before ``ramp_start_s``, ``final_skew``
    after ``ramp_end_s``, and linearly interpolated in between; load
    stays at ``load`` throughout (a pure partitioning change).
    """

    ramp_start_s: float = 600.0
    ramp_end_s: float = 1_800.0
    initial_skew: float = 0.0
    final_skew: float = 0.6
    load: float = 1.0

    def __post_init__(self) -> None:
        if self.ramp_end_s < self.ramp_start_s:
            raise ValueError("ramp_end_s must be >= ramp_start_s")
        for skew in (self.initial_skew, self.final_skew):
            if not 0.0 <= skew < 1.0:
                raise ValueError("skew must be in [0, 1)")

    def at(self, t_s: float) -> WorkloadPoint:
        if t_s <= self.ramp_start_s:
            skew = self.initial_skew
        elif t_s >= self.ramp_end_s or self.ramp_end_s == self.ramp_start_s:
            skew = self.final_skew
        else:
            frac = (t_s - self.ramp_start_s) / (self.ramp_end_s - self.ramp_start_s)
            skew = self.initial_skew + frac * (self.final_skew - self.initial_skew)
        return WorkloadPoint(load=self.load, skew=skew)
