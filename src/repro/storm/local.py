"""Local-mode execution: run a topology's real logic, single-process.

Storm ships a "local mode" that runs a topology inside one JVM for
development and testing; this is its counterpart.  Operators carry
actual Python logic (spout functions produce value rows, bolt functions
map an input tuple to zero or more output rows), tuples are routed
through the declared groupings to per-task partitions, and Trident
mini-batch semantics apply: a batch fully passes one operator before
the next operator sees it.

This is *functional* execution — correctness, selectivities, grouping
skew, per-operator tuple accounting — not a performance model; the
analytic and discrete-event engines cover timing.  The two connect
through :meth:`LocalRunResult.measured_selectivities`, which calibrates
a performance-model topology from observed behaviour of real logic
(used by the Sundog example to set the Filter selectivity from actual
text rather than an assumed constant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping

import numpy as np

from repro.storm.grouping import Grouping, load_fractions
from repro.storm.topology import Topology
from repro.storm.tuples import Batch, Tuple

#: A spout source yields value rows (dicts) indefinitely or until
#: exhausted.
SpoutSource = Iterator[Mapping[str, object]]
#: Bolt logic maps one input tuple to zero or more output value rows.
BoltLogic = Callable[[Tuple], Iterable[Mapping[str, object]]]


class BatchAwareBolt:
    """Bolt logic with Trident batch boundaries (aggregators, counters).

    Subclasses override :meth:`process` for per-tuple work and
    :meth:`end_batch` to flush per-batch aggregates — how Trident's
    ``persistentAggregate``-style operators behave.  Instances are also
    plain callables so they fit the :data:`BoltLogic` signature.
    """

    def begin_batch(self, batch_id: int) -> None:  # pragma: no cover - hook
        """Called before the first tuple of each batch."""

    def process(self, item: Tuple) -> Iterable[Mapping[str, object]]:
        """Per-tuple logic; default emits nothing (aggregate-only bolts)."""
        return []

    def end_batch(self) -> Iterable[Mapping[str, object]]:
        """Called after the last tuple of each batch; emits aggregates."""
        return []

    def __call__(self, item: Tuple) -> Iterable[Mapping[str, object]]:
        return self.process(item)


class LocalExecutionError(RuntimeError):
    """Raised when a topology cannot be executed locally."""


@dataclass
class OperatorStats:
    """Per-operator tuple accounting for one local run."""

    received: int = 0
    emitted: int = 0
    per_task_received: list[int] = field(default_factory=list)

    @property
    def selectivity(self) -> float:
        """Observed emitted-per-received ratio (0 when starved)."""
        return self.emitted / self.received if self.received else 0.0


@dataclass
class LocalRunResult:
    """Outcome of running batches through a topology locally."""

    batches: int
    source_tuples: int
    stats: dict[str, OperatorStats]
    #: Tuples *received* by each sink operator (their own emissions go
    #: nowhere by definition — writers write, they do not forward).
    sink_tuples: dict[str, list[Tuple]]

    def measured_selectivities(self) -> dict[str, float]:
        return {name: s.selectivity for name, s in self.stats.items()}

    def total_emitted(self) -> int:
        return sum(s.emitted for s in self.stats.values())


def _default_bolt_logic(selectivity: float) -> BoltLogic:
    """Pass-through logic emitting ``selectivity`` copies in expectation.

    Deterministic: emits ``floor(selectivity)`` copies plus one more on
    a fixed rotation, so long runs converge to the declared value
    without randomness.
    """
    base = int(selectivity)
    fraction = selectivity - base
    counter = {"seen": 0, "extra": 0.0}

    def logic(item: Tuple) -> Iterable[Mapping[str, object]]:
        counter["seen"] += 1
        copies = base
        counter["extra"] += fraction
        if counter["extra"] >= 1.0 - 1e-12:
            counter["extra"] -= 1.0
            copies += 1
        return [dict(item.values) for _ in range(copies)]

    return logic


class LocalTopologyRunner:
    """Execute a topology's logic on real data, batch by batch.

    Parameters
    ----------
    topology:
        The operator DAG; per-operator task counts come from
        ``parallelism_hints`` (default 1 each) and only influence the
        grouping partitions (useful for asserting FIELDS skew).
    sources:
        Spout name → row iterator.  Every spout needs one.
    logic:
        Bolt name → :data:`BoltLogic`.  Missing bolts run declared-
        selectivity pass-through logic.
    """

    def __init__(
        self,
        topology: Topology,
        sources: Mapping[str, SpoutSource],
        logic: Mapping[str, BoltLogic] | None = None,
        *,
        parallelism_hints: Mapping[str, int] | None = None,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self._sources = dict(sources)
        missing = set(topology.sources()) - set(self._sources)
        if missing:
            raise LocalExecutionError(f"spouts without sources: {sorted(missing)}")
        self._logic: dict[str, BoltLogic] = {}
        logic = dict(logic or {})
        for name in topology.topological_order():
            op = topology.operator(name)
            if op.is_spout:
                continue
            self._logic[name] = logic.pop(name, _default_bolt_logic(op.selectivity))
        if logic:
            raise LocalExecutionError(f"logic for unknown operators: {sorted(logic)}")
        self._hints = {
            name: int((parallelism_hints or {}).get(name, 1))
            for name in topology.topological_order()
        }
        if any(h < 1 for h in self._hints.values()):
            raise LocalExecutionError("parallelism hints must be >= 1")
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def run(self, n_batches: int, batch_size: int) -> LocalRunResult:
        """Pull ``n_batches`` mini-batches through the topology."""
        if n_batches < 1 or batch_size < 1:
            raise ValueError("n_batches and batch_size must be >= 1")
        stats = {
            name: OperatorStats(per_task_received=[0] * self._hints[name])
            for name in self.topology.topological_order()
        }
        sink_tuples: dict[str, list[Tuple]] = {
            name: [] for name in self.topology.sinks()
        }
        source_total = 0
        for batch_id in range(n_batches):
            emitted = self._run_batch(batch_id, batch_size, stats, sink_tuples)
            source_total += emitted
        return LocalRunResult(
            batches=n_batches,
            source_tuples=source_total,
            stats=stats,
            sink_tuples=sink_tuples,
        )

    def _run_batch(
        self,
        batch_id: int,
        batch_size: int,
        stats: dict[str, OperatorStats],
        sink_tuples: dict[str, list[Tuple]],
    ) -> int:
        topo = self.topology
        inboxes: dict[str, Batch] = {
            name: Batch(batch_id=batch_id) for name in topo.topological_order()
        }
        # Spouts share the batch evenly (the engines' modelling choice).
        spouts = topo.sources()
        share = batch_size // len(spouts)
        remainder = batch_size - share * len(spouts)
        source_emitted = 0
        for idx, spout in enumerate(spouts):
            want = share + (1 if idx < remainder else 0)
            source = self._sources[spout]
            for _ in range(want):
                try:
                    row = next(source)
                except StopIteration as exc:
                    raise LocalExecutionError(
                        f"source for spout {spout!r} exhausted"
                    ) from exc
                inboxes[spout].append(
                    Tuple(values=row, source=spout, batch_id=batch_id)
                )
                source_emitted += 1

        for name in topo.topological_order():
            op = topo.operator(name)
            inbox = inboxes[name]
            stat = stats[name]
            outputs: list[Tuple] = []
            if op.is_spout:
                stat.received += len(inbox)
                self._account_tasks(name, inbox, stat)
                outputs = list(inbox)
            else:
                stat.received += len(inbox)
                self._account_tasks(name, inbox, stat)
                logic = self._logic[name]
                if isinstance(logic, BatchAwareBolt):
                    logic.begin_batch(batch_id)
                for item in inbox:
                    for row in logic(item):
                        outputs.append(
                            Tuple(values=row, source=name, batch_id=batch_id)
                        )
                if isinstance(logic, BatchAwareBolt):
                    for row in logic.end_batch():
                        outputs.append(
                            Tuple(values=row, source=name, batch_id=batch_id)
                        )
            stat.emitted += len(outputs)
            children = topo.children(name)
            if not children:
                sink_tuples[name].extend(inbox)
                continue
            # Every subscriber receives all emitted tuples (§III-A).
            for child in children:
                for item in outputs:
                    inboxes[child].append(item)
        return source_emitted

    def _account_tasks(self, name: str, inbox: Batch, stat: OperatorStats) -> None:
        """Distribute received tuples over task partitions per grouping."""
        n_tasks = self._hints[name]
        if n_tasks == 1 or len(inbox) == 0:
            stat.per_task_received[0] += len(inbox)
            return
        parents = self.topology.parents(name)
        grouping = (
            self.topology.edge(parents[0], name).grouping
            if parents
            else Grouping.SHUFFLE
        )
        if grouping is Grouping.FIELDS:
            # Hash the first field so equal keys land on equal tasks.
            for item in inbox:
                first = next(iter(item.values.values()), None)
                task = hash(str(first)) % n_tasks
                stat.per_task_received[task] += 1
        elif grouping is Grouping.GLOBAL:
            stat.per_task_received[0] += len(inbox)
        elif grouping is Grouping.ALL:
            for task in range(n_tasks):
                stat.per_task_received[task] += len(inbox)
        else:  # shuffle: round-robin through a random starting offset
            fractions = load_fractions(grouping, n_tasks)
            counts = np.floor(fractions * len(inbox)).astype(int)
            leftover = len(inbox) - int(counts.sum())
            for i in range(leftover):
                counts[i % n_tasks] += 1
            for task, count in enumerate(counts):
                stat.per_task_received[task] += int(count)


def iterate_rows(rows: Iterable[Mapping[str, object]]) -> SpoutSource:
    """Adapt a finite row collection into a spout source iterator."""
    return iter(list(rows))


def repeating_source(
    make_rows: Callable[[int], Iterable[Mapping[str, object]]],
) -> SpoutSource:
    """A spout source that regenerates rows chunk by chunk, forever."""

    def generate() -> Iterator[Mapping[str, object]]:
        chunk = 0
        while True:
            yield from make_rows(chunk)
            chunk += 1

    return generate()
