"""Discrete-event simulation of a Storm/Trident deployment.

Where :mod:`repro.storm.analytic` solves the steady state in closed
form, this engine plays the system out event by event:

* task instances are placed on machines by the real
  :class:`~repro.storm.scheduler.EvenScheduler`;
* each machine is a processor-sharing server — active jobs share
  ``min(cores, worker_threads)`` cores, degraded by the same
  context-switch efficiency the analytic model charges;
* a mini-batch is a wave of jobs through the DAG: operator *o* may start
  processing batch *b* only when every parent has finished batch *b*
  (Trident's per-batch barrier), with a network transfer delay on
  remote edges; each operator processes batches one at a time in FIFO
  order (Trident commits batch state in order, so an operator cannot
  run ahead into the next batch);
* at most ``batch_parallelism`` batches are in flight; a completed batch
  pays the per-batch coordination overhead before its pipeline slot is
  reused;
* acker work for a batch must finish before the batch commits.

The processor-sharing dynamics use per-machine virtual-time counters so
each event costs O(log jobs) instead of a full rescan.

The simulation is exact for the mechanics it models and is used to
validate the analytic engine (see ``tests/test_cross_validation.py``);
experiments use the analytic engine for speed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.obs import runtime as obs_runtime
from repro.storm.acker import AckerModel
from repro.storm.analytic import AnalyticPerformanceModel, CalibrationParams
from repro.storm.cluster import ClusterSpec
from repro.storm.config import TopologyConfig
from repro.storm.faults import FaultPlan, inject_faults
from repro.storm.grouping import load_fractions, remote_fraction
from repro.storm.metrics import MeasuredRun
from repro.storm.noise import NoiseModel, NoNoise, draw_observation
from repro.storm.schedule import WorkloadPoint, WorkloadSchedule
from repro.storm.scheduler import Assignment, EvenScheduler, SchedulingError
from repro.storm.topology import Topology, effective_cost


class _Machine:
    """Processor-sharing server with a virtual-time progress counter.

    ``virtual`` advances at the per-job service rate; a job admitted at
    virtual time ``v`` with work ``w`` completes when ``virtual`` reaches
    ``v + w``.  Because all jobs on a machine share the same rate, a
    single counter orders completions correctly.

    The active set is a heap of ``(target_virtual, job_id)`` pairs; job
    identity/payload lives in the event loop's ``job_index`` so heap
    operations compare plain floats and ints only.
    """

    __slots__ = (
        "machine_id",
        "usable_cores",
        "core_speed",
        "efficiency",
        "_speed",
        "virtual",
        "last_update",
        "active",
        "n_active",
    )

    def __init__(
        self,
        machine_id: int,
        usable_cores: float,
        core_speed: float,
        efficiency: float,
    ) -> None:
        self.machine_id = machine_id
        self.usable_cores = usable_cores
        self.core_speed = core_speed
        self.efficiency = efficiency
        self._speed = core_speed * efficiency  # rate when cores are not shared
        self.virtual = 0.0
        self.last_update = 0.0
        self.active: list[tuple[float, int]] = []  # heap by target_virtual
        self.n_active = 0

    def rate(self) -> float:
        """Service rate per job in compute units per ms."""
        n = self.n_active
        if n == 0:
            return 0.0
        if n <= self.usable_cores:
            return self._speed
        return self._speed * (self.usable_cores / n)

    def advance_to(self, now: float) -> None:
        if now > self.last_update:
            self.virtual += self.rate() * (now - self.last_update)
            self.last_update = now

    def add_job(self, job, now: float) -> None:
        """Admit a job object (reads ``.job_id``/``.work``, stamps
        ``.target_virtual``).  The event loop uses :meth:`add_work`."""
        self.advance_to(now)
        target = self.virtual + job.work
        job.target_virtual = target
        heapq.heappush(self.active, (target, job.job_id))
        self.n_active += 1

    def add_work(self, job_id: int, work: float, now: float) -> None:
        self.advance_to(now)
        heapq.heappush(self.active, (self.virtual + work, job_id))
        self.n_active += 1

    def next_completion_time(self, now: float) -> float:
        """Absolute time the earliest active job completes.

        Pure peek: machine state (``virtual``/``last_update``) is NOT
        mutated, so callers may probe freely — the clock only advances
        through :meth:`advance_to` (or admitting/draining jobs, which
        advance explicitly).  The projection ``virtual + rate * dt`` is
        exactly what :meth:`advance_to` would commit, so the returned
        time is identical to the old peek-that-advanced behaviour.
        """
        if not self.active:
            return math.inf
        rate = self.rate()
        if rate <= 0:
            return math.inf
        virtual = self.virtual
        if now > self.last_update:
            virtual += rate * (now - self.last_update)
        return now + max(0.0, self.active[0][0] - virtual) / rate

    def pop_completed(self, now: float) -> int | None:
        """Drain one due job, returning its ``job_id`` (or ``None``)."""
        if not self.active:
            return None
        self.advance_to(now)
        target, job_id = self.active[0]
        if target <= self.virtual + 1e-9:
            heapq.heappop(self.active)
            self.n_active -= 1
            return job_id
        return None


@dataclass
class _BatchState:
    """Barrier bookkeeping for one in-flight batch."""

    batch_id: int
    pending_jobs: dict[str, int] = field(default_factory=dict)
    parents_done: dict[str, int] = field(default_factory=dict)
    operators_done: int = 0
    acker_done: bool = False
    started_at: float = 0.0
    #: Workload point sampled at admission — a batch admitted mid-flash
    #: carries the flash's weight through every downstream stage.
    point: WorkloadPoint | None = None


class DiscreteEventSimulator:
    """Simulate a measurement window of one configuration.

    Parameters
    ----------
    topology, cluster:
        The deployment under test.
    calibration:
        Shared execution-model constants (same object the analytic
        engine uses, so the two engines are directly comparable).
    noise:
        Observation noise applied to the measured throughput.
    max_sim_time_ms:
        Simulated measurement window (the paper used 2-minute windows).
    max_batches:
        Hard cap on simulated batches so very fast configurations do
        not produce unbounded event counts.
    warmup_batches:
        Completed batches excluded from the throughput measurement
        (pipeline fill transient).
    """

    def __init__(
        self,
        topology: Topology,
        cluster: ClusterSpec,
        calibration: CalibrationParams | None = None,
        noise: NoiseModel | None = None,
        seed: int | None = None,
        max_sim_time_ms: float = 120_000.0,
        max_batches: int = 200,
        warmup_batches: int = 3,
        faults: FaultPlan | None = None,
        schedule: WorkloadSchedule | None = None,
    ) -> None:
        if max_batches < 2:
            raise ValueError("max_batches must be >= 2")
        if warmup_batches < 0:
            raise ValueError("warmup_batches must be >= 0")
        self.topology = topology
        self.cluster = cluster
        self.calibration = calibration or CalibrationParams()
        self.noise = noise or NoNoise()
        self.faults = faults
        self.schedule = schedule
        self._rng = np.random.default_rng(seed)
        self.max_sim_time_ms = max_sim_time_ms
        self.max_batches = max_batches
        self.warmup_batches = warmup_batches
        self._acker_model = AckerModel(ack_cost_units=self.calibration.ack_cost_units)
        self._scheduler = EvenScheduler()
        # Reuse the analytic model's feasibility checks and network math.
        self._analytic = AnalyticPerformanceModel(
            topology, cluster, self.calibration
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        config: TopologyConfig,
        *,
        seed: int | None = None,
        workload_time_s: float = 0.0,
    ) -> MeasuredRun:
        """Simulate one measurement window, with faults and noise.

        ``seed`` draws the noise (and any injected fault decision, see
        :mod:`repro.storm.faults`) from a per-evaluation stream instead
        of the engine's shared one (see
        :func:`repro.storm.noise.draw_observation`).  ``workload_time_s``
        anchors the engine's :class:`WorkloadSchedule` (if any): the
        schedule is sampled at ``workload_time_s + sim_now`` when each
        batch is admitted.
        """
        run = inject_faults(
            self.faults,
            lambda: self.evaluate_noise_free(
                config, workload_time_s=workload_time_s
            ),
            config_key=repr(config),
            seed=seed,
            tracer=obs_runtime.current().tracer,
            engine="des",
        )
        if run.failed:
            return run
        observed = draw_observation(self.noise, run.throughput_tps, self._rng, seed)
        return run.with_throughput(observed)

    def __call__(self, config: TopologyConfig) -> float:
        return self.evaluate(config).throughput_tps

    # ------------------------------------------------------------------
    def evaluate_noise_free(
        self, config: TopologyConfig, *, workload_time_s: float = 0.0
    ) -> MeasuredRun:
        """Event-by-event simulation of one configuration's window."""
        ctx = obs_runtime.current()
        with ctx.tracer.span("engine.des.evaluate") as span:
            run = self._evaluate_mechanics(config, workload_time_s)
            if run.failed:
                span.set_attribute("failed", True)
                ctx.tracer.event(
                    "engine.failure", engine="des", reason=run.failure_reason
                )
            else:
                span.set_attribute(
                    "completed_batches", run.details.get("completed_batches", 0)
                )
            return run

    def _evaluate_mechanics(
        self, config: TopologyConfig, workload_time_s: float = 0.0
    ) -> MeasuredRun:
        topo = self.topology
        cluster = self.cluster
        cal = self.calibration
        hints = config.normalized_hints(topo)
        schedule = self.schedule
        #: Window-origin workload point; per-batch points are sampled in
        #: admit_batch as the simulation clock advances.
        point0 = schedule.at(workload_time_s) if schedule is not None else None

        try:
            assignment = self._scheduler.schedule(topo, config, cluster)
        except SchedulingError as exc:
            return MeasuredRun.failure(str(exc), total_tasks=sum(hints.values()))
        mem_fail = self._analytic._memory_exceeded(
            config,
            hints,
            assignment.total_executors(),
            float(config.batch_size),
            float(config.batch_parallelism),
            point0,
        )
        if mem_fail is not None:
            return MeasuredRun.failure(mem_fail, total_tasks=sum(hints.values()))

        machines = self._build_machines(config, assignment)

        volumes = topo.volumes()
        B = float(config.batch_size)
        P = int(config.batch_parallelism)
        #: Per-operator spawn plan, computed once per evaluation: the
        #: exact ``(machine, work)`` list one batch spawns, plus the
        #: distinct machines touched (one heap event per machine per
        #: spawn instead of one per job).
        spawn_plan: dict[str, tuple[list[tuple[_Machine, float]], list[_Machine]]] = {}
        #: Raw per-operator spawn ingredients, kept only under a
        #: schedule: per-batch workload points rescale work (load) and
        #: reshape the per-task split (skew) at spawn time.
        spawn_raw: dict[str, tuple[list[int], float, np.ndarray, bool]] = {}
        for name in topo:
            op = topo.operator(name)
            n_tasks = hints[name]
            cost = effective_cost(op, n_tasks)
            total_work = B * volumes[name] * cost
            fractions = self._load_split(name, n_tasks)
            works = (total_work * fractions).tolist()
            placements = [t.slot.machine_id for t in assignment.tasks_of(name)]
            entries = [
                (machines[mid], float(work))
                for mid, work in zip(placements, works)
            ]
            distinct = [machines[mid] for mid in dict.fromkeys(placements)]
            spawn_plan[name] = (entries, distinct)
            if schedule is not None:
                is_consumer = bool(list(topo.parents(name)))
                spawn_raw[name] = (placements, total_work, fractions, is_consumer)

        ack_demand = B * self._acker_model.demand_units_per_source_tuple(topo)
        acker_machines = [t.slot.machine_id for t in assignment.acker_tasks]
        if acker_machines:
            per_task = ack_demand / len(acker_machines)
            spawn_plan["__acker__"] = (
                [(machines[mid], per_task) for mid in acker_machines],
                [machines[mid] for mid in dict.fromkeys(acker_machines)],
            )
        edge_delay = self._edge_transfer_delays(B)
        if point0 is not None and point0.load != 1.0:
            # Heavier tuples ship more bytes; transfer delays scale with
            # the window-origin load (edge delays are per-evaluation
            # constants, the per-batch compute work is what varies).
            edge_delay = {k: v * point0.load for k, v in edge_delay.items()}

        # Hoisted invariants for the hot loop.
        children = {name: list(topo.children(name)) for name in topo}
        n_parents = {name: len(topo.parents(name)) for name in topo}
        sources = list(topo.sources())
        stage_overhead = cal.stage_overhead_ms
        batch_overhead = cal.batch_overhead_ms
        max_batches = self.max_batches
        heappush = heapq.heappush
        heappop = heapq.heappop

        # --- event loop state ----------------------------------------
        job_ids = itertools.count()
        #: (time, seq, kind, payload) — kinds: "machine" (check machine
        #: completions), "spawn" (operator jobs become ready), "admit"
        #: (new batch may enter the pipeline).
        events: list[tuple[float, int, str, object]] = []
        seq = itertools.count()
        batches: dict[int, _BatchState] = {}
        #: Job bookkeeping as parallel arrays indexed by job id: ids are
        #: dense (``itertools.count`` consumed only in ``_spawn_jobs``),
        #: so an append-only list replaces the dict the hot loop used to
        #: hash into on every spawn and completion.
        job_batch: list[int] = []
        job_operator: list[str] = []
        next_batch = itertools.count()
        #: Completion records, also structure-of-arrays (batch ids were
        #: never consumed downstream; the measurement pass only needs
        #: the time and latency columns).
        completed_times: list[float] = []
        completed_latencies: list[float] = []
        n_operators = len(topo)

        #: Per-operator batch serialization: an operator processes one
        #: batch at a time in FIFO order (Trident state commits are
        #: ordered per operator).
        operator_busy: dict[str, bool] = {name: False for name in topo}
        operator_busy["__acker__"] = False
        operator_queue: dict[str, list[int]] = {name: [] for name in operator_busy}

        def _spawn_jobs(batch: _BatchState, operator: str, now: float) -> None:
            entries, distinct = spawn_plan[operator]
            batch_id = batch.batch_id
            point = batch.point
            if point is not None and operator != "__acker__":
                placements, total_work, fractions, is_consumer = spawn_raw[operator]
                if point.skew != 0.0 and is_consumer:
                    # Concentrate the split on the hottest task: the
                    # event-level analogue of the analytic engines'
                    # (1 - skew) parallelism shave for consumers.
                    hot = int(np.argmax(fractions))
                    fractions = (1.0 - point.skew) * fractions
                    fractions[hot] += point.skew
                works = (total_work * point.load) * fractions
                entries = [
                    (machines[mid], float(work))
                    for mid, work in zip(placements, works)
                ]
            batch.pending_jobs[operator] = len(entries)
            for machine, work in entries:
                job_id = next(job_ids)
                job_batch.append(batch_id)
                job_operator.append(operator)
                machine.add_work(job_id, work, now)
            for machine in distinct:
                t = machine.next_completion_time(now)
                if t < math.inf:
                    heappush(events, (t, next(seq), "machine", machine))

        def request_operator(batch_id: int, operator: str, now: float) -> None:
            if operator_busy[operator]:
                operator_queue[operator].append(batch_id)
                return
            batch = batches.get(batch_id)
            if batch is None:
                return
            operator_busy[operator] = True
            _spawn_jobs(batch, operator, now)

        def release_operator(operator: str, now: float) -> None:
            operator_busy[operator] = False
            queue = operator_queue[operator]
            while queue:
                batch_id = queue.pop(0)
                if batch_id in batches:
                    request_operator(batch_id, operator, now)
                    break

        def admit_batch(now: float) -> None:
            batch_id = next(next_batch)
            if batch_id >= max_batches:
                return
            batch = _BatchState(batch_id=batch_id, started_at=now)
            if schedule is not None:
                batch.point = schedule.at(workload_time_s + now / 1000.0)
            batches[batch_id] = batch
            for source in sources:
                request_operator(batch_id, source, now)
            if not acker_machines or ack_demand <= 0:
                batch.acker_done = True
            else:
                request_operator(batch_id, "__acker__", now)

        def operator_finished(batch: _BatchState, operator: str, now: float) -> None:
            release_operator(operator, now)
            if operator == "__acker__":
                batch.acker_done = True
            else:
                batch.operators_done += 1
                for child in children[operator]:
                    done = batch.parents_done.get(child, 0) + 1
                    batch.parents_done[child] = done
                    if done == n_parents[child]:
                        delay = edge_delay.get((operator, child), 0.0)
                        heappush(
                            events,
                            (now + delay, next(seq), "spawn", (batch.batch_id, child)),
                        )
            if batch.operators_done == n_operators and batch.acker_done:
                completed_times.append(now)
                completed_latencies.append(now - batch.started_at)
                del batches[batch.batch_id]
                # Commit overhead holds the pipeline slot before reuse.
                heappush(events, (now + batch_overhead, next(seq), "admit", None))

        # Prime the pipeline with P batches.
        for _ in range(P):
            admit_batch(0.0)

        now = 0.0
        while events:
            now, _, kind, payload = heappop(events)
            if now > self.max_sim_time_ms:
                break
            if len(completed_times) >= max_batches:
                break
            if kind == "machine":
                machine = payload
                machine.advance_to(now)
                active = machine.active
                threshold = machine.virtual + 1e-9
                while active and active[0][0] <= threshold:
                    _, job_id = heappop(active)
                    machine.n_active -= 1
                    batch_id = job_batch[job_id]
                    operator = job_operator[job_id]
                    batch = batches.get(batch_id)
                    if batch is None:
                        continue
                    batch.pending_jobs[operator] -= 1
                    if batch.pending_jobs[operator] == 0:
                        # The batch-commit signal for this operator costs
                        # a fixed coordination delay before downstream
                        # operators (and the next batch here) may start.
                        heappush(
                            events,
                            (
                                now + stage_overhead,
                                next(seq),
                                "opdone",
                                (batch_id, operator),
                            ),
                        )
                t = machine.next_completion_time(now)
                if t < math.inf:
                    heappush(events, (t, next(seq), "machine", machine))
            elif kind == "opdone":
                batch_id, operator = payload  # type: ignore[misc]
                batch = batches.get(batch_id)
                if batch is not None:
                    operator_finished(batch, operator, now)
            elif kind == "spawn":
                batch_id, operator = payload  # type: ignore[misc]
                request_operator(batch_id, operator, now)
            elif kind == "admit":
                admit_batch(now)

        return self._measure(
            config, assignment, completed_times, completed_latencies, now, point0
        )

    # ------------------------------------------------------------------
    def _measure(
        self,
        config: TopologyConfig,
        assignment: Assignment,
        completed_times: list[float],
        completed_latencies: list[float],
        end_time: float,
        point: WorkloadPoint | None = None,
    ) -> MeasuredRun:
        hints = config.normalized_hints(self.topology)
        total_tasks = sum(hints.values())
        warm = self.warmup_batches
        if len(completed_times) <= warm + 1:
            return MeasuredRun.failure(
                "no steady-state batches completed within the window",
                total_tasks=total_tasks,
            )
        times = sorted(completed_times)
        t0 = times[warm]
        t1 = times[-1]
        n_measured = len(times) - warm - 1
        if t1 <= t0:
            return MeasuredRun.failure(
                "degenerate measurement window", total_tasks=total_tasks
            )
        worst_latency = max(completed_latencies)
        if worst_latency > self.calibration.batch_timeout_ms:
            return MeasuredRun.failure(
                f"batch latency {worst_latency:.0f} ms exceeds the "
                f"{self.calibration.batch_timeout_ms:.0f} ms message timeout",
                total_tasks=total_tasks,
            )
        batches_per_ms = n_measured / (t1 - t0)
        throughput = batches_per_ms * config.batch_size * 1000.0

        remote_tuples, remote_bytes, ingest_bytes = self._analytic._network_demand(
            float(config.batch_size), hints
        )
        if point is not None:
            remote_bytes = remote_bytes * point.load
            ingest_bytes = ingest_bytes * point.load
        network_bytes_per_ms = batches_per_ms * (remote_bytes + ingest_bytes)
        network_mb_per_worker_s = (
            network_bytes_per_ms * 1000.0 / 1e6 / self.cluster.total_workers
        )
        return MeasuredRun(
            throughput_tps=throughput,
            network_mb_per_worker_s=network_mb_per_worker_s,
            batch_latency_ms=(
                float(np.median(completed_latencies))
                if completed_latencies
                else 0.0
            ),
            total_tasks=total_tasks,
            details={
                "completed_batches": len(completed_times),
                "sim_time_ms": end_time,
            },
        )

    # ------------------------------------------------------------------
    def _build_machines(
        self, config: TopologyConfig, assignment: Assignment
    ) -> dict[int, _Machine]:
        cal = self.calibration
        spec = self.cluster.machine
        usable_cores = min(
            spec.cores, config.worker_threads * self.cluster.workers_per_machine
        )
        threads = assignment.threads_per_machine()
        pool_extra = (
            cal.pool_oversubscription_weight
            * max(0, config.worker_threads - spec.cores)
            * self.cluster.workers_per_machine
        )
        executors = assignment.executors_per_machine()
        machines: dict[int, _Machine] = {}
        for machine_id in range(self.cluster.n_machines):
            total_threads = threads[machine_id] + pool_extra
            excess = max(0.0, (total_threads - spec.cores) / spec.cores)
            efficiency = 1.0 / (1.0 + cal.context_switch_kappa * excess**2)
            overhead_share = min(
                0.95,
                cal.per_task_cpu_overhead
                * executors[machine_id]
                / (spec.cores * spec.core_speed),
            )
            efficiency *= 1.0 - overhead_share
            machines[machine_id] = _Machine(
                machine_id=machine_id,
                usable_cores=usable_cores,
                core_speed=spec.core_speed,
                efficiency=efficiency,
            )
        return machines

    def _load_split(self, operator: str, n_tasks: int) -> np.ndarray:
        """Per-task share of the operator's batch work."""
        groupings = [
            self.topology.edge(p, operator).grouping
            for p in self.topology.parents(operator)
        ]
        if not groupings:
            return np.full(n_tasks, 1.0 / n_tasks)
        splits = [load_fractions(g, n_tasks) for g in groupings]
        combined = np.mean(splits, axis=0)
        total = combined.sum()
        # ALL groupings replicate work rather than splitting it.
        if total > 1.0 + 1e-9:
            return combined
        return combined / total

    def _edge_transfer_delays(self, batch_size: float) -> dict[tuple[str, str], float]:
        """Per-edge network transfer time for one batch's tuples (ms)."""
        topo = self.topology
        delays: dict[tuple[str, str], float] = {}
        wire = 1.0 + self.calibration.wire_overhead
        volumes = topo.volumes()
        nic = self.cluster.machine.nic_bytes_per_ms
        for edge in topo.edges:
            src_op = topo.operator(edge.src)
            emitted = batch_size * volumes[edge.src] * src_op.selectivity
            frac = remote_fraction(edge.grouping, self.cluster.n_machines)
            bytes_total = emitted * frac * src_op.tuple_bytes * wire
            # Transfers fan out across machines, so the effective pipe is
            # the aggregate NIC capacity of the cluster.
            capacity = nic * self.cluster.n_machines
            delays[(edge.src, edge.dst)] = bytes_total / capacity if capacity else 0.0
        return delays
