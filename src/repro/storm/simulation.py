"""Discrete-event simulation of a Storm/Trident deployment.

Where :mod:`repro.storm.analytic` solves the steady state in closed
form, this engine plays the system out event by event:

* task instances are placed on machines by the real
  :class:`~repro.storm.scheduler.EvenScheduler`;
* each machine is a processor-sharing server — active jobs share
  ``min(cores, worker_threads)`` cores, degraded by the same
  context-switch efficiency the analytic model charges;
* a mini-batch is a wave of jobs through the DAG: operator *o* may start
  processing batch *b* only when every parent has finished batch *b*
  (Trident's per-batch barrier), with a network transfer delay on
  remote edges; each operator processes batches one at a time in FIFO
  order (Trident commits batch state in order, so an operator cannot
  run ahead into the next batch);
* at most ``batch_parallelism`` batches are in flight; a completed batch
  pays the per-batch coordination overhead before its pipeline slot is
  reused;
* acker work for a batch must finish before the batch commits.

The processor-sharing dynamics use per-machine virtual-time counters so
each event costs O(log jobs) instead of a full rescan.

The simulation is exact for the mechanics it models and is used to
validate the analytic engine (see ``tests/test_cross_validation.py``);
experiments use the analytic engine for speed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.obs import runtime as obs_runtime
from repro.storm.acker import AckerModel
from repro.storm.analytic import AnalyticPerformanceModel, CalibrationParams
from repro.storm.cluster import ClusterSpec
from repro.storm.config import TopologyConfig
from repro.storm.faults import FaultPlan, inject_faults
from repro.storm.grouping import load_fractions, remote_fraction
from repro.storm.metrics import MeasuredRun
from repro.storm.noise import NoiseModel, NoNoise, draw_observation
from repro.storm.scheduler import Assignment, EvenScheduler, SchedulingError
from repro.storm.topology import Topology, effective_cost


@dataclass
class _Job:
    """A unit of work: one task's share of one batch at one operator."""

    job_id: int
    batch_id: int
    operator: str
    machine_id: int
    work: float  # compute-unit milliseconds (single-core equivalent)
    target_virtual: float = 0.0  # machine virtual time at which it completes


class _Machine:
    """Processor-sharing server with a virtual-time progress counter.

    ``virtual`` advances at the per-job service rate; a job admitted at
    virtual time ``v`` with work ``w`` completes when ``virtual`` reaches
    ``v + w``.  Because all jobs on a machine share the same rate, a
    single counter orders completions correctly.
    """

    def __init__(
        self,
        machine_id: int,
        usable_cores: float,
        core_speed: float,
        efficiency: float,
    ) -> None:
        self.machine_id = machine_id
        self.usable_cores = usable_cores
        self.core_speed = core_speed
        self.efficiency = efficiency
        self.virtual = 0.0
        self.last_update = 0.0
        self.active: list[tuple[float, int, _Job]] = []  # heap by target_virtual
        self.n_active = 0

    def rate(self) -> float:
        """Service rate per job in compute units per ms."""
        if self.n_active == 0:
            return 0.0
        share = min(1.0, self.usable_cores / self.n_active)
        return self.core_speed * share * self.efficiency

    def advance_to(self, now: float) -> None:
        if now > self.last_update:
            self.virtual += self.rate() * (now - self.last_update)
            self.last_update = now

    def add_job(self, job: _Job, now: float) -> None:
        self.advance_to(now)
        job.target_virtual = self.virtual + job.work
        heapq.heappush(self.active, (job.target_virtual, job.job_id, job))
        self.n_active += 1

    def next_completion_time(self, now: float) -> float:
        if not self.active:
            return math.inf
        self.advance_to(now)
        target, _, _ = self.active[0]
        rate = self.rate()
        if rate <= 0:
            return math.inf
        return now + max(0.0, (target - self.virtual)) / rate

    def pop_completed(self, now: float) -> _Job | None:
        if not self.active:
            return None
        self.advance_to(now)
        target, _, job = self.active[0]
        if target <= self.virtual + 1e-9:
            heapq.heappop(self.active)
            self.n_active -= 1
            return job
        return None


@dataclass
class _BatchState:
    """Barrier bookkeeping for one in-flight batch."""

    batch_id: int
    pending_jobs: dict[str, int] = field(default_factory=dict)
    parents_done: dict[str, int] = field(default_factory=dict)
    operators_done: int = 0
    acker_done: bool = False
    started_at: float = 0.0


class DiscreteEventSimulator:
    """Simulate a measurement window of one configuration.

    Parameters
    ----------
    topology, cluster:
        The deployment under test.
    calibration:
        Shared execution-model constants (same object the analytic
        engine uses, so the two engines are directly comparable).
    noise:
        Observation noise applied to the measured throughput.
    max_sim_time_ms:
        Simulated measurement window (the paper used 2-minute windows).
    max_batches:
        Hard cap on simulated batches so very fast configurations do
        not produce unbounded event counts.
    warmup_batches:
        Completed batches excluded from the throughput measurement
        (pipeline fill transient).
    """

    def __init__(
        self,
        topology: Topology,
        cluster: ClusterSpec,
        calibration: CalibrationParams | None = None,
        noise: NoiseModel | None = None,
        seed: int | None = None,
        max_sim_time_ms: float = 120_000.0,
        max_batches: int = 200,
        warmup_batches: int = 3,
        faults: FaultPlan | None = None,
    ) -> None:
        if max_batches < 2:
            raise ValueError("max_batches must be >= 2")
        if warmup_batches < 0:
            raise ValueError("warmup_batches must be >= 0")
        self.topology = topology
        self.cluster = cluster
        self.calibration = calibration or CalibrationParams()
        self.noise = noise or NoNoise()
        self.faults = faults
        self._rng = np.random.default_rng(seed)
        self.max_sim_time_ms = max_sim_time_ms
        self.max_batches = max_batches
        self.warmup_batches = warmup_batches
        self._acker_model = AckerModel(ack_cost_units=self.calibration.ack_cost_units)
        self._scheduler = EvenScheduler()
        # Reuse the analytic model's feasibility checks and network math.
        self._analytic = AnalyticPerformanceModel(
            topology, cluster, self.calibration
        )

    # ------------------------------------------------------------------
    def evaluate(
        self, config: TopologyConfig, *, seed: int | None = None
    ) -> MeasuredRun:
        """Simulate one measurement window, with faults and noise.

        ``seed`` draws the noise (and any injected fault decision, see
        :mod:`repro.storm.faults`) from a per-evaluation stream instead
        of the engine's shared one (see
        :func:`repro.storm.noise.draw_observation`).
        """
        run = inject_faults(
            self.faults,
            lambda: self.evaluate_noise_free(config),
            config_key=repr(config),
            seed=seed,
            tracer=obs_runtime.current().tracer,
            engine="des",
        )
        if run.failed:
            return run
        observed = draw_observation(self.noise, run.throughput_tps, self._rng, seed)
        return run.with_throughput(observed)

    def __call__(self, config: TopologyConfig) -> float:
        return self.evaluate(config).throughput_tps

    # ------------------------------------------------------------------
    def evaluate_noise_free(self, config: TopologyConfig) -> MeasuredRun:
        """Event-by-event simulation of one configuration's window."""
        ctx = obs_runtime.current()
        with ctx.tracer.span("engine.des.evaluate") as span:
            run = self._evaluate_mechanics(config)
            if run.failed:
                span.set_attribute("failed", True)
                ctx.tracer.event(
                    "engine.failure", engine="des", reason=run.failure_reason
                )
            else:
                span.set_attribute(
                    "completed_batches", run.details.get("completed_batches", 0)
                )
            return run

    def _evaluate_mechanics(self, config: TopologyConfig) -> MeasuredRun:
        topo = self.topology
        cluster = self.cluster
        cal = self.calibration
        hints = config.normalized_hints(topo)

        try:
            assignment = self._scheduler.schedule(topo, config, cluster)
        except SchedulingError as exc:
            return MeasuredRun.failure(str(exc), total_tasks=sum(hints.values()))
        mem_fail = self._analytic._memory_exceeded(
            config,
            hints,
            assignment.total_executors(),
            float(config.batch_size),
            float(config.batch_parallelism),
        )
        if mem_fail is not None:
            return MeasuredRun.failure(mem_fail, total_tasks=sum(hints.values()))

        machines = self._build_machines(config, assignment)
        task_machines = {
            name: [t.slot.machine_id for t in assignment.tasks_of(name)]
            for name in topo
        }
        acker_machines = [t.slot.machine_id for t in assignment.acker_tasks]

        volumes = topo.volumes()
        B = float(config.batch_size)
        P = int(config.batch_parallelism)
        job_work: dict[str, np.ndarray] = {}
        for name in topo:
            op = topo.operator(name)
            n_tasks = hints[name]
            cost = effective_cost(op, n_tasks)
            total_work = B * volumes[name] * cost
            fractions = self._load_split(name, n_tasks)
            job_work[name] = total_work * fractions

        ack_demand = B * self._acker_model.demand_units_per_source_tuple(topo)
        edge_delay = self._edge_transfer_delays(B)

        # --- event loop state ----------------------------------------
        job_ids = itertools.count()
        #: (time, seq, kind, payload) — kinds: "machine" (check machine
        #: completions), "spawn" (operator jobs become ready), "admit"
        #: (new batch may enter the pipeline).
        events: list[tuple[float, int, str, object]] = []
        seq = itertools.count()
        batches: dict[int, _BatchState] = {}
        job_index: dict[int, tuple[int, str]] = {}  # job_id -> (batch, operator)
        next_batch = itertools.count()
        #: (batch_id, completion time, batch latency)
        completed: list[tuple[int, float, float]] = []
        n_operators = len(topo)

        #: Per-operator batch serialization: an operator processes one
        #: batch at a time in FIFO order (Trident state commits are
        #: ordered per operator).
        operator_busy: dict[str, bool] = {name: False for name in topo}
        operator_busy["__acker__"] = False
        operator_queue: dict[str, list[int]] = {name: [] for name in operator_busy}

        def push(time: float, kind: str, payload: object) -> None:
            heapq.heappush(events, (time, next(seq), kind, payload))

        def machine_event(machine: _Machine, now: float) -> None:
            t = machine.next_completion_time(now)
            if t < math.inf:
                push(t, "machine", machine.machine_id)

        def request_operator(batch_id: int, operator: str, now: float) -> None:
            if operator_busy[operator]:
                operator_queue[operator].append(batch_id)
                return
            batch = batches.get(batch_id)
            if batch is None:
                return
            operator_busy[operator] = True
            if operator == "__acker__":
                _spawn_acker_jobs(batch, now)
            else:
                _spawn_operator_jobs(batch, operator, now)

        def release_operator(operator: str, now: float) -> None:
            operator_busy[operator] = False
            while operator_queue[operator]:
                batch_id = operator_queue[operator].pop(0)
                if batch_id in batches:
                    request_operator(batch_id, operator, now)
                    break

        def _spawn_operator_jobs(
            batch: _BatchState, operator: str, now: float
        ) -> None:
            works = job_work[operator]
            placements = task_machines[operator]
            batch.pending_jobs[operator] = len(works)
            for task_idx, work in enumerate(works):
                machine = machines[placements[task_idx]]
                job = _Job(
                    job_id=next(job_ids),
                    batch_id=batch.batch_id,
                    operator=operator,
                    machine_id=machine.machine_id,
                    work=float(work),
                )
                job_index[job.job_id] = (batch.batch_id, operator)
                machine.add_job(job, now)
                machine_event(machine, now)

        def _spawn_acker_jobs(batch: _BatchState, now: float) -> None:
            per_task = ack_demand / len(acker_machines)
            batch.pending_jobs["__acker__"] = len(acker_machines)
            for machine_id in acker_machines:
                machine = machines[machine_id]
                job = _Job(
                    job_id=next(job_ids),
                    batch_id=batch.batch_id,
                    operator="__acker__",
                    machine_id=machine_id,
                    work=per_task,
                )
                job_index[job.job_id] = (batch.batch_id, "__acker__")
                machine.add_job(job, now)
                machine_event(machine, now)

        def admit_batch(now: float) -> None:
            batch_id = next(next_batch)
            if batch_id >= self.max_batches:
                return
            batch = _BatchState(batch_id=batch_id, started_at=now)
            batches[batch_id] = batch
            for source in topo.sources():
                request_operator(batch_id, source, now)
            if not acker_machines or ack_demand <= 0:
                batch.acker_done = True
            else:
                request_operator(batch_id, "__acker__", now)

        def operator_finished(batch: _BatchState, operator: str, now: float) -> None:
            release_operator(operator, now)
            if operator == "__acker__":
                batch.acker_done = True
            else:
                batch.operators_done += 1
                for child in topo.children(operator):
                    done = batch.parents_done.get(child, 0) + 1
                    batch.parents_done[child] = done
                    if done == len(topo.parents(child)):
                        delay = edge_delay.get((operator, child), 0.0)
                        push(now + delay, "spawn", (batch.batch_id, child))
            if batch.operators_done == n_operators and batch.acker_done:
                completed.append((batch.batch_id, now, now - batch.started_at))
                del batches[batch.batch_id]
                # Commit overhead holds the pipeline slot before reuse.
                push(now + cal.batch_overhead_ms, "admit", None)

        # Prime the pipeline with P batches.
        for _ in range(P):
            admit_batch(0.0)

        now = 0.0
        while events:
            now, _, kind, payload = heapq.heappop(events)
            if now > self.max_sim_time_ms:
                break
            if len(completed) >= self.max_batches:
                break
            if kind == "machine":
                machine = machines[int(payload)]  # type: ignore[arg-type]
                while True:
                    job = machine.pop_completed(now)
                    if job is None:
                        break
                    batch_id, operator = job_index.pop(job.job_id)
                    batch = batches.get(batch_id)
                    if batch is None:
                        continue
                    batch.pending_jobs[operator] -= 1
                    if batch.pending_jobs[operator] == 0:
                        # The batch-commit signal for this operator costs
                        # a fixed coordination delay before downstream
                        # operators (and the next batch here) may start.
                        push(
                            now + cal.stage_overhead_ms,
                            "opdone",
                            (batch_id, operator),
                        )
                machine_event(machine, now)
            elif kind == "opdone":
                batch_id, operator = payload  # type: ignore[misc]
                batch = batches.get(batch_id)
                if batch is not None:
                    operator_finished(batch, operator, now)
            elif kind == "spawn":
                batch_id, operator = payload  # type: ignore[misc]
                request_operator(batch_id, operator, now)
            elif kind == "admit":
                admit_batch(now)

        return self._measure(config, assignment, completed, now)

    # ------------------------------------------------------------------
    def _measure(
        self,
        config: TopologyConfig,
        assignment: Assignment,
        completed: list[tuple[int, float, float]],
        end_time: float,
    ) -> MeasuredRun:
        hints = config.normalized_hints(self.topology)
        total_tasks = sum(hints.values())
        warm = self.warmup_batches
        if len(completed) <= warm + 1:
            return MeasuredRun.failure(
                "no steady-state batches completed within the window",
                total_tasks=total_tasks,
            )
        times = sorted(t for _, t, _ in completed)
        t0 = times[warm]
        t1 = times[-1]
        n_measured = len(times) - warm - 1
        if t1 <= t0:
            return MeasuredRun.failure(
                "degenerate measurement window", total_tasks=total_tasks
            )
        worst_latency = max(lat for _, _, lat in completed)
        if worst_latency > self.calibration.batch_timeout_ms:
            return MeasuredRun.failure(
                f"batch latency {worst_latency:.0f} ms exceeds the "
                f"{self.calibration.batch_timeout_ms:.0f} ms message timeout",
                total_tasks=total_tasks,
            )
        batches_per_ms = n_measured / (t1 - t0)
        throughput = batches_per_ms * config.batch_size * 1000.0

        remote_tuples, remote_bytes, ingest_bytes = self._analytic._network_demand(
            float(config.batch_size), hints
        )
        network_bytes_per_ms = batches_per_ms * (remote_bytes + ingest_bytes)
        network_mb_per_worker_s = (
            network_bytes_per_ms * 1000.0 / 1e6 / self.cluster.total_workers
        )
        latencies = [lat for _, _, lat in completed]
        return MeasuredRun(
            throughput_tps=throughput,
            network_mb_per_worker_s=network_mb_per_worker_s,
            batch_latency_ms=float(np.median(latencies)) if latencies else 0.0,
            total_tasks=total_tasks,
            details={
                "completed_batches": len(completed),
                "sim_time_ms": end_time,
            },
        )

    # ------------------------------------------------------------------
    def _build_machines(
        self, config: TopologyConfig, assignment: Assignment
    ) -> dict[int, _Machine]:
        cal = self.calibration
        spec = self.cluster.machine
        usable_cores = min(
            spec.cores, config.worker_threads * self.cluster.workers_per_machine
        )
        threads = assignment.threads_per_machine()
        pool_extra = (
            cal.pool_oversubscription_weight
            * max(0, config.worker_threads - spec.cores)
            * self.cluster.workers_per_machine
        )
        executors = assignment.executors_per_machine()
        machines: dict[int, _Machine] = {}
        for machine_id in range(self.cluster.n_machines):
            total_threads = threads[machine_id] + pool_extra
            excess = max(0.0, (total_threads - spec.cores) / spec.cores)
            efficiency = 1.0 / (1.0 + cal.context_switch_kappa * excess**2)
            overhead_share = min(
                0.95,
                cal.per_task_cpu_overhead
                * executors[machine_id]
                / (spec.cores * spec.core_speed),
            )
            efficiency *= 1.0 - overhead_share
            machines[machine_id] = _Machine(
                machine_id=machine_id,
                usable_cores=usable_cores,
                core_speed=spec.core_speed,
                efficiency=efficiency,
            )
        return machines

    def _load_split(self, operator: str, n_tasks: int) -> np.ndarray:
        """Per-task share of the operator's batch work."""
        groupings = [
            self.topology.edge(p, operator).grouping
            for p in self.topology.parents(operator)
        ]
        if not groupings:
            return np.full(n_tasks, 1.0 / n_tasks)
        splits = [load_fractions(g, n_tasks) for g in groupings]
        combined = np.mean(splits, axis=0)
        total = combined.sum()
        # ALL groupings replicate work rather than splitting it.
        if total > 1.0 + 1e-9:
            return combined
        return combined / total

    def _edge_transfer_delays(self, batch_size: float) -> dict[tuple[str, str], float]:
        """Per-edge network transfer time for one batch's tuples (ms)."""
        topo = self.topology
        delays: dict[tuple[str, str], float] = {}
        wire = 1.0 + self.calibration.wire_overhead
        volumes = topo.volumes()
        nic = self.cluster.machine.nic_bytes_per_ms
        for edge in topo.edges:
            src_op = topo.operator(edge.src)
            emitted = batch_size * volumes[edge.src] * src_op.selectivity
            frac = remote_fraction(edge.grouping, self.cluster.n_machines)
            bytes_total = emitted * frac * src_op.tuple_bytes * wire
            # Transfers fan out across machines, so the effective pipe is
            # the aggregate NIC capacity of the cluster.
            capacity = nic * self.cluster.n_machines
            delays[(edge.src, edge.dst)] = bytes_total / capacity if capacity else 0.0
        return delays
