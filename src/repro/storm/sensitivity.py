"""One-at-a-time parameter sensitivity analysis.

The paper motivates black-box optimization by arguing that "overall
performance is a result of the combination of all of these parameters
working together" and that single-parameter effects are hard to predict
(§III-B).  This module makes that claim inspectable: perturb one
configuration parameter at a time around a base configuration, measure
the throughput response, and quantify two-parameter interactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.storm.analytic import AnalyticPerformanceModel
from repro.storm.cluster import ClusterSpec
from repro.storm.config import TopologyConfig
from repro.storm.topology import Topology

#: Parameters the sweep knows how to vary on a TopologyConfig.
SWEEPABLE = (
    "batch_size",
    "batch_parallelism",
    "worker_threads",
    "receiver_threads",
    "ackers",
    "uniform_hint",
)


def _apply(
    config: TopologyConfig, topology: Topology, name: str, value: int
) -> TopologyConfig:
    if name == "uniform_hint":
        return config.replace(parallelism_hints={n: value for n in topology})
    if name == "ackers":
        return config.replace(ackers=value)
    if name not in SWEEPABLE:
        raise ValueError(f"unknown sweep parameter {name!r}")
    return config.replace(**{name: value})


def _current(config: TopologyConfig, topology: Topology, name: str) -> int:
    if name not in SWEEPABLE:
        raise ValueError(f"unknown sweep parameter {name!r}")
    if name == "uniform_hint":
        hints = config.normalized_hints(topology)
        return round(sum(hints.values()) / len(hints))
    if name == "ackers":
        return config.effective_ackers()
    return int(getattr(config, name))


@dataclass
class SweepPoint:
    value: int
    throughput_tps: float
    failed: bool


@dataclass
class ParameterSweep:
    """Throughput response of one parameter around the base config."""

    parameter: str
    base_value: int
    points: list[SweepPoint] = field(default_factory=list)

    def best(self) -> SweepPoint:
        return max(self.points, key=lambda p: p.throughput_tps)

    def dynamic_range(self) -> float:
        """max/min throughput over the sweep (1.0 = parameter inert)."""
        values = [p.throughput_tps for p in self.points if not p.failed]
        if not values or min(values) <= 0:
            return float("inf")
        return max(values) / min(values)


class SensitivityAnalyzer:
    """Sweep parameters one (or two) at a time around a base config."""

    def __init__(
        self,
        topology: Topology,
        cluster: ClusterSpec,
        base_config: TopologyConfig,
        *,
        model: AnalyticPerformanceModel | None = None,
    ) -> None:
        self.topology = topology
        self.cluster = cluster
        self.base_config = base_config
        self.model = model or AnalyticPerformanceModel(topology, cluster)

    def _measure(self, config: TopologyConfig) -> tuple[float, bool]:
        run = self.model.evaluate_noise_free(config)
        return run.throughput_tps, run.failed

    def _measure_all(
        self, configs: Sequence[TopologyConfig]
    ) -> list[tuple[float, bool]]:
        """Measure many configs, vectorized when the model supports it.

        The batch analytic engine is bit-identical to the scalar path,
        so sweeps produce exactly the same points either way — just in
        one NumPy pass instead of len(configs) Python walks.
        """
        batch_evaluate = getattr(self.model, "evaluate_noise_free_batch", None)
        if callable(batch_evaluate) and len(configs) > 1:
            return [
                (run.throughput_tps, run.failed) for run in batch_evaluate(configs)
            ]
        return [self._measure(config) for config in configs]

    def sweep(self, parameter: str, values: Sequence[int]) -> ParameterSweep:
        """Vary one parameter, all others fixed at the base config."""
        result = ParameterSweep(
            parameter=parameter,
            base_value=_current(self.base_config, self.topology, parameter),
        )
        configs = [
            _apply(self.base_config, self.topology, parameter, int(value))
            for value in values
        ]
        for value, (tput, failed) in zip(values, self._measure_all(configs)):
            result.points.append(
                SweepPoint(value=int(value), throughput_tps=tput, failed=failed)
            )
        return result

    def sweep_all(
        self, values_by_parameter: dict[str, Sequence[int]]
    ) -> list[ParameterSweep]:
        return [
            self.sweep(name, values) for name, values in values_by_parameter.items()
        ]

    def interaction(
        self,
        parameter_a: str,
        value_a: int,
        parameter_b: str,
        value_b: int,
    ) -> float:
        """Interaction strength of two parameter changes.

        Returns ``joint / (effect_a * effect_b)`` where each effect is
        the throughput ratio of applying one change alone.  1.0 means
        the parameters compose independently; deviations in either
        direction are the "hard to predict" interplay the paper calls
        out (e.g. batch size × batch parallelism on Sundog).
        """
        base, base_failed = self._measure(self.base_config)
        if base_failed or base <= 0:
            raise ValueError("base configuration must be feasible")

        def ratio(*changes: tuple[str, int]) -> float:
            config = self.base_config
            for name, value in changes:
                config = _apply(config, self.topology, name, value)
            tput, _ = self._measure(config)
            return tput / base

        effect_a = ratio((parameter_a, value_a))
        effect_b = ratio((parameter_b, value_b))
        joint = ratio((parameter_a, value_a), (parameter_b, value_b))
        independent = effect_a * effect_b
        if independent <= 0:
            return float("inf")
        return joint / independent

    def tornado(
        self, values_by_parameter: dict[str, Sequence[int]]
    ) -> list[tuple[str, float]]:
        """Parameters ranked by dynamic range (tornado-chart data)."""
        sweeps = self.sweep_all(values_by_parameter)
        ranked = [(s.parameter, s.dynamic_range()) for s in sweeps]
        ranked.sort(key=lambda item: item[1], reverse=True)
        return ranked


def default_sweep_values(cluster: ClusterSpec) -> dict[str, list[int]]:
    """A reasonable default grid per Table I parameter."""
    return {
        "uniform_hint": [1, 2, 4, 8, 16, 32],
        "batch_size": [100, 1_000, 10_000, 50_000, 200_000],
        "batch_parallelism": [1, 2, 4, 8, 16, 32],
        "worker_threads": [1, 2, 4, 8, 16],
        "receiver_threads": [1, 2, 4, 8],
        "ackers": [1, cluster.total_workers // 4 or 1, cluster.total_workers],
    }
