"""Vectorized batch evaluation of the analytic performance model.

:class:`AnalyticBatchModel` evaluates N configurations of one topology
in a single NumPy pass: all topology-dependent structures (operator
order, layer map, grouping-skew tables, network demand coefficients)
are precomputed once in ``__init__``, and ``evaluate`` turns a list of
:class:`~repro.storm.config.TopologyConfig` into an ``(N, D)`` hint
matrix plus per-config scalar vectors, then computes the per-operator
effective-cost matrix, efficiency/parallelism vectors, the six capacity
caps, and the bottleneck argmax for every row at once.

Bit-compatibility contract
--------------------------
The result is **bit-identical** to calling
:meth:`repro.storm.analytic.AnalyticPerformanceModel.evaluate_noise_free`
per config (property-tested in ``tests/test_analytic_batch.py``).  That
only holds because every arithmetic expression here mirrors the scalar
engine's *operation order* exactly — IEEE-754 float arithmetic is
neither associative nor distributive, so the vectorization axis is the
config axis (N) while operators, layers, edges and sources are still
accumulated sequentially in the scalar engine's iteration order.  When
editing either engine, change both in lockstep; the equivalence test
will catch any drift.

Two deliberate non-vectorizations keep this exact:

* ``effective_parallelism(g, n)`` computes ``1.0 / fractions.max()``,
  and ``1/(1/n) != n`` in floats — so skew factors come from small
  per-grouping lookup tables built by calling the scalar function once
  per distinct task count, then gathered with ``np.take``.
* hint normalization uses ``np.rint`` (ties-to-even), the same rounding
  as Python's ``round`` in the scalar path.
"""

from __future__ import annotations

import math
import operator as operator_mod
import threading
import time
from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from repro.obs import runtime as obs_runtime
from repro.storm.acker import AckerModel
from repro.storm.analytic import CalibrationParams, CapacityBreakdown
from repro.storm.cluster import ClusterSpec
from repro.storm.config import TopologyConfig
from repro.storm.grouping import Grouping, effective_parallelism, remote_fraction
from repro.storm.metrics import MeasuredRun
from repro.storm.schedule import WorkloadPoint, WorkloadSchedule
from repro.storm.topology import Topology

#: One C-level attrgetter call per config instead of four attribute
#: probes from Python (see :meth:`AnalyticBatchModel._extract`).
_CONFIG_SCALARS = operator_mod.attrgetter(
    "batch_size", "batch_parallelism", "worker_threads", "receiver_threads"
)

#: Cap names in :class:`CapacityBreakdown` insertion order — ``argmin``
#: over rows stacked in this order picks the same cap as the scalar
#: ``min(caps, key=...)`` (both take the first minimum on ties).
CAP_NAMES = (
    "pipeline_fill",
    "bottleneck_stage",
    "cpu_saturation",
    "acker",
    "receiver",
    "nic",
)


class BatchEvaluation:
    """Result of one vectorized pass over N configurations.

    Exposes the headline vectors directly (``throughput_tps``,
    ``failed``, ``limiting_cap``, ``bottleneck`` ...) for consumers that
    only need scores — candidate screening, sensitivity sweeps — and
    materializes full per-row :class:`MeasuredRun` objects on demand via
    :meth:`run` / :meth:`runs` for consumers that need the scalar
    engine's exact output (details dict included).
    """

    def __init__(
        self,
        *,
        order: tuple[str, ...],
        throughput_tps: np.ndarray,
        failed_capacity: np.ndarray,
        failed_latency: np.ndarray,
        failed_memory: np.ndarray,
        latency_ms: np.ndarray,
        network_mb_per_worker_s: np.ndarray,
        total_tasks: np.ndarray,
        total_executors: np.ndarray,
        total_work_ms: np.ndarray,
        eta: np.ndarray,
        caps: np.ndarray,
        limiting_idx: np.ndarray,
        bottleneck_idx: np.ndarray,
        stage_times_ms: np.ndarray,
        task_mb: np.ndarray,
        data_mb: np.ndarray,
        memory_budget_mb: float,
        max_total_executors: int,
        batch_timeout_ms: float,
    ) -> None:
        self._order = order
        self.throughput_tps = throughput_tps
        self.failed_capacity = failed_capacity
        self.failed_latency = failed_latency
        self.failed_memory = failed_memory
        self.failed = failed_capacity | failed_latency | failed_memory
        self.latency_ms = latency_ms
        self.network_mb_per_worker_s = network_mb_per_worker_s
        self.total_tasks = total_tasks
        self.total_executors = total_executors
        self.total_work_ms = total_work_ms
        self.eta = eta
        self.caps = caps
        self.limiting_idx = limiting_idx
        self.bottleneck_idx = bottleneck_idx
        self.stage_times_ms = stage_times_ms
        self._task_mb = task_mb
        self._data_mb = data_mb
        self._memory_budget_mb = memory_budget_mb
        self._max_total_executors = max_total_executors
        self._batch_timeout_ms = batch_timeout_ms

    def __len__(self) -> int:
        return int(self.throughput_tps.shape[0])

    @property
    def limiting_cap(self) -> list[str]:
        """Binding cap name per row ('' for failed rows)."""
        return [
            "" if self.failed[i] else CAP_NAMES[int(self.limiting_idx[i])]
            for i in range(len(self))
        ]

    @property
    def bottleneck(self) -> list[str]:
        """Slowest-stage operator name per row ('' for failed rows)."""
        return [
            "" if self.failed[i] else self._order[int(self.bottleneck_idx[i])]
            for i in range(len(self))
        ]

    def failure_reason(self, i: int) -> str:
        """The scalar engine's failure message for row ``i`` ('' if ok)."""
        if self.failed_capacity[i]:
            return (
                f"{int(self.total_executors[i])} executors exceed cluster "
                f"capacity {self._max_total_executors}"
            )
        if self.failed_latency[i]:
            return (
                f"batch latency {float(self.latency_ms[i]):.0f} ms exceeds "
                f"the {self._batch_timeout_ms:.0f} ms message timeout "
                "(batches replay forever)"
            )
        if self.failed_memory[i]:
            return (
                f"memory exhausted: {float(self._task_mb[i]):.0f} MB task "
                f"overhead + {float(self._data_mb[i]):.0f} MB in-flight "
                f"data > {self._memory_budget_mb:.0f} MB budget"
            )
        return ""

    def run(self, i: int) -> MeasuredRun:
        """Materialize row ``i`` as the scalar engine's ``MeasuredRun``."""
        total_tasks = int(self.total_tasks[i])
        if self.failed[i]:
            return MeasuredRun.failure(self.failure_reason(i), total_tasks=total_tasks)
        caps = CapacityBreakdown(
            pipeline_fill=float(self.caps[0, i]),
            bottleneck_stage=float(self.caps[1, i]),
            cpu_saturation=float(self.caps[2, i]),
            acker=float(self.caps[3, i]),
            receiver=float(self.caps[4, i]),
            nic=float(self.caps[5, i]),
        )
        stage_times = {
            name: float(self.stage_times_ms[d, i])
            for d, name in enumerate(self._order)
        }
        return MeasuredRun(
            throughput_tps=float(self.throughput_tps[i]),
            network_mb_per_worker_s=float(self.network_mb_per_worker_s[i]),
            batch_latency_ms=float(self.latency_ms[i]),
            total_tasks=total_tasks,
            details={
                "caps": caps,
                "limiting_cap": CAP_NAMES[int(self.limiting_idx[i])],
                "eta": float(self.eta[i]),
                "stage_times_ms": stage_times,
                "total_work_ms": float(self.total_work_ms[i]),
                "total_executors": int(self.total_executors[i]),
            },
        )

    def runs(self) -> list[MeasuredRun]:
        return [self.run(i) for i in range(len(self))]


class AnalyticBatchModel:
    """Evaluate an ``(N, D)`` configuration matrix in one NumPy pass."""

    def __init__(
        self,
        topology: Topology,
        cluster: ClusterSpec,
        calibration: CalibrationParams | None = None,
        schedule: WorkloadSchedule | None = None,
    ) -> None:
        self.topology = topology
        self.cluster = cluster
        self.calibration = calibration or CalibrationParams()
        self.schedule = schedule
        cal = self.calibration

        # --- topology-dependent structures, computed once -------------
        self._order: tuple[str, ...] = tuple(topology.topological_order())
        self._index = {name: d for d, name in enumerate(self._order)}
        volumes = topology.volumes()
        self._volumes = [float(volumes[name]) for name in self._order]
        ops = [topology.operator(name) for name in self._order]
        self._costs = [float(op.cost) for op in ops]
        self._contentious = [bool(op.contentious) for op in ops]
        self._default_hints = [int(op.default_hint) for op in ops]
        # Layer map: operators grouped by layer, layers visited in the
        # scalar engine's first-occurrence order.  Because a layer-k
        # operator always has a layer-(k-1) predecessor earlier in the
        # topological order, first occurrence is simply ascending layer.
        layer_of = {name: topology.layer_of(name) for name in self._order}
        n_layers = max(layer_of.values()) + 1 if self._order else 0
        self._layer_members: list[list[int]] = [[] for _ in range(n_layers)]
        for d, name in enumerate(self._order):
            self._layer_members[layer_of[name]].append(d)
        # Incoming groupings per operator (skew-bounded parallelism).
        self._op_groupings: list[list[Grouping]] = [
            [topology.edge(p, name).grouping for p in topology.parents(name)]
            for name in self._order
        ]
        # Column views for the matrix pass: per-operator constant rows,
        # the columns with no incoming grouping, and — per distinct
        # grouping — the columns it bounds (one table gather each).
        self._cost_row = np.asarray(self._costs, dtype=np.float64)
        self._volume_row = np.asarray(self._volumes, dtype=np.float64)
        self._contentious_row = np.asarray(self._contentious, dtype=bool)
        self._no_grouping_cols = np.asarray(
            [j for j, gs in enumerate(self._op_groupings) if not gs],
            dtype=np.intp,
        )
        # Complement: operators fed by at least one grouped stream —
        # the columns a workload point's skew shaves.
        self._grouped_cols = np.asarray(
            [j for j, gs in enumerate(self._op_groupings) if gs],
            dtype=np.intp,
        )
        grouped: dict[Grouping, list[int]] = {}
        for j, gs in enumerate(self._op_groupings):
            for grouping in dict.fromkeys(gs):
                grouped.setdefault(grouping, []).append(j)
        self._grouping_cols = [
            (grouping, np.asarray(cols, dtype=np.intp))
            for grouping, cols in grouped.items()
        ]
        # Network demand coefficients as (E, 1) columns, unreduced to
        # preserve the scalar engine's multiply order (see module
        # docstring); broadcasting against (1, N) batches keeps the
        # per-edge expression shape.
        edge_terms = [
            (
                float(volumes[edge.src]),
                float(topology.operator(edge.src).selectivity),
                float(remote_fraction(edge.grouping, cluster.n_machines)),
                float(topology.operator(edge.src).tuple_bytes),
            )
            for edge in topology.edges
        ]
        edge_matrix = np.asarray(edge_terms, dtype=np.float64).reshape(-1, 4)
        self._edge_vol = edge_matrix[:, 0:1]
        self._edge_sel = edge_matrix[:, 1:2]
        self._edge_frac = edge_matrix[:, 2:3]
        self._edge_bytes = edge_matrix[:, 3:4]
        ingest_terms = [
            (float(volumes[s]), float(topology.operator(s).tuple_bytes))
            for s in topology.sources()
        ]
        ingest_matrix = np.asarray(ingest_terms, dtype=np.float64).reshape(-1, 2)
        self._ingest_vol = ingest_matrix[:, 0:1]
        self._ingest_bytes = ingest_matrix[:, 1:2]
        self._inflight_bytes_per_batch_unit = sum(
            volumes[name] * topology.operator(name).tuple_bytes
            for name in self._order
        )
        self._ack_demand_units = AckerModel(
            ack_cost_units=cal.ack_cost_units
        ).demand_units_per_source_tuple(topology)
        # Grouping-skew lookup tables, grown lazily: table[g][n] is the
        # scalar effective_parallelism(g, n); index 0 is unused.
        self._par_tables: dict[Grouping, np.ndarray] = {}
        #: How many times a lookup table was (re)built — regression
        #: telemetry for the screener-reuse fix (tables grow
        #: geometrically, so this stays O(log n_max), not O(rounds)).
        self.table_constructions = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(
        self,
        configs: Sequence[TopologyConfig],
        *,
        workload_time_s: float = 0.0,
    ) -> BatchEvaluation:
        """Vectorized noise-free mechanics for all ``configs`` at once.

        ``workload_time_s`` samples the model's
        :class:`~repro.storm.schedule.WorkloadSchedule` (if any) at that
        offset; all N rows see the same workload point, mirroring the
        scalar engine evaluated N times at the same instant.
        """
        ctx = obs_runtime.current()
        started = time.perf_counter()
        point = (
            self.schedule.at(workload_time_s) if self.schedule is not None else None
        )
        with ctx.tracer.span(
            "engine.analytic.evaluate_batch", n_configs=len(configs)
        ) as span:
            result = self._mechanics(list(configs), point)
            span.set_attribute("n_failed", int(result.failed.sum()))
        seconds = time.perf_counter() - started
        ctx.metrics.histogram("engine.batch_size").record(float(len(configs)))
        ctx.metrics.histogram("engine.batch_seconds").record(seconds)
        return result

    def throughputs(
        self,
        configs: Sequence[TopologyConfig],
        *,
        workload_time_s: float = 0.0,
    ) -> np.ndarray:
        """Shorthand: the throughput vector (0.0 for infeasible rows)."""
        return self.evaluate(
            configs, workload_time_s=workload_time_s
        ).throughput_tps

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _table(self, grouping: Grouping, n_max: int) -> np.ndarray:
        table = self._par_tables.get(grouping)
        if table is None or table.shape[0] <= n_max:
            # Grow geometrically: a hint ceiling that creeps upward one
            # step per ask round must not rebuild the table every call.
            # Entries are pure functions of n, so regrowing is exact.
            size = n_max
            if table is not None:
                size = max(size, 2 * (table.shape[0] - 1))
            values = [math.nan]
            values.extend(
                effective_parallelism(grouping, n) for n in range(1, size + 1)
            )
            table = np.asarray(values, dtype=np.float64)
            self._par_tables[grouping] = table
            self.table_constructions += 1
        return table

    def _extract(
        self, configs: list[TopologyConfig]
    ) -> tuple[np.ndarray, ...]:
        """Config list -> raw hint matrix + per-config scalar vectors."""
        n = len(configs)
        d = len(self._order)
        # Fast path: configs usually hint every operator, so one
        # C-level itemgetter call per row beats d dict.get calls.
        hints = None
        if d > 1:
            get_hints = operator_mod.itemgetter(*self._order)
            try:
                hints = np.array(
                    [get_hints(c.parallelism_hints) for c in configs],
                    dtype=np.int64,
                ).reshape(n, d)
            except (KeyError, TypeError, ValueError):
                hints = None
        if hints is None:
            hints = np.empty((n, d), dtype=np.int64)
            for i, config in enumerate(configs):
                ph = config.parallelism_hints
                row = hints[i]
                for j, name in enumerate(self._order):
                    hint = ph.get(name)
                    row[j] = self._default_hints[j] if hint is None else hint
        scalars = np.array(
            [_CONFIG_SCALARS(c) for c in configs], dtype=np.int64
        ).reshape(n, 4)
        batch_size = scalars[:, 0]
        batch_parallelism = scalars[:, 1]
        worker_threads = scalars[:, 2]
        receiver_threads = scalars[:, 3]
        raw_caps = [c.max_tasks for c in configs]
        has_cap = np.array([cap is not None for cap in raw_caps], dtype=bool)
        max_tasks = np.array(
            [0 if cap is None else cap for cap in raw_caps], dtype=np.int64
        )
        n_ackers = np.fromiter(
            (c.effective_ackers() for c in configs), dtype=np.int64, count=n
        )
        return (
            hints,
            max_tasks,
            has_cap,
            batch_size,
            batch_parallelism,
            worker_threads,
            receiver_threads,
            n_ackers,
        )

    def _normalize_hints(
        self, hints: np.ndarray, max_tasks: np.ndarray, has_cap: np.ndarray
    ) -> np.ndarray:
        """Vectorized ``TopologyConfig.normalized_hints``.

        ``max(1, round(hint * scale))`` with Python's banker's rounding
        == ``np.maximum(1, np.rint(hint * scale))``.
        """
        totals = hints.sum(axis=1)
        need = has_cap & (totals > max_tasks)
        if not bool(need.any()):
            return hints
        scale = max_tasks[need] / totals[need]
        scaled = np.maximum(
            1, np.rint(hints[need] * scale[:, None])
        ).astype(np.int64)
        out = hints.copy()
        out[need] = scaled
        return out

    def _mechanics(
        self,
        configs: list[TopologyConfig],
        point: WorkloadPoint | None = None,
    ) -> BatchEvaluation:
        cal = self.calibration
        cluster = self.cluster
        machine = cluster.machine
        n = len(configs)
        d = len(self._order)
        if n == 0:
            empty = np.empty(0)
            empty_bool = np.empty(0, dtype=bool)
            empty_int = np.empty(0, dtype=np.int64)
            return BatchEvaluation(
                order=self._order,
                throughput_tps=empty,
                failed_capacity=empty_bool,
                failed_latency=empty_bool,
                failed_memory=empty_bool,
                latency_ms=empty,
                network_mb_per_worker_s=empty,
                total_tasks=empty_int,
                total_executors=empty_int,
                total_work_ms=empty,
                eta=empty,
                caps=np.empty((6, 0)),
                limiting_idx=empty_int,
                bottleneck_idx=empty_int,
                stage_times_ms=np.empty((d, 0)),
                task_mb=empty,
                data_mb=empty,
                memory_budget_mb=machine.memory_mb * cal.usable_memory_fraction,
                max_total_executors=cluster.max_total_executors,
                batch_timeout_ms=cal.batch_timeout_ms,
            )

        (
            raw_hints,
            max_tasks,
            has_cap,
            batch_size,
            batch_parallelism,
            worker_threads,
            receiver_threads,
            n_ackers,
        ) = self._extract(configs)
        hints = self._normalize_hints(raw_hints, max_tasks, has_cap)

        total_tasks = hints.sum(axis=1)
        total_executors = total_tasks + n_ackers
        failed_capacity = total_executors > cluster.max_total_executors

        n_machines = cluster.n_machines
        cores = machine.cores
        core_speed = machine.core_speed

        # _efficiency, vectorized with identical expression shape.
        per_worker = (
            receiver_threads
            + 2.0
            + cal.pool_oversubscription_weight
            * np.maximum(0, worker_threads - cores)
        )
        threads_per_machine = (
            total_executors / n_machines
            + per_worker * cluster.workers_per_machine
        )
        excess = np.maximum(0.0, (threads_per_machine - cores) / cores)
        cs_efficiency = 1.0 / (1.0 + cal.context_switch_kappa * excess**2)
        overhead_share = np.minimum(
            0.95,
            cal.per_task_cpu_overhead
            * total_executors
            / cluster.total_compute_rate,
        )
        eta = cs_efficiency * (1.0 - overhead_share)

        usable_cores = np.minimum(
            cores, worker_threads * cluster.workers_per_machine
        )
        cluster_rate = usable_cores * n_machines * core_speed * eta

        B = batch_size.astype(np.float64)
        P = batch_parallelism.astype(np.float64)

        # Per-operator stage times as one (N, D) matrix pass.  Every
        # elementwise expression keeps the scalar engine's shape, and
        # the operator-order work sum uses np.cumsum — a strict
        # left-to-right scan, bit-identical to the scalar accumulation
        # (np.sum's pairwise reduction is NOT).
        n_max = int(hints.max()) if hints.size else 1
        machine_cores = usable_cores * n_machines  # int64 vector
        machine_cores_f = machine_cores.astype(np.float64)
        stage_overhead = cal.stage_overhead_ms
        hints_f = hints.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            cost_matrix = np.where(
                self._contentious_row, self._cost_row * hints_f, self._cost_row
            )
            if point is not None:
                # Scalar path: cost = effective_cost(...) * point.load.
                cost_matrix = cost_matrix * point.load
            work = (B[:, None] * self._volume_row) * cost_matrix
            total_work = np.cumsum(work, axis=1)[:, -1]

            # Skew-bounded parallelism: one table gather per distinct
            # grouping; min over a column's incoming groupings (and the
            # machine-core ceiling) is order-independent, so the
            # gather-then-minimum order matches the scalar loop exactly.
            parallelism = np.full((n, d), np.inf)
            no_group = self._no_grouping_cols
            if no_group.size:
                parallelism[:, no_group] = hints_f[:, no_group]
            for grouping, cols in self._grouping_cols:
                bound = self._table(grouping, n_max).take(hints[:, cols])
                np.minimum(parallelism[:, cols], bound, out=bound)
                parallelism[:, cols] = bound
            if (
                point is not None
                and point.skew != 0.0
                and self._grouped_cols.size
            ):
                # Scalar path: parallelism *= (1.0 - point.skew) for
                # operators with incoming groupings, before the
                # machine-core clamp.
                skew_factor = 1.0 - point.skew
                parallelism[:, self._grouped_cols] = (
                    parallelism[:, self._grouped_cols] * skew_factor
                )
            # min(parallelism, usable_cores * n_machines): Python's
            # min may return the int, but the downstream float
            # arithmetic is value-identical either way.
            np.minimum(parallelism, machine_cores_f[:, None], out=parallelism)
            rate = np.maximum(parallelism, 1e-12) * core_speed * eta[:, None]
            compute_time = np.where(work > 0, work / rate, 0.0)
            stage_times = np.ascontiguousarray((compute_time + stage_overhead).T)

            ack_work = B * self._ack_demand_units
            total_work = total_work + ack_work

            # Layer times and batch latency: max within a layer, summed
            # across layers in ascending-layer (= first-occurrence) order.
            sum_layer_times = np.zeros(n, dtype=np.float64)
            for members in self._layer_members:
                if len(members) == 1:
                    layer_time = stage_times[members[0]]
                else:
                    layer_time = np.maximum.reduce(stage_times[members])
                sum_layer_times = sum_layer_times + layer_time
            t_max = np.maximum.reduce(stage_times, axis=0)
            latency = sum_layer_times + cal.batch_overhead_ms
            failed_latency = ~failed_capacity & (latency > cal.batch_timeout_ms)

            # The six caps (source tuples/s), batches_to_tps inlined as
            # ((rate * B) * 1000.0) to match the scalar helper.
            inf = np.inf
            cap_pipeline = np.where(latency > 0, P / latency * B * 1000.0, inf)
            cap_stage = np.where(t_max > 0, 1.0 / t_max * B * 1000.0, inf)
            cap_cpu = np.where(
                total_work > 0, cluster_rate / total_work * B * 1000.0, inf
            )
            if self._ack_demand_units <= 0:
                cap_acker = np.full(n, inf)
            else:
                # n_ackers * (core_speed * eta): the scalar path passes
                # core_speed * eta as one argument, so it multiplies first.
                acker_speed = core_speed * eta
                cap_acker = np.where(
                    n_ackers == 0,
                    inf,
                    n_ackers * acker_speed * 1000.0 / self._ack_demand_units,
                )

            # Per-edge/per-source terms as (E, N) matrices; the edge-order
            # sums are again strict sequential scans via np.cumsum.
            wire = 1.0 + cal.wire_overhead
            if self._edge_vol.size:
                emitted = (B[None, :] * self._edge_vol) * self._edge_sel
                remote = emitted * self._edge_frac
                remote_tuples = np.cumsum(remote, axis=0)[-1]
                remote_bytes = np.cumsum(
                    (remote * self._edge_bytes) * wire, axis=0
                )[-1]
            else:
                remote_tuples = np.zeros(n, dtype=np.float64)
                remote_bytes = np.zeros(n, dtype=np.float64)
            if self._ingest_vol.size:
                ingest_bytes = np.cumsum(
                    ((B[None, :] * self._ingest_vol) * self._ingest_bytes) * wire,
                    axis=0,
                )[-1]
            else:
                ingest_bytes = np.zeros(n, dtype=np.float64)
            if point is not None:
                # Load scales tuple *weight*, not tuple count: byte
                # totals grow, remote_tuples (receiver cap) does not.
                remote_bytes = remote_bytes * point.load
                ingest_bytes = ingest_bytes * point.load

            rec_per_worker = remote_tuples / cluster.total_workers
            rec_capacity = receiver_threads * cal.receiver_tuples_per_ms
            cap_receiver = np.where(
                remote_tuples > 0,
                rec_capacity / rec_per_worker * B * 1000.0,
                inf,
            )
            bytes_per_batch = remote_bytes + ingest_bytes
            nic_per_machine = bytes_per_batch / n_machines
            cap_nic = np.where(
                bytes_per_batch > 0,
                machine.nic_bytes_per_ms / nic_per_machine * B * 1000.0,
                inf,
            )

            caps = np.stack(
                [cap_pipeline, cap_stage, cap_cpu, cap_acker, cap_receiver, cap_nic]
            )
            limiting_idx = np.argmin(caps, axis=0)
            throughput = caps[limiting_idx, np.arange(n)]

            # Memory feasibility.
            executors_per_machine = total_executors / n_machines
            task_mb = executors_per_machine * cal.per_task_memory_mb
            inflight_bytes = B * P * self._inflight_bytes_per_batch_unit
            if point is not None:
                inflight_bytes = inflight_bytes * point.load
            data_mb = inflight_bytes / n_machines / 1e6
            budget = machine.memory_mb * cal.usable_memory_fraction
            failed_memory = (
                ~failed_capacity
                & ~failed_latency
                & (task_mb + data_mb > budget)
            )

            failed = failed_capacity | failed_latency | failed_memory
            throughput = np.where(failed, 0.0, throughput)

            batches_per_ms = np.where(B > 0, throughput / (B * 1000.0), 0.0)
            network_bytes_per_ms = batches_per_ms * (remote_bytes + ingest_bytes)
            network_mb = (
                network_bytes_per_ms * 1000.0 / 1e6 / cluster.total_workers
            )
            network_mb = np.where(failed, 0.0, network_mb)
            latency_out = np.where(failed, 0.0, latency)

        bottleneck_idx = np.argmax(stage_times, axis=0)

        return BatchEvaluation(
            order=self._order,
            throughput_tps=throughput,
            failed_capacity=failed_capacity,
            failed_latency=failed_latency,
            failed_memory=failed_memory,
            latency_ms=np.where(failed_latency, latency, latency_out),
            network_mb_per_worker_s=network_mb,
            total_tasks=total_tasks,
            total_executors=total_executors,
            total_work_ms=total_work,
            eta=eta,
            caps=caps,
            limiting_idx=limiting_idx,
            bottleneck_idx=bottleneck_idx,
            stage_times_ms=stage_times,
            task_mb=task_mb,
            data_mb=data_mb,
            memory_budget_mb=budget,
            max_total_executors=cluster.max_total_executors,
            batch_timeout_ms=cal.batch_timeout_ms,
        )


#: Screener model reuse: optimizer factories build a fresh screener per
#: pass, but the (topology, cluster, calibration) triple — and hence the
#: batch model with its grouping tables — is identical across passes and
#: ask rounds.  A small LRU keyed by object identity (entries hold
#: strong references, so the ids stay valid while cached) hands every
#: screener for the same deployment the same shared model.
_SCREENER_CACHE_SIZE = 32
_screener_lock = threading.Lock()
_screener_models: OrderedDict[
    tuple[int, int],
    tuple[Topology, ClusterSpec, CalibrationParams | None, AnalyticBatchModel],
] = OrderedDict()


def _screener_model(
    topology: Topology,
    cluster: ClusterSpec,
    calibration: CalibrationParams | None,
) -> AnalyticBatchModel:
    key = (id(topology), id(cluster))
    with _screener_lock:
        entry = _screener_models.get(key)
        if entry is not None:
            cached_topo, cached_cluster, cached_cal, model = entry
            if (
                cached_topo is topology
                and cached_cluster is cluster
                and cached_cal == calibration
            ):
                _screener_models.move_to_end(key)
                return model
        model = AnalyticBatchModel(topology, cluster, calibration)
        _screener_models[key] = (topology, cluster, calibration, model)
        _screener_models.move_to_end(key)
        while len(_screener_models) > _SCREENER_CACHE_SIZE:
            _screener_models.popitem(last=False)
        return model


def make_analytic_screener(
    codec: object,
    topology: Topology,
    cluster: ClusterSpec,
    calibration: CalibrationParams | None = None,
) -> Callable[[np.ndarray], np.ndarray]:
    """Feasibility screener for BO candidate pools.

    Returns a callable mapping an ``(M, dim)`` unit-cube candidate
    matrix to a boolean keep-mask: candidates whose decoded
    configuration the batch analytic model marks infeasible (executor
    capacity, batch timeout, memory) are screened out of the
    acquisition ranking before the expensive gradient refinement.  Pass
    it as ``BayesianOptimizer(..., screener=...)``.

    ``codec`` is any :class:`repro.storm.spaces.ConfigCodec`; its
    ``space`` decodes rows to parameter dicts and its ``decode`` maps
    those to :class:`TopologyConfig`.

    Screeners for the same (topology, cluster, calibration) share one
    :class:`AnalyticBatchModel`, so repeat passes reuse the
    already-built grouping tables instead of rebuilding them per ask
    round.
    """
    batch_model = _screener_model(topology, cluster, calibration)
    space = codec.space  # type: ignore[attr-defined]

    def screen(candidates: np.ndarray) -> np.ndarray:
        rows = np.atleast_2d(np.asarray(candidates, dtype=float))
        configs = [codec.decode(space.decode(row)) for row in rows]  # type: ignore[attr-defined]
        return ~batch_model.evaluate(configs).failed

    return screen
