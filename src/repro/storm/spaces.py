"""Codecs: map optimizer parameter dicts to :class:`TopologyConfig`.

Optimizers (``repro.core``) speak flat dictionaries over a
:class:`~repro.core.parameters.ParameterSpace`; the execution engines
speak :class:`~repro.storm.config.TopologyConfig`.  A codec owns both
sides: it declares the searchable space for one of the paper's
experiment setups and decodes proposals into deployable configurations.

The provided codecs correspond to the paper's parameter sets:

* :class:`ParallelismCodec` — one integer hint per operator plus the
  max-tasks cap (the bo runs of §V-A);
* :class:`UniformHintCodec` — a single uniform hint (pla);
* :class:`InformedMultiplierCodec` — one float multiplier over the base
  parallelism weights (ipla / ibo);
* :class:`SundogParameterCodec` — Figure 8's parameter sets ``h``,
  ``h+bs+bp`` and ``bs+bp+cc`` via its ``include`` flags.
"""

from __future__ import annotations

import abc
import math
from typing import Iterable, Mapping

from repro.core.informed import InformedParallelismCodec
from repro.core.parameters import FloatParameter, IntParameter, Parameter, ParameterSpace
from repro.storm.cluster import ClusterSpec
from repro.storm.config import TopologyConfig
from repro.storm.topology import Topology

#: Prefix used for per-operator hint parameters in flat dicts.
HINT_PREFIX = "hint__"


class ConfigCodec(abc.ABC):
    """Translates flat parameter dicts into topology configurations."""

    space: ParameterSpace

    @abc.abstractmethod
    def decode(self, params: Mapping[str, object]) -> TopologyConfig:
        """Build the deployable configuration for one proposal."""


def default_max_hint(topology: Topology, cluster: ClusterSpec) -> int:
    """Per-operator hint ceiling for the searchable space.

    Sized so a topology-wide setting of the ceiling oversubscribes the
    cluster's cores several times — large enough that skewed operators
    can get the parallelism they need (and over-parallelization is
    reachable, and punishable), small enough that the integer grid
    stays meaningful for the GP.
    """
    per_op = math.ceil(6.0 * cluster.total_cores / len(topology))
    return max(8, min(64, per_op))


class ParallelismCodec(ConfigCodec):
    """One hint per operator plus the max-tasks cap (paper §V-A)."""

    def __init__(
        self,
        topology: Topology,
        cluster: ClusterSpec,
        base_config: TopologyConfig | None = None,
        *,
        max_hint: int | None = None,
        include_max_tasks: bool = True,
    ) -> None:
        self.topology = topology
        self.base_config = base_config or TopologyConfig(
            num_workers=cluster.total_workers
        )
        self.max_hint = max_hint or default_max_hint(topology, cluster)
        self.include_max_tasks = include_max_tasks
        params: list[Parameter] = [
            IntParameter(f"{HINT_PREFIX}{name}", 1, self.max_hint)
            for name in topology.topological_order()
        ]
        if include_max_tasks:
            n_ops = len(topology)
            cap = max(n_ops + 1, cluster.max_total_executors)
            params.append(IntParameter("max_tasks", n_ops, cap))
        self.space = ParameterSpace(params)

    def decode(self, params: Mapping[str, object]) -> TopologyConfig:
        hints = {
            name: int(params[f"{HINT_PREFIX}{name}"])  # type: ignore[arg-type]
            for name in self.topology.topological_order()
        }
        max_tasks = (
            int(params["max_tasks"])  # type: ignore[arg-type]
            if self.include_max_tasks
            else self.base_config.max_tasks
        )
        return self.base_config.replace(
            parallelism_hints=hints, max_tasks=max_tasks
        )


class UniformHintCodec(ConfigCodec):
    """A single ``uniform_hint`` knob — the pla baseline's view."""

    def __init__(
        self,
        topology: Topology,
        cluster: ClusterSpec,
        base_config: TopologyConfig | None = None,
        *,
        max_hint: int | None = None,
    ) -> None:
        self.topology = topology
        self.base_config = base_config or TopologyConfig(
            num_workers=cluster.total_workers
        )
        self.max_hint = max_hint or default_max_hint(topology, cluster)
        self.space = ParameterSpace([IntParameter("uniform_hint", 1, self.max_hint)])

    def ascent_values(self, max_steps: int = 60) -> list[int]:
        """The pla schedule: hints 1, 2, 3, ... up to the budget."""
        return list(range(1, min(self.max_hint, max_steps) + 1))

    def decode(self, params: Mapping[str, object]) -> TopologyConfig:
        hint = int(params["uniform_hint"])  # type: ignore[arg-type]
        hints = {name: hint for name in self.topology}
        return self.base_config.replace(parallelism_hints=hints, max_tasks=None)


class InformedMultiplierCodec(ConfigCodec):
    """One float multiplier over base parallelism weights (ipla / ibo)."""

    def __init__(
        self,
        topology: Topology,
        cluster: ClusterSpec,
        base_config: TopologyConfig | None = None,
        *,
        max_multiplier: float | None = None,
    ) -> None:
        self.topology = topology
        self.base_config = base_config or TopologyConfig(
            num_workers=cluster.total_workers
        )
        self.informed = InformedParallelismCodec(topology)
        if max_multiplier is None:
            # Reach slightly beyond the executor capacity so the informed
            # ascent can also run into the failure wall.
            cap_tasks = cluster.max_total_executors
            max_multiplier = 1.2 * cap_tasks / self.informed.total_weight
        self.max_multiplier = max(max_multiplier, 10.0 * self.informed.multiplier_step())
        low = min(self.informed.multiplier_step() / 4.0, self.max_multiplier / 100.0)
        self.space = ParameterSpace(
            [FloatParameter("multiplier", low, self.max_multiplier)]
        )

    def ascent_values(self, max_steps: int = 60) -> list[float]:
        """The ipla schedule: multiplier raised by one step per run."""
        step = self.informed.multiplier_step()
        return [step * i for i in range(1, max_steps + 1)]

    def decode(self, params: Mapping[str, object]) -> TopologyConfig:
        multiplier = float(params["multiplier"])  # type: ignore[arg-type]
        hints = self.informed.hints_for(multiplier)
        return self.base_config.replace(parallelism_hints=hints, max_tasks=None)


class SundogParameterCodec(ConfigCodec):
    """Figure 8's parameter sets over the Sundog topology.

    ``include`` selects parameter groups:

    * ``"h"`` — per-operator parallelism hints (plus max-tasks),
    * ``"bs"`` / ``"bp"`` — Trident batch size and batch parallelism,
    * ``"cc"`` — concurrency parameters (worker threads, receiver
      threads, ackers).

    Groups not included stay at the ``base_config`` values (the Sundog
    developers' manual settings); for the ``bs bp cc`` experiment the
    paper fixes every hint to the best pla value via ``fixed_hint``.
    """

    def __init__(
        self,
        topology: Topology,
        cluster: ClusterSpec,
        base_config: TopologyConfig,
        *,
        include: Iterable[str] = ("h",),
        fixed_hint: int | None = None,
        max_hint: int | None = None,
        batch_size_bounds: tuple[int, int] = (1_000, 500_000),
        batch_parallelism_bounds: tuple[int, int] = (1, 32),
    ) -> None:
        include_set = set(include)
        unknown = include_set - {"h", "bs", "bp", "cc"}
        if unknown:
            raise ValueError(f"unknown parameter groups: {sorted(unknown)}")
        if not include_set:
            raise ValueError("at least one parameter group required")
        self.topology = topology
        self.base_config = base_config
        self.include = include_set
        self.fixed_hint = fixed_hint
        self.max_hint = max_hint or default_max_hint(topology, cluster)

        params: list[Parameter] = []
        if "h" in include_set:
            params.extend(
                IntParameter(f"{HINT_PREFIX}{name}", 1, self.max_hint)
                for name in topology.topological_order()
            )
            n_ops = len(topology)
            cap = max(n_ops + 1, cluster.max_total_executors)
            params.append(IntParameter("max_tasks", n_ops, cap))
        if "bs" in include_set:
            params.append(
                IntParameter("batch_size", *batch_size_bounds, log=True)
            )
        if "bp" in include_set:
            params.append(IntParameter("batch_parallelism", *batch_parallelism_bounds))
        if "cc" in include_set:
            params.append(IntParameter("worker_threads", 1, 32))
            params.append(IntParameter("receiver_threads", 1, 8))
            params.append(IntParameter("ackers", 1, 4 * cluster.total_workers))
        self.space = ParameterSpace(params)

    def decode(self, params: Mapping[str, object]) -> TopologyConfig:
        config = self.base_config
        if "h" in self.include:
            hints = {
                name: int(params[f"{HINT_PREFIX}{name}"])  # type: ignore[arg-type]
                for name in self.topology.topological_order()
            }
            config = config.replace(
                parallelism_hints=hints,
                max_tasks=int(params["max_tasks"]),  # type: ignore[arg-type]
            )
        elif self.fixed_hint is not None:
            hints = {name: self.fixed_hint for name in self.topology}
            config = config.replace(parallelism_hints=hints, max_tasks=None)
        if "bs" in self.include:
            config = config.replace(batch_size=int(params["batch_size"]))  # type: ignore[arg-type]
        if "bp" in self.include:
            config = config.replace(
                batch_parallelism=int(params["batch_parallelism"])  # type: ignore[arg-type]
            )
        if "cc" in self.include:
            config = config.replace(
                worker_threads=int(params["worker_threads"]),  # type: ignore[arg-type]
                receiver_threads=int(params["receiver_threads"]),  # type: ignore[arg-type]
                ackers=int(params["ackers"]),  # type: ignore[arg-type]
            )
        return config
