"""Task placement: Storm's even scheduler.

Storm's default scheduler distributes a topology's executors round-robin
across the available worker slots, balancing executor counts.  The
resulting :class:`Assignment` is what both execution engines consume: it
determines per-machine thread counts (context-switch pressure), memory
footprints, and which traffic is machine-local.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.storm.cluster import ClusterSpec, WorkerSlot
from repro.storm.config import TopologyConfig
from repro.storm.topology import Topology


@dataclass(frozen=True)
class TaskInstance:
    """One executor: the ``index``-th task of ``operator``."""

    operator: str
    index: int
    slot: WorkerSlot

    @property
    def key(self) -> str:
        return f"{self.operator}#{self.index}@{self.slot.key}"


class SchedulingError(RuntimeError):
    """Raised when a configuration cannot be placed on the cluster."""


@dataclass
class Assignment:
    """A complete placement of a configured topology on a cluster."""

    topology: Topology
    cluster: ClusterSpec
    config: TopologyConfig
    tasks: list[TaskInstance] = field(default_factory=list)
    acker_tasks: list[TaskInstance] = field(default_factory=list)

    def tasks_of(self, operator: str) -> list[TaskInstance]:
        return [t for t in self.tasks if t.operator == operator]

    def task_count(self, operator: str) -> int:
        return sum(1 for t in self.tasks if t.operator == operator)

    def machines_of(self, operator: str) -> set[int]:
        return {t.slot.machine_id for t in self.tasks if t.operator == operator}

    def executors_per_machine(self) -> dict[int, int]:
        """Topology executors (incl. ackers) placed on each machine."""
        counts = {m: 0 for m in range(self.cluster.n_machines)}
        for task in self.tasks:
            counts[task.slot.machine_id] += 1
        for task in self.acker_tasks:
            counts[task.slot.machine_id] += 1
        return counts

    def threads_per_machine(self) -> dict[int, float]:
        """Runnable threads per machine: executors + per-worker system threads.

        Each worker contributes its receiver threads plus a small fixed
        set of system threads (heartbeat, metrics) — the quantities that
        drive context-switch overhead in the execution models.
        """
        system_threads_per_worker = 2.0
        per_worker = self.config.receiver_threads + system_threads_per_worker
        counts: dict[int, float] = {}
        executors = self.executors_per_machine()
        for machine_id in range(self.cluster.n_machines):
            counts[machine_id] = (
                executors[machine_id]
                + per_worker * self.cluster.workers_per_machine
            )
        return counts

    def total_executors(self) -> int:
        return len(self.tasks) + len(self.acker_tasks)

    def colocation_fraction(self, src: str, dst: str) -> float:
        """Fraction of (src task, dst task) pairs sharing a machine.

        Under shuffle grouping the probability a tuple stays on-machine
        equals the fraction of destination tasks co-located with the
        emitting task, averaged over source tasks.
        """
        src_tasks = self.tasks_of(src)
        dst_tasks = self.tasks_of(dst)
        if not src_tasks or not dst_tasks:
            return 0.0
        dst_by_machine: dict[int, int] = {}
        for t in dst_tasks:
            dst_by_machine[t.slot.machine_id] = (
                dst_by_machine.get(t.slot.machine_id, 0) + 1
            )
        total = 0.0
        for s in src_tasks:
            local = dst_by_machine.get(s.slot.machine_id, 0)
            total += local / len(dst_tasks)
        return total / len(src_tasks)


class EvenScheduler:
    """Round-robin placement over worker slots, like Storm's default.

    Executors are placed one operator at a time (topological order, so
    pipelines interleave across machines) onto the currently least
    loaded slot; ties break by slot order.  Acker tasks are placed last
    the same way.
    """

    def schedule(
        self,
        topology: Topology,
        config: TopologyConfig,
        cluster: ClusterSpec,
    ) -> Assignment:
        hints = config.normalized_hints(topology)
        ackers = config.effective_ackers()
        total_executors = sum(hints.values()) + ackers
        if total_executors > cluster.max_total_executors:
            raise SchedulingError(
                f"cannot place {total_executors} executors on "
                f"{cluster.max_total_executors} available executor slots"
            )

        slots = cluster.worker_slots()
        assignment = Assignment(topology=topology, cluster=cluster, config=config)
        # ``worker_slots()`` is sorted ascending, so "least loaded slot,
        # ties by slot order" is exactly a heap of (load, slot index) —
        # O(log S) per placement instead of a full O(S) scan.
        heap = [(0, i) for i in range(len(slots))]

        def place(operator: str, count: int, into: list[TaskInstance]) -> None:
            for index in range(count):
                load, i = heapq.heappop(heap)
                heapq.heappush(heap, (load + 1, i))
                into.append(
                    TaskInstance(operator=operator, index=index, slot=slots[i])
                )

        for name in topology.topological_order():
            place(name, hints[name], assignment.tasks)
        place("__acker__", ackers, assignment.acker_tasks)
        return assignment


def schedulable(
    topology: Topology, config: TopologyConfig, cluster: ClusterSpec
) -> bool:
    """True if the configuration fits the cluster's executor capacity."""
    hints = config.normalized_hints(topology)
    total = sum(hints.values()) + config.effective_ackers()
    return total <= cluster.max_total_executors
