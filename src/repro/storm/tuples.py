"""Tuples and mini-batches: the data plane of the local executor.

Storm tuples are lists of key-value pairs (paper §III-A); Trident
processes them in mini-batches with per-batch consistency.  These types
back :mod:`repro.storm.local`, the single-process execution mode that
runs real operator logic on real data (the performance engines work at
batch granularity and do not materialize individual tuples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence


@dataclass(frozen=True)
class Tuple:
    """One Storm tuple: named values plus provenance metadata.

    The field schema is fixed per stream ("this format cannot be
    changed at runtime", §III-A); :class:`Tuple` enforces nothing about
    it — validation lives in the emitting operator's declaration.
    """

    values: Mapping[str, object]
    source: str = ""
    batch_id: int = -1

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", dict(self.values))

    def __getitem__(self, field_name: str) -> object:
        return self.values[field_name]

    def get(self, field_name: str, default: object = None) -> object:
        return self.values.get(field_name, default)

    @property
    def fields(self) -> tuple[str, ...]:
        return tuple(self.values)

    def with_values(self, source: str, **values: object) -> "Tuple":
        return Tuple(values=values, source=source, batch_id=self.batch_id)


@dataclass
class Batch:
    """A Trident mini-batch: an ordered collection of tuples per stream."""

    batch_id: int
    tuples: list[Tuple] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self.tuples)

    def append(self, item: Tuple) -> None:
        if item.batch_id != self.batch_id:
            raise ValueError(
                f"tuple from batch {item.batch_id} added to batch {self.batch_id}"
            )
        self.tuples.append(item)


def make_batch(
    batch_id: int, source: str, rows: Sequence[Mapping[str, object]]
) -> Batch:
    """Build a batch from raw value mappings emitted by ``source``."""
    batch = Batch(batch_id=batch_id)
    for row in rows:
        batch.append(Tuple(values=row, source=source, batch_id=batch_id))
    return batch
