"""The black-box objective the optimizers sample.

Combines a codec (flat parameter dict → :class:`TopologyConfig`) with an
execution engine (analytic model or discrete-event simulator) into the
callable the paper treats as its unknown function *f*: "the actual
system performance of our distributed stream processor, given all the
configuration parameters chosen" (§III-C).
"""

from __future__ import annotations

from typing import Literal, Mapping

from repro.storm.analytic import AnalyticPerformanceModel, CalibrationParams
from repro.storm.cluster import ClusterSpec
from repro.storm.config import TopologyConfig
from repro.storm.metrics import MeasuredRun
from repro.storm.noise import NoiseModel
from repro.storm.simulation import DiscreteEventSimulator
from repro.storm.spaces import ConfigCodec
from repro.storm.topology import Topology

Fidelity = Literal["analytic", "des"]


class StormObjective:
    """Callable objective: parameter dict → throughput (tuples/s).

    Parameters
    ----------
    topology, cluster:
        Deployment under test.
    codec:
        Translates optimizer proposals into configurations.
    fidelity:
        ``"analytic"`` (fast closed form; experiment default) or
        ``"des"`` (event-by-event simulation).
    noise:
        Observation noise model shared by both engines.
    """

    def __init__(
        self,
        topology: Topology,
        cluster: ClusterSpec,
        codec: ConfigCodec,
        *,
        fidelity: Fidelity = "analytic",
        calibration: CalibrationParams | None = None,
        noise: NoiseModel | None = None,
        seed: int | None = None,
        des_kwargs: Mapping[str, object] | None = None,
    ) -> None:
        self.topology = topology
        self.cluster = cluster
        self.codec = codec
        self.fidelity = fidelity
        if fidelity == "analytic":
            self.engine = AnalyticPerformanceModel(
                topology, cluster, calibration=calibration, noise=noise, seed=seed
            )
        elif fidelity == "des":
            self.engine = DiscreteEventSimulator(
                topology,
                cluster,
                calibration=calibration,
                noise=noise,
                seed=seed,
                **dict(des_kwargs or {}),
            )
        else:
            raise ValueError(f"unknown fidelity {fidelity!r}")
        self.n_evaluations = 0

    def measure(self, params: Mapping[str, object]) -> MeasuredRun:
        """Full metrics for one proposal (throughput, network, latency)."""
        config = self.codec.decode(params)
        self.n_evaluations += 1
        return self.engine.evaluate(config)

    def measure_config(self, config: TopologyConfig) -> MeasuredRun:
        """Bypass the codec and measure a concrete configuration."""
        self.n_evaluations += 1
        return self.engine.evaluate(config)

    def __call__(self, params: Mapping[str, object]) -> float:
        return self.measure(params).throughput_tps
