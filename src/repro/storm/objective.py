"""The black-box objective the optimizers sample.

Combines a codec (flat parameter dict → :class:`TopologyConfig`) with an
execution engine (analytic model or discrete-event simulator) into the
callable the paper treats as its unknown function *f*: "the actual
system performance of our distributed stream processor, given all the
configuration parameters chosen" (§III-C).

The objective is concurrency-safe: counters and the memo cache are
guarded by a lock, and every call returns its own
:class:`~repro.storm.metrics.MeasuredRun` (immutable) rather than
stashing it on shared state, so worker threads of an evaluation
executor (:mod:`repro.core.executor`) can call :meth:`measure`
simultaneously.  For process executors the objective pickles; the lock
is recreated on unpickle.
"""

from __future__ import annotations

import threading
from typing import Literal, Mapping

from repro.obs import runtime as obs_runtime
from repro.storm.analytic import AnalyticPerformanceModel, CalibrationParams
from repro.storm.cluster import ClusterSpec
from repro.storm.config import TopologyConfig
from repro.storm.faults import FaultPlan
from repro.storm.metrics import MeasuredRun
from repro.storm.noise import NoiseModel
from repro.storm.simulation import DiscreteEventSimulator
from repro.storm.spaces import ConfigCodec
from repro.storm.topology import Topology

Fidelity = Literal["analytic", "des"]


class StormObjective:
    """Callable objective: parameter dict → throughput (tuples/s).

    Parameters
    ----------
    topology, cluster:
        Deployment under test.
    codec:
        Translates optimizer proposals into configurations.
    fidelity:
        ``"analytic"`` (fast closed form; experiment default) or
        ``"des"`` (event-by-event simulation).
    noise:
        Observation noise model shared by both engines.
    faults:
        Optional :class:`~repro.storm.faults.FaultPlan` making the
        substrate misbehave deterministically (docs/ROBUSTNESS.md).
        An active plan makes the objective stochastic for caching
        purposes: a retried crash must not hit a memoized failure.
    memoize:
        Cache :meth:`measure` results keyed on the encoded
        configuration.  Defaults to on for deterministic objectives
        (``noise=None`` and no active faults) — grid ascent and BO
        revisit configurations, and ``repeat_best`` re-runs of a
        deterministic fidelity are pure waste — and off for
        stochastic ones, where each call must draw a fresh
        observation.  Pass an explicit bool to override.
    """

    def __init__(
        self,
        topology: Topology,
        cluster: ClusterSpec,
        codec: ConfigCodec,
        *,
        fidelity: Fidelity = "analytic",
        calibration: CalibrationParams | None = None,
        noise: NoiseModel | None = None,
        seed: int | None = None,
        des_kwargs: Mapping[str, object] | None = None,
        faults: FaultPlan | None = None,
        memoize: bool | None = None,
    ) -> None:
        self.topology = topology
        self.cluster = cluster
        self.codec = codec
        self.fidelity = fidelity
        if fidelity == "analytic":
            self.engine = AnalyticPerformanceModel(
                topology,
                cluster,
                calibration=calibration,
                noise=noise,
                seed=seed,
                faults=faults,
            )
        elif fidelity == "des":
            self.engine = DiscreteEventSimulator(
                topology,
                cluster,
                calibration=calibration,
                noise=noise,
                seed=seed,
                faults=faults,
                **dict(des_kwargs or {}),
            )
        else:
            raise ValueError(f"unknown fidelity {fidelity!r}")
        faulty = faults is not None and faults.active
        self.memoize = (
            (noise is None and not faulty) if memoize is None else bool(memoize)
        )
        self._noisy = noise is not None or faulty
        self.n_evaluations = 0
        self.n_engine_evaluations = 0
        self._cache: dict[bytes, MeasuredRun] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict[str, object]:
        state = self.__dict__.copy()
        del state["_lock"]  # locks do not pickle; recreated on load
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _cache_key(self, params: Mapping[str, object], seed: int | None) -> bytes:
        """Stable key: the unit-cube encoding of the proposal.

        For noisy objectives the per-evaluation seed joins the key —
        two draws of the same configuration under different seeds are
        different observations and must not collide.  Deterministic
        objectives keep the bare encoding so revisits always hit.
        """
        key = self.codec.space.encode(params).tobytes()
        if self._noisy and seed is not None:
            key += b"|" + str(seed).encode("ascii")
        return key

    def measure(
        self, params: Mapping[str, object], *, seed: int | None = None
    ) -> MeasuredRun:
        """Full metrics for one proposal (throughput, network, latency).

        ``seed``, when given, draws this evaluation's observation noise
        from its own stream instead of the engine's shared one — the
        value becomes a pure function of (params, seed), so concurrent
        evaluations replay identically regardless of completion order.
        """
        ctx = obs_runtime.current()
        with self._lock:
            self.n_evaluations += 1
        with ctx.tracer.span("objective.measure", fidelity=self.fidelity) as span:
            key = None
            if self.memoize:
                key = self._cache_key(params, seed)
                with self._lock:
                    cached = self._cache.get(key)
                    if cached is not None:
                        self.cache_hits += 1
                    else:
                        self.cache_misses += 1
                if cached is not None:
                    span.set_attribute("cache_hit", True)
                    return cached
            config = self.codec.decode(params)
            with self._lock:
                self.n_engine_evaluations += 1
            run = self.engine.evaluate(config, seed=seed)
            if run.failed:
                span.set_attribute("failed", True)
                ctx.tracer.event(
                    "objective.failure",
                    fidelity=self.fidelity,
                    reason=run.failure_reason,
                )
            if key is not None:
                with self._lock:
                    self._cache[key] = run
        return run

    def measure_config(
        self, config: TopologyConfig, *, seed: int | None = None
    ) -> MeasuredRun:
        """Bypass the codec (and the evaluation cache) and measure a
        concrete configuration."""
        with self._lock:
            self.n_evaluations += 1
            self.n_engine_evaluations += 1
        return self.engine.evaluate(config, seed=seed)

    def cache_info(self) -> dict[str, object]:
        """Evaluation-cache telemetry (threaded into result metadata)."""
        with self._lock:
            return {
                "enabled": self.memoize,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "size": len(self._cache),
            }

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def __call__(self, params: Mapping[str, object]) -> float:
        return self.measure(params).throughput_tps
