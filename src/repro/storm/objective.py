"""The black-box objective the optimizers sample.

Combines a codec (flat parameter dict → :class:`TopologyConfig`) with an
execution engine (analytic model or discrete-event simulator) into the
callable the paper treats as its unknown function *f*: "the actual
system performance of our distributed stream processor, given all the
configuration parameters chosen" (§III-C).

The objective is concurrency-safe: counters and the memo cache are
guarded by a lock, and every call returns its own
:class:`~repro.storm.metrics.MeasuredRun` (immutable) rather than
stashing it on shared state, so worker threads of an evaluation
executor (:mod:`repro.core.executor`) can call :meth:`measure`
simultaneously.  For process executors the objective pickles; the lock
is recreated on unpickle.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Literal, Mapping, Sequence

from repro.obs import runtime as obs_runtime
from repro.storm.analytic import AnalyticPerformanceModel, CalibrationParams
from repro.storm.cluster import ClusterSpec
from repro.storm.config import TopologyConfig
from repro.storm.faults import FaultPlan
from repro.storm.metrics import MeasuredRun
from repro.storm.noise import NoiseModel
from repro.storm.schedule import WorkloadSchedule
from repro.storm.simulation import DiscreteEventSimulator
from repro.storm.spaces import ConfigCodec
from repro.storm.topology import Topology

Fidelity = Literal["analytic", "des"]


class StormObjective:
    """Callable objective: parameter dict → throughput (tuples/s).

    Parameters
    ----------
    topology, cluster:
        Deployment under test.
    codec:
        Translates optimizer proposals into configurations.
    fidelity:
        ``"analytic"`` (fast closed form; experiment default) or
        ``"des"`` (event-by-event simulation).
    noise:
        Observation noise model shared by both engines.
    faults:
        Optional :class:`~repro.storm.faults.FaultPlan` making the
        substrate misbehave deterministically (docs/ROBUSTNESS.md).
        An active plan makes the objective stochastic for caching
        purposes: a retried crash must not hit a memoized failure.
    memoize:
        Cache :meth:`measure` results keyed on the encoded
        configuration.  Defaults to on for deterministic objectives
        (``noise=None`` and no active faults) — grid ascent and BO
        revisit configurations, and ``repeat_best`` re-runs of a
        deterministic fidelity are pure waste — and off for
        stochastic ones, where each call must draw a fresh
        observation.  Pass an explicit bool to override.
    cache_max_entries:
        Memo-cache bound (least-recently-used eviction).  A long study
        with per-seed keys would otherwise grow the cache without
        bound; ``None`` disables the bound.  Evictions are reported in
        :meth:`cache_info`.
    schedule:
        Optional :class:`~repro.storm.schedule.WorkloadSchedule` making
        the workload time-varying (docs/DRIFT.md).  Evaluations sample
        the schedule at :attr:`workload_time_s` (advance it with
        :meth:`set_workload_time`), and the memo-cache key gains a time
        component so the same configuration measured at different
        workload instants never collides.
    """

    def __init__(
        self,
        topology: Topology,
        cluster: ClusterSpec,
        codec: ConfigCodec,
        *,
        fidelity: Fidelity = "analytic",
        calibration: CalibrationParams | None = None,
        noise: NoiseModel | None = None,
        seed: int | None = None,
        des_kwargs: Mapping[str, object] | None = None,
        faults: FaultPlan | None = None,
        memoize: bool | None = None,
        cache_max_entries: int | None = 50_000,
        schedule: WorkloadSchedule | None = None,
    ) -> None:
        self.topology = topology
        self.cluster = cluster
        self.codec = codec
        self.fidelity = fidelity
        self.schedule = schedule
        self.workload_time_s = 0.0
        if fidelity == "analytic":
            self.engine = AnalyticPerformanceModel(
                topology,
                cluster,
                calibration=calibration,
                noise=noise,
                seed=seed,
                faults=faults,
                schedule=schedule,
            )
        elif fidelity == "des":
            self.engine = DiscreteEventSimulator(
                topology,
                cluster,
                calibration=calibration,
                noise=noise,
                seed=seed,
                faults=faults,
                schedule=schedule,
                **dict(des_kwargs or {}),
            )
        else:
            raise ValueError(f"unknown fidelity {fidelity!r}")
        faulty = faults is not None and faults.active
        self.memoize = (
            (noise is None and not faulty) if memoize is None else bool(memoize)
        )
        self._noisy = noise is not None or faulty
        self.n_evaluations = 0
        self.n_engine_evaluations = 0
        if cache_max_entries is not None and cache_max_entries < 1:
            raise ValueError("cache_max_entries must be >= 1 or None")
        self.cache_max_entries = cache_max_entries
        self._cache: OrderedDict[bytes, MeasuredRun] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict[str, object]:
        state = self.__dict__.copy()
        del state["_lock"]  # locks do not pickle; recreated on load
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        # Checkpoints from before the bounded cache: upgrade in place.
        if not isinstance(self._cache, OrderedDict):
            self._cache = OrderedDict(self._cache)
        if not hasattr(self, "cache_max_entries"):
            self.cache_max_entries = 50_000
        if not hasattr(self, "cache_evictions"):
            self.cache_evictions = 0
        if not hasattr(self, "schedule"):
            self.schedule = None
            self.workload_time_s = 0.0

    # ------------------------------------------------------------------
    # Memo cache (LRU); callers hold self._lock.
    # ------------------------------------------------------------------
    def _cache_get(self, key: bytes) -> MeasuredRun | None:
        run = self._cache.get(key)
        if run is not None:
            self._cache.move_to_end(key)
        return run

    def _cache_put(self, key: bytes, run: MeasuredRun) -> None:
        self._cache[key] = run
        self._cache.move_to_end(key)
        if self.cache_max_entries is not None:
            while len(self._cache) > self.cache_max_entries:
                self._cache.popitem(last=False)
                self.cache_evictions += 1

    def _cache_key(self, params: Mapping[str, object], seed: int | None) -> bytes:
        """Stable key: the unit-cube encoding of the proposal.

        For noisy objectives the per-evaluation seed joins the key —
        two draws of the same configuration under different seeds are
        different observations and must not collide.  Deterministic
        objectives keep the bare encoding so revisits always hit.
        """
        key = self.codec.space.encode(params).tobytes()
        if self._noisy and seed is not None:
            key += b"|" + str(seed).encode("ascii")
        if self.schedule is not None:
            key += b"|t" + repr(self.workload_time_s).encode("ascii")
        return key

    def measure(
        self, params: Mapping[str, object], *, seed: int | None = None
    ) -> MeasuredRun:
        """Full metrics for one proposal (throughput, network, latency).

        ``seed``, when given, draws this evaluation's observation noise
        from its own stream instead of the engine's shared one — the
        value becomes a pure function of (params, seed), so concurrent
        evaluations replay identically regardless of completion order.
        """
        ctx = obs_runtime.current()
        with self._lock:
            self.n_evaluations += 1
        with ctx.tracer.span("objective.measure", fidelity=self.fidelity) as span:
            key = None
            if self.memoize:
                key = self._cache_key(params, seed)
                with self._lock:
                    cached = self._cache_get(key)
                    if cached is not None:
                        self.cache_hits += 1
                    else:
                        self.cache_misses += 1
                if cached is not None:
                    span.set_attribute("cache_hit", True)
                    return cached
            config = self.codec.decode(params)
            with self._lock:
                self.n_engine_evaluations += 1
            run = self._engine_evaluate(config, seed)
            if run.failed:
                span.set_attribute("failed", True)
                ctx.tracer.event(
                    "objective.failure",
                    fidelity=self.fidelity,
                    reason=run.failure_reason,
                )
            if key is not None:
                with self._lock:
                    self._cache_put(key, run)
        self._publish_cache_gauges(ctx)
        return run

    @property
    def supports_batch_fast_path(self) -> bool:
        """Whether :meth:`measure_batch` is one vectorized engine pass.

        True only for the analytic fidelity — the executors use this to
        route homogeneous batches through a single call instead of N
        submits.  The DES has no vectorized form; batching it would
        serialize what a thread pool could overlap.
        """
        return self.fidelity == "analytic"

    def measure_batch(
        self,
        params_list: Sequence[Mapping[str, object]],
        *,
        seeds: Sequence[int | None] | None = None,
        mechanics_runs: Sequence[MeasuredRun] | None = None,
    ) -> list[MeasuredRun]:
        """Measure many proposals in one pass; returns runs in order.

        Semantically identical to ``[measure(p, seed=s) for p, s in
        zip(params_list, seeds)]`` — same cache hit/miss accounting,
        same per-evaluation noise/fault streams, bit-identical
        observations — but the engine mechanics run as one vectorized
        batch (span ``engine.analytic.evaluate_batch``) when the engine
        supports it.  Duplicate proposals within a batch are evaluated
        once and counted as a miss then hits, exactly as a serial loop
        over the memo cache would.

        ``mechanics_runs`` optionally supplies precomputed noise-free
        mechanics, one per proposal (the cross-cell broker's fused
        packed dispatch); cache-hit rows ignore theirs, miss rows hand
        theirs to the engine so no per-cell mechanics pass runs at all.
        """
        params_list = list(params_list)
        n = len(params_list)
        if seeds is not None:
            seeds = list(seeds)
            if len(seeds) != n:
                raise ValueError("seeds must match params_list in length")
        if mechanics_runs is not None and len(mechanics_runs) != n:
            raise ValueError("mechanics_runs must match params_list in length")
        if n == 0:
            return []
        ctx = obs_runtime.current()
        with self._lock:
            self.n_evaluations += n
        with ctx.tracer.span(
            "objective.measure_batch", fidelity=self.fidelity, n=n
        ) as span:
            results: list[MeasuredRun | None] = [None] * n
            keys: list[bytes | None] = [None] * n
            misses: list[int] = []
            dup_of: dict[int, int] = {}
            if self.memoize:
                first_for_key: dict[bytes, int] = {}
                hits = 0
                with self._lock:
                    for i, params in enumerate(params_list):
                        key = self._cache_key(
                            params, seeds[i] if seeds is not None else None
                        )
                        keys[i] = key
                        cached = self._cache_get(key)
                        if cached is not None:
                            self.cache_hits += 1
                            hits += 1
                            results[i] = cached
                        elif key in first_for_key:
                            # A serial loop would have cached the first
                            # occurrence by now; count the revisit as a
                            # hit and share its result.
                            self.cache_hits += 1
                            hits += 1
                            dup_of[i] = first_for_key[key]
                        else:
                            self.cache_misses += 1
                            first_for_key[key] = i
                            misses.append(i)
                span.set_attribute("cache_hits", hits)
            else:
                misses = list(range(n))

            if misses:
                configs = []
                for i in misses:
                    try:
                        configs.append(self.codec.decode(params_list[i]))
                    except Exception as exc:
                        # Let batch callers attribute the failure to the
                        # right submission (see executor fast paths).
                        exc._repro_batch_index = i  # type: ignore[attr-defined]
                        raise
                miss_seeds = (
                    [seeds[i] for i in misses] if seeds is not None else None
                )
                with self._lock:
                    self.n_engine_evaluations += len(misses)
                engine_batch = getattr(self.engine, "evaluate_batch", None)
                if callable(engine_batch):
                    kwargs: dict[str, object] = {"seeds": miss_seeds}
                    if self.schedule is not None:
                        kwargs["workload_time_s"] = self.workload_time_s
                    if mechanics_runs is not None:
                        kwargs["mechanics_runs"] = [
                            mechanics_runs[i] for i in misses
                        ]
                    runs = engine_batch(configs, **kwargs)
                else:
                    runs = [
                        self._engine_evaluate(
                            config,
                            miss_seeds[k] if miss_seeds is not None else None,
                        )
                        for k, config in enumerate(configs)
                    ]
                for k, i in enumerate(misses):
                    run = runs[k]
                    results[i] = run
                    if run.failed:
                        ctx.tracer.event(
                            "objective.failure",
                            fidelity=self.fidelity,
                            reason=run.failure_reason,
                        )
                if self.memoize:
                    with self._lock:
                        for i in misses:
                            assert keys[i] is not None and results[i] is not None
                            self._cache_put(keys[i], results[i])
            for i, j in dup_of.items():
                results[i] = results[j]
        assert all(run is not None for run in results)
        self._publish_cache_gauges(ctx)
        return results  # type: ignore[return-value]

    def measure_config(
        self, config: TopologyConfig, *, seed: int | None = None
    ) -> MeasuredRun:
        """Bypass the codec (and the evaluation cache) and measure a
        concrete configuration."""
        with self._lock:
            self.n_evaluations += 1
            self.n_engine_evaluations += 1
        return self._engine_evaluate(config, seed)

    def _engine_evaluate(
        self, config: TopologyConfig, seed: int | None
    ) -> MeasuredRun:
        """One engine call, threading the workload clock when scheduled.

        The kwarg is only passed under a schedule so engines without
        drift support (and the static fast path) stay byte-identical.
        """
        if self.schedule is not None:
            return self.engine.evaluate(
                config, seed=seed, workload_time_s=self.workload_time_s
            )
        return self.engine.evaluate(config, seed=seed)

    def set_workload_time(self, t_s: float) -> None:
        """Advance the workload clock for subsequent evaluations."""
        with self._lock:
            self.workload_time_s = float(t_s)

    def cache_info(self) -> dict[str, object]:
        """Evaluation-cache telemetry (threaded into result metadata)."""
        with self._lock:
            return {
                "enabled": self.memoize,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "size": len(self._cache),
                "evictions": self.cache_evictions,
                "max_entries": self.cache_max_entries,
            }

    def _publish_cache_gauges(self, ctx) -> None:
        """Mirror :meth:`cache_info` into obs gauges after each measure.

        Gauges (not counters) because the underlying tallies are
        cumulative already; repeated sets are idempotent and merge as a
        max across processes.
        """
        if not self.memoize:
            return
        with self._lock:
            hits = self.cache_hits
            misses = self.cache_misses
            evictions = self.cache_evictions
            size = len(self._cache)
        metrics = ctx.metrics
        metrics.gauge("objective.cache.hits").set(float(hits))
        metrics.gauge("objective.cache.misses").set(float(misses))
        metrics.gauge("objective.cache.evictions").set(float(evictions))
        metrics.gauge("objective.cache.size").set(float(size))
        total = hits + misses
        metrics.gauge("objective.cache.hit_ratio").set(
            hits / total if total else 0.0
        )

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def __call__(self, params: Mapping[str, object]) -> float:
        return self.measure(params).throughput_tps
