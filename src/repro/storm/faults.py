"""Deterministic fault injection for the simulated Storm substrate.

The paper tuned a real 80-machine cluster where multi-minute measurement
windows routinely hit worker crashes, stragglers, and replayed batches;
our engines are otherwise perfectly healthy, so none of the resilience
machinery (:mod:`repro.core.resilience`) would ever be exercised.  This
module makes the substrate misbehave *reproducibly*:

* a :class:`FaultSpec` fixes the fault rates and magnitudes;
* a :class:`FaultPlan` turns (spec, evaluation identity) into a
  :class:`FaultDecision` via :func:`repro.core.seeding.derive_seed`, so
  the same evaluation seed always hits the same faults — in any
  process, under any executor, at any batch size;
* the engines apply the decision: crashes and hangs surface as
  ``MeasuredRun.failed`` with a recognizable ``failure_reason``,
  stragglers and tuple loss degrade throughput.

Fault taxonomy (docs/ROBUSTNESS.md):

``worker_crash``
    A worker process dies mid-window.  Trident replays its batches, but
    the measurement window is ruined — the run fails.  *Transient*: a
    retry under a fresh seed usually succeeds.
``measurement_window_hang``
    The measurement window never makes progress (a wedged worker, a
    stuck Zookeeper session).  The evaluation blocks for
    ``hang_seconds`` of real wall-clock — precisely what per-evaluation
    timeouts exist to cut short — then fails.  *Transient*.
``straggler``
    One machine runs slow (co-tenant interference, thermal throttling).
    Trident's per-batch barrier makes every batch wait for the slowest
    task, so the whole pipeline runs at the straggler's speed: observed
    throughput scales by ``straggler_slowdown``.
``tuple_loss``
    Transient tuple loss makes the acker time batches out and replay
    them; replayed batches consume window time without contributing, so
    throughput scales by ``1 - tuple_loss_fraction``.

Degradations are *not* failures: they come back as valid (lower)
measurements, which is how the noisy substrate teaches the optimizer to
prefer robust regions — the ContTune-style treatment of backpressured
configurations as first-class signals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.seeding import derive_seed
from repro.storm.metrics import MeasuredRun

#: ``failure_reason`` prefixes of injected *transient* faults.  The
#: resilience layer retries these; anything else (scheduling, memory,
#: batch-timeout infeasibility) is persistent.  Kept here so the engines
#: and :func:`repro.core.resilience.classify_failure` agree by
#: construction.
TRANSIENT_FAULT_MARKERS: tuple[str, ...] = (
    "worker_crash",
    "measurement_window_hang",
)


@dataclass(frozen=True)
class FaultSpec:
    """Fault rates and magnitudes for one chaos scenario.

    All rates are per-evaluation probabilities in ``[0, 1]``; a single
    evaluation can draw several faults at once (a straggler *and* tuple
    loss compose multiplicatively; a crash or hang preempts the rest).

    ``hang_seconds`` is real wall-clock the evaluation blocks for when
    a hang fires — keep it small in tests, or rely on the resilient
    executor's timeout to cut it short.  ``seed`` names the fault
    stream; it is mixed with each evaluation's identity, so two plans
    with different seeds fault different evaluations at the same rates.
    """

    crash_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_slowdown: float = 0.35
    tuple_loss_rate: float = 0.0
    tuple_loss_fraction: float = 0.08
    hang_rate: float = 0.0
    hang_seconds: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "straggler_rate", "tuple_loss_rate", "hang_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if not 0.0 < self.straggler_slowdown <= 1.0:
            raise ValueError("straggler_slowdown must be in (0, 1]")
        if not 0.0 <= self.tuple_loss_fraction < 1.0:
            raise ValueError("tuple_loss_fraction must be in [0, 1)")
        if self.hang_seconds < 0.0:
            raise ValueError("hang_seconds must be >= 0")

    @property
    def active(self) -> bool:
        return (
            self.crash_rate > 0
            or self.straggler_rate > 0
            or self.tuple_loss_rate > 0
            or self.hang_rate > 0
        )

    @classmethod
    def chaos(cls, rate: float = 0.1, *, seed: int = 0) -> "FaultSpec":
        """A mixed scenario with total disruption probability ≈ ``rate``.

        Splits the budget evenly over crash, straggler, tuple loss, and
        hang (with an instantaneous hang, so wall-clock stays bounded
        even without a timeout) — the shape the chaos-smoke CI job and
        ``benchmarks/bench_resilience.py`` exercise.
        """
        share = rate / 4.0
        return cls(
            crash_rate=share,
            straggler_rate=share,
            tuple_loss_rate=share,
            hang_rate=share,
            hang_seconds=0.0,
            seed=seed,
        )


@dataclass(frozen=True)
class FaultDecision:
    """The faults one evaluation draws (all absent by default)."""

    crash: bool = False
    straggler_factor: float = 1.0
    replay_fraction: float = 0.0
    hang: bool = False

    @property
    def any(self) -> bool:
        return (
            self.crash
            or self.hang
            or self.straggler_factor < 1.0
            or self.replay_fraction > 0.0
        )

    def labels(self) -> list[str]:
        """Names of the faults that fired, in severity order."""
        fired: list[str] = []
        if self.hang:
            fired.append("measurement_window_hang")
        if self.crash:
            fired.append("worker_crash")
        if self.straggler_factor < 1.0:
            fired.append("straggler")
        if self.replay_fraction > 0.0:
            fired.append("tuple_loss")
        return fired


#: The no-fault decision, shared to keep the hot path allocation-free.
NO_FAULTS = FaultDecision()


class FaultPlan:
    """Seed-derived fault decisions plus their application to a run.

    Construction is cheap and the object is immutable state-wise, so it
    pickles into process-pool workers alongside the objective.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec

    @property
    def active(self) -> bool:
        return self.spec.active

    def decide(self, seed: int | None, key: object = "") -> FaultDecision:
        """The faults the evaluation identified by ``seed`` draws.

        ``seed`` is the per-evaluation noise seed; when the caller runs
        without per-evaluation seeds (classic serial loop), ``key`` — a
        stable description of the configuration — names the stream
        instead, so identical configurations still fault identically.
        The decision is a pure function of (spec.seed, identity): the
        order evaluations complete in can never change who faults,
        which is what keeps a ``batch_size=4`` run a replay of the
        serial one.
        """
        if not self.spec.active:
            return NO_FAULTS
        identity = seed if seed is not None else key
        rng = np.random.default_rng(derive_seed(self.spec.seed, "fault", identity))
        # Fixed draw order so adding a fault type later cannot silently
        # reshuffle existing streams.
        u_hang, u_crash, u_straggler, u_loss = rng.random(4)
        hang = u_hang < self.spec.hang_rate
        crash = not hang and u_crash < self.spec.crash_rate
        straggler = u_straggler < self.spec.straggler_rate
        loss = u_loss < self.spec.tuple_loss_rate
        if not (hang or crash or straggler or loss):
            return NO_FAULTS
        return FaultDecision(
            crash=crash,
            straggler_factor=self.spec.straggler_slowdown if straggler else 1.0,
            replay_fraction=self.spec.tuple_loss_fraction if loss else 0.0,
            hang=hang,
        )

    def preempt(
        self, decision: FaultDecision, *, total_tasks: int = 0
    ) -> MeasuredRun | None:
        """The failed run a preempting fault produces, or None.

        Hangs block for ``hang_seconds`` of real wall-clock first —
        the evaluation is genuinely stuck, which is what per-evaluation
        timeouts (and the process-pool kill-and-respawn path) exist
        for.
        """
        if decision.hang:
            if self.spec.hang_seconds > 0:
                time.sleep(self.spec.hang_seconds)
            return MeasuredRun.failure(
                "measurement_window_hang: no batches completed before the "
                "window was abandoned",
                total_tasks=total_tasks,
            )
        if decision.crash:
            return MeasuredRun.failure(
                "worker_crash: a worker died mid-measurement and its "
                "batches replayed past the window",
                total_tasks=total_tasks,
            )
        return None

    def degrade(self, run: MeasuredRun, decision: FaultDecision) -> MeasuredRun:
        """Apply throughput-degrading faults to a successful run.

        Stragglers gate the per-batch barrier (slowest task paces every
        batch); replayed batches burn window time without contributing.
        The two compose multiplicatively.  Failed runs pass through
        untouched.
        """
        factor = decision.straggler_factor * (1.0 - decision.replay_fraction)
        if run.failed or factor >= 1.0:
            return run
        details = dict(run.details)
        details["injected_faults"] = decision.labels()
        details["fault_factor"] = factor
        return replace(
            run, throughput_tps=run.throughput_tps * factor, details=details
        )


def inject_faults(
    plan: "FaultPlan | None",
    run_mechanics: "callable",
    *,
    config_key: object,
    seed: int | None,
    tracer,
    engine: str,
) -> MeasuredRun:
    """Shared engine hook: decide, preempt or degrade, and trace.

    ``run_mechanics`` is the engine's noise-free evaluation thunk; it
    is only invoked when no preempting fault fires, so hung/crashed
    windows cost nothing but the (intentional) hang sleep.  Preempting
    faults emit the same ``engine.failure`` event the engines emit for
    mechanical failures, so they aggregate identically in
    ``obs summary``.
    """
    if plan is None or not plan.active:
        return run_mechanics()
    decision = plan.decide(seed, key=config_key)
    if decision.any:
        tracer.event(
            "engine.fault_injected",
            engine=engine,
            faults=",".join(decision.labels()),
        )
    preempted = plan.preempt(decision)
    if preempted is not None:
        tracer.event(
            "engine.failure", engine=engine, reason=preempted.failure_reason
        )
        return preempted
    return plan.degrade(run_mechanics(), decision)
