"""Stream grouping strategies (paper §III-A).

A grouping decides which downstream task instance receives each tuple.
For the execution engines what matters is the resulting *load split*
across the consumer's task instances, so each strategy is reduced to a
function returning per-task load fractions.
"""

from __future__ import annotations

import enum

import numpy as np


class Grouping(enum.Enum):
    """Supported Storm stream groupings.

    SHUFFLE
        Tuples are evenly shuffled among downstream tasks (the grouping
        used by the paper's synthetic topologies, §IV-B4).
    FIELDS
        Tuples sharing values in configured fields land on the same task;
        real key distributions are skewed, so the load split follows a
        Zipf-like profile.
    ALL
        Every task receives every tuple (replication).
    GLOBAL
        All tuples go to the single lowest-id task.
    LOCAL_OR_SHUFFLE
        Prefer a task in the same worker, else shuffle; the load split is
        even, but remote traffic is reduced.
    """

    SHUFFLE = "shuffle"
    FIELDS = "fields"
    ALL = "all"
    GLOBAL = "global"
    LOCAL_OR_SHUFFLE = "local_or_shuffle"


#: Default skew exponent for FIELDS groupings; 0 would be a perfectly
#: uniform key distribution, 1 a classic Zipf.
DEFAULT_FIELDS_SKEW = 0.6


def load_fractions(
    grouping: Grouping,
    n_tasks: int,
    *,
    skew: float = DEFAULT_FIELDS_SKEW,
) -> np.ndarray:
    """Fraction of the consumer's input handled by each of its tasks.

    The fractions sum to 1 except for :attr:`Grouping.ALL`, where every
    task processes the full stream (each fraction is 1).
    """
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    if grouping is Grouping.ALL:
        return np.ones(n_tasks)
    if grouping is Grouping.GLOBAL:
        fractions = np.zeros(n_tasks)
        fractions[0] = 1.0
        return fractions
    if grouping is Grouping.FIELDS:
        ranks = np.arange(1, n_tasks + 1, dtype=float)
        weights = ranks ** (-skew)
        return weights / weights.sum()
    # SHUFFLE and LOCAL_OR_SHUFFLE split evenly.
    return np.full(n_tasks, 1.0 / n_tasks)


def replication_factor(grouping: Grouping, n_tasks: int) -> float:
    """How many copies of each tuple the grouping delivers downstream."""
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    return float(n_tasks) if grouping is Grouping.ALL else 1.0


def effective_parallelism(
    grouping: Grouping,
    n_tasks: int,
    *,
    skew: float = DEFAULT_FIELDS_SKEW,
) -> float:
    """Parallelism actually achievable under the grouping's load split.

    With an even split this equals ``n_tasks``; a skewed FIELDS split is
    bottlenecked by its most loaded task, and GLOBAL pins everything to
    one task.  Defined as ``1 / max(load fraction)`` (ALL replicates the
    stream, so every task carries the full load and the value is 1).
    """
    fractions = load_fractions(grouping, n_tasks, skew=skew)
    peak = float(fractions.max())
    if peak <= 0:
        raise ValueError("degenerate load split")
    return 1.0 / peak


def remote_fraction(
    grouping: Grouping,
    n_machines: int,
    *,
    colocated_share: float | None = None,
) -> float:
    """Expected fraction of tuples that cross a machine boundary.

    Under shuffle-style groupings a tuple lands on a random task, so with
    ``m`` machines roughly ``(m - 1) / m`` of traffic is remote.
    LOCAL_OR_SHUFFLE keeps a configurable share on the local worker
    (default: one machine's worth plus half of the remainder stays
    pessimistic about co-location, matching Storm's behaviour when local
    consumers exist on every worker).
    """
    if n_machines < 1:
        raise ValueError("n_machines must be >= 1")
    if n_machines == 1:
        return 0.0
    shuffle_remote = (n_machines - 1) / n_machines
    if grouping is Grouping.LOCAL_OR_SHUFFLE:
        local = colocated_share if colocated_share is not None else 0.5
        if not 0.0 <= local <= 1.0:
            raise ValueError("colocated_share must be in [0, 1]")
        return shuffle_remote * (1.0 - local)
    return shuffle_remote
