"""Storm/Trident substrate: a simulated distributed stream processor.

This subpackage is the reproduction's stand-in for the paper's physical
80-machine Storm-on-YARN cluster.  It models:

* the *logical* layer — topologies of spouts and bolts connected by
  grouped streams (:mod:`repro.storm.topology`, :mod:`repro.storm.grouping`),
* the *configuration surface* of Table I (:mod:`repro.storm.config`),
* the *physical* layer — machines, worker slots and the even scheduler
  (:mod:`repro.storm.cluster`, :mod:`repro.storm.scheduler`),
* Trident mini-batch semantics and operator fusion
  (:mod:`repro.storm.trident`),
* two execution engines over identical mechanics: a discrete-event
  simulator (:mod:`repro.storm.simulation`) and a fast analytic
  bottleneck model (:mod:`repro.storm.analytic`),
* measurement noise (:mod:`repro.storm.noise`) and run metrics
  (:mod:`repro.storm.metrics`),
* time-varying workload schedules — drift profiles — sampled by all
  engines (:mod:`repro.storm.schedule`, docs/DRIFT.md).
"""

from repro.storm.analytic import AnalyticPerformanceModel, CalibrationParams
from repro.storm.cluster import ClusterSpec, MachineSpec, paper_cluster
from repro.storm.config import TopologyConfig
from repro.storm.grouping import Grouping
from repro.storm.local import BatchAwareBolt, LocalTopologyRunner
from repro.storm.metrics import MeasuredRun
from repro.storm.noise import GaussianNoise, InterferenceNoise, NoNoise
from repro.storm.objective import StormObjective
from repro.storm.schedule import (
    ConstantSchedule,
    DiurnalSchedule,
    FlashCrowdSchedule,
    SkewShiftSchedule,
    WorkloadPoint,
    WorkloadSchedule,
)
from repro.storm.scheduler import Assignment, EvenScheduler
from repro.storm.sensitivity import SensitivityAnalyzer
from repro.storm.simulation import DiscreteEventSimulator
from repro.storm.topology import OperatorKind, OperatorSpec, Topology, TopologyBuilder
from repro.storm.topology_io import load_topology, save_topology
from repro.storm.trident import fuse_linear_chains
from repro.storm.tuples import Batch, Tuple

__all__ = [
    "AnalyticPerformanceModel",
    "Assignment",
    "Batch",
    "BatchAwareBolt",
    "CalibrationParams",
    "ClusterSpec",
    "ConstantSchedule",
    "DiscreteEventSimulator",
    "DiurnalSchedule",
    "EvenScheduler",
    "FlashCrowdSchedule",
    "GaussianNoise",
    "Grouping",
    "InterferenceNoise",
    "LocalTopologyRunner",
    "MachineSpec",
    "MeasuredRun",
    "NoNoise",
    "OperatorKind",
    "OperatorSpec",
    "SensitivityAnalyzer",
    "SkewShiftSchedule",
    "StormObjective",
    "Topology",
    "TopologyBuilder",
    "TopologyConfig",
    "Tuple",
    "WorkloadPoint",
    "WorkloadSchedule",
    "fuse_linear_chains",
    "load_topology",
    "paper_cluster",
    "save_topology",
]
