"""The active observability context: tracer + metrics + sinks.

Instrumented code never threads tracer objects through call chains; it
asks :func:`current` for the process-wide context.  By default that
context is *disabled* — a shared :class:`~repro.obs.tracer.NoopTracer`
and :class:`~repro.obs.metrics.NullRegistry` — so library users who
never touch :mod:`repro.obs` pay one attribute lookup per instrumented
site and nothing else.

:func:`session` is the front door::

    from repro import obs

    with obs.session(jsonl_path="run.jsonl", manifest={"seed": 0}) as ctx:
        TuningLoop(objective, optimizer).run()
    # run.jsonl now holds the manifest, every span/event, and a final
    # metrics snapshot; ctx.metrics survives for programmatic reads.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.sinks import InMemorySink, JsonlSink, ProgressSink
from repro.obs.tracer import NOOP_TRACER, SCHEMA_VERSION, NoopTracer, Tracer


class ObsContext:
    """One activated observability configuration."""

    def __init__(
        self,
        tracer: Tracer | NoopTracer,
        metrics: MetricsRegistry | NullRegistry,
        sinks: tuple[object, ...] = (),
        enabled: bool = False,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.sinks = sinks
        self.enabled = enabled

    def emit(self, record: Mapping[str, object]) -> None:
        """Push a non-span record (manifest, snapshot) to every sink."""
        for sink in self.sinks:
            sink(dict(record))

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if callable(close):
                close()


#: The inactive default: everything no-ops.
DISABLED = ObsContext(NOOP_TRACER, NULL_REGISTRY, sinks=(), enabled=False)

_current: ObsContext = DISABLED


def current() -> ObsContext:
    """The active context (the disabled singleton when none is)."""
    return _current


def activate(ctx: ObsContext) -> ObsContext:
    """Install ``ctx`` as the process-wide context; returns the previous."""
    global _current
    previous = _current
    _current = ctx
    return previous


def deactivate() -> None:
    global _current
    _current = DISABLED


@contextmanager
def session(
    *,
    jsonl_path: object | None = None,
    sinks: tuple[object, ...] = (),
    progress: ProgressSink | None = None,
    memory: bool = False,
    manifest: Mapping[str, object] | None = None,
) -> Iterator[ObsContext]:
    """Activate tracing + metrics for the duration of a ``with`` block.

    Parameters
    ----------
    jsonl_path:
        When given, append every record to this JSONL trace file.
    sinks:
        Extra ``sink(record)`` callables.
    progress:
        A :class:`ProgressSink` to also feed (live study rendering).
    memory:
        Also collect records in an :class:`InMemorySink`, exposed as
        ``ctx.events`` for programmatic use.
    manifest:
        Run identity (seeds, budgets, argv...) written as the trace's
        first record and echoed in the final ``metrics`` record.

    On exit the session emits a ``metrics`` record carrying the
    registry snapshot, closes owned sinks, and restores whatever
    context was active before.
    """
    all_sinks: list[object] = list(sinks)
    if jsonl_path is not None:
        all_sinks.append(JsonlSink(jsonl_path))  # type: ignore[arg-type]
    mem: InMemorySink | None = None
    if memory:
        mem = InMemorySink()
        all_sinks.append(mem)
    if progress is not None:
        all_sinks.append(progress)
    tracer = Tracer(tuple(all_sinks))  # type: ignore[arg-type]
    registry = MetricsRegistry()
    ctx = ObsContext(tracer, registry, tuple(all_sinks), enabled=True)
    if mem is not None:
        ctx.events = mem.events  # type: ignore[attr-defined]
    ctx.emit(
        {
            "type": "manifest",
            "schema_version": SCHEMA_VERSION,
            "created_unix": time.time(),
            "attrs": dict(manifest or {}),
        }
    )
    previous = activate(ctx)
    try:
        yield ctx
    finally:
        activate(previous)
        ctx.emit({"type": "metrics", "snapshot": registry.snapshot()})
        ctx.close()
