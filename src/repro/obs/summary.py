"""Aggregate a run trace into a where-time-goes breakdown.

Consumes the JSONL event stream a session writes (see
docs/OBSERVABILITY.md) and answers the paper's Figure 7-style question:
of the wall-clock a tuning run spent, how much went to suggesting
configurations, measuring them, and updating the model — and inside the
model, to full ML-II refits vs rank-1 updates.

:func:`aggregate_spans` is the generic groupby; :func:`summarize_trace`
layers the tuning-loop phase accounting on top.  Both return plain
dicts/rows so :mod:`repro.experiments.figures` can wrap them in a
:class:`~repro.experiments.figures.FigureData` without this module
importing the experiments layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.obs.metrics import Histogram

#: Span names that make up the tuning loop's per-step phase accounting.
PHASE_SPANS = (
    "tuning.suggest",
    "tuning.evaluate",
    "tuning.diagnose",
    "tuning.tell",
)

#: The root span one TuningLoop.run() wraps everything in.
ROOT_SPAN = "tuning.run"


@dataclass
class SpanStats:
    """Aggregated timings for one span name.

    Durations stream into a log-bucketed
    :class:`~repro.obs.metrics.Histogram` rather than a kept-forever
    list, so aggregating a multi-hour trace stays O(buckets) per span
    and quantiles carry the histogram's bounded ~2.5% relative error.
    Min/max/mean remain exact.
    """

    name: str
    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0
    errors: int = 0
    histogram: Histogram = field(default_factory=Histogram)

    def add(self, duration_s: float, *, error: bool = False) -> None:
        self.count += 1
        self.total_s += duration_s
        self.min_s = min(self.min_s, duration_s)
        self.max_s = max(self.max_s, duration_s)
        self.histogram.record(duration_s)
        if error:
            self.errors += 1

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        if not self.count:
            return 0.0
        return self.histogram.quantile(q)


def aggregate_spans(
    events: Iterable[Mapping[str, object]],
) -> dict[str, SpanStats]:
    """Group finished-span records by name."""
    stats: dict[str, SpanStats] = {}
    for record in events:
        if record.get("type") != "span":
            continue
        name = str(record.get("name", ""))
        entry = stats.get(name)
        if entry is None:
            entry = stats[name] = SpanStats(name)
        entry.add(
            float(record.get("duration_s", 0.0)),  # type: ignore[arg-type]
            error=record.get("status") == "error",
        )
    return stats


@dataclass
class TraceSummary:
    """The aggregate a trace file reduces to."""

    spans: dict[str, SpanStats]
    wall_seconds: float  # total time inside tuning.run root spans
    phase_seconds: dict[str, float]  # per PHASE_SPANS name
    n_runs: int
    n_steps: int
    failures: int
    counters: dict[str, int]

    @property
    def phase_total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def coverage(self) -> float:
        """Fraction of root wall-clock the three phases account for."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.phase_total_seconds / self.wall_seconds


def summarize_trace(events: Iterable[Mapping[str, object]]) -> TraceSummary:
    """Reduce an event stream to the where-time-goes summary."""
    events = list(events)
    spans = aggregate_spans(events)
    root = spans.get(ROOT_SPAN)
    wall = root.total_s if root else 0.0
    if wall <= 0.0:
        # Headless traces (no tuning.run root, e.g. hand-rolled spans):
        # fall back to the stream's observable extent.
        stamps = [
            (float(e.get("t_start", 0.0)), float(e.get("duration_s", 0.0)))  # type: ignore[arg-type]
            for e in events
            if e.get("type") == "span"
        ]
        if stamps:
            wall = max(t + d for t, d in stamps) - min(t for t, _ in stamps)
    phase_seconds = {
        name: spans[name].total_s if name in spans else 0.0
        for name in PHASE_SPANS
    }
    failures = 0
    counters: dict[str, int] = {}
    for record in events:
        if record.get("type") == "event" and str(record.get("name", "")).endswith(
            "failure"
        ):
            failures += 1
        if record.get("type") == "metrics":
            snap = record.get("snapshot")
            if isinstance(snap, Mapping):
                for key, value in dict(snap.get("counters", {})).items():  # type: ignore[union-attr]
                    counters[key] = counters.get(key, 0) + int(value)
    step_stats = spans.get("tuning.step")
    # Prefer the per-completion step spans; fall back to the loop's
    # tuning.steps counter for traces that carry only metrics snapshots.
    n_steps = step_stats.count if step_stats else counters.get("tuning.steps", 0)
    return TraceSummary(
        spans=spans,
        wall_seconds=wall,
        phase_seconds=phase_seconds,
        n_runs=root.count if root else 0,
        n_steps=n_steps,
        failures=failures,
        counters=counters,
    )


def summary_rows(summary: TraceSummary) -> list[dict[str, object]]:
    """Flat table rows (one per span name, phases first) for rendering."""
    ordered = [n for n in (ROOT_SPAN, *PHASE_SPANS) if n in summary.spans]
    ordered += sorted(n for n in summary.spans if n not in ordered)
    rows: list[dict[str, object]] = []
    for name in ordered:
        s = summary.spans[name]
        share = s.total_s / summary.wall_seconds if summary.wall_seconds else 0.0
        rows.append(
            {
                "span": name,
                "count": s.count,
                "total_s": round(s.total_s, 4),
                "mean_s": round(s.mean_s, 5),
                "p50_s": round(s.quantile(0.50), 5),
                "p95_s": round(s.quantile(0.95), 5),
                "max_s": round(s.max_s, 5),
                "share_of_wall": f"{share:.1%}",
                "errors": s.errors,
            }
        )
    return rows


def format_event_line(record: Mapping[str, object]) -> str:
    """One human-readable line per trace record (the ``obs tail`` view)."""
    kind = str(record.get("type", "?"))
    attrs = record.get("attrs")
    attrs_text = ""
    if isinstance(attrs, Mapping) and attrs:
        parts = ", ".join(f"{k}={v}" for k, v in attrs.items())
        attrs_text = f"  [{parts}]"
    if kind == "span":
        depth = int(record.get("depth", 0))  # type: ignore[arg-type]
        return (
            f"{float(record.get('t_start', 0.0)):9.3f}s "  # type: ignore[arg-type]
            f"{'  ' * depth}{record.get('name')} "
            f"({float(record.get('duration_s', 0.0)) * 1e3:.2f} ms)"  # type: ignore[arg-type]
            f"{attrs_text}"
        )
    if kind == "event":
        return (
            f"{float(record.get('t', 0.0)):9.3f}s "  # type: ignore[arg-type]
            f"* {record.get('name')}{attrs_text}"
        )
    if kind == "manifest":
        return f"    0.000s = manifest{attrs_text}"
    if kind == "metrics":
        snap = record.get("snapshot")
        n = len(dict(snap.get("histograms", {}))) if isinstance(snap, Mapping) else 0  # type: ignore[union-attr]
        return f"          = metrics snapshot ({n} histograms)"
    return f"          ? {kind}"
