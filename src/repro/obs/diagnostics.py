"""Emit BO model-quality diagnostics through the obs substrate.

Bridges :mod:`repro.core.diagnostics` (pure computation) to the trace:
one ``diag.tell`` point event per scored tell, plus ``diag.*`` metrics
in the run's registry (histograms for the residual/NLPD distributions,
gauges for the latest calibration state).  The event stream is what
``repro-experiments obs report`` renders into the convergence and
calibration sections; :func:`extract_diagnostics` is its reader.

Emitted metrics
---------------
``diag.tells`` (counter)
    Scored tells (tells with a fitted-surrogate prediction).
``diag.abs_residual_z`` / ``diag.nlpd`` (histograms)
    Distribution of |one-step-ahead standardized residual| and negative
    log predictive density.
``diag.coverage_95`` / ``diag.incumbent_regret`` /
``diag.acquisition_value`` (gauges)
    Latest running coverage, relative regret vs the noise-free analytic
    reference, and acquisition value (last-write-wins across merges —
    the freshest state, like every gauge).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.diagnostics import StepDiagnostics
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.tracer import NoopTracer, Tracer

#: Event name diag records travel under in the trace.
DIAG_EVENT = "diag.tell"


def emit_step(
    tracer: Tracer | NoopTracer,
    metrics: MetricsRegistry | NullRegistry,
    diag: StepDiagnostics,
) -> None:
    """Publish one tell's diagnostics as an event + metric updates."""
    tracer.event(DIAG_EVENT, **diag.as_attrs())
    metrics.counter("diag.tells").inc()
    if diag.residual_z is not None:
        metrics.histogram("diag.abs_residual_z").record(abs(diag.residual_z))
    if diag.nlpd is not None:
        metrics.histogram("diag.nlpd").record(diag.nlpd)
    if diag.coverage_95 is not None:
        metrics.gauge("diag.coverage_95").set(diag.coverage_95)
    if diag.acquisition_value is not None:
        metrics.gauge("diag.acquisition_value").set(diag.acquisition_value)
    if diag.incumbent_regret is not None:
        metrics.gauge("diag.incumbent_regret").set(diag.incumbent_regret)


def extract_diagnostics(
    events: Iterable[Mapping[str, object]],
) -> list[dict[str, object]]:
    """Pull the ``diag.tell`` series back out of a trace event stream.

    Returns one attrs dict per tell, in stream order — the input to the
    report's convergence/calibration plots.  Tolerates traces with no
    diagnostics (returns ``[]``).
    """
    series: list[dict[str, object]] = []
    for record in events:
        if record.get("type") != "event" or record.get("name") != DIAG_EVENT:
            continue
        attrs = record.get("attrs")
        if isinstance(attrs, Mapping):
            series.append(dict(attrs))
    return series
