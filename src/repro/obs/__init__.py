"""repro.obs — unified tracing, metrics, and run traces.

The observability substrate the tuning loop, execution engines, and
experiment runner report through (docs/OBSERVABILITY.md):

* :mod:`repro.obs.tracer` — nested span tracer (context-manager API,
  monotonic timings, zero-overhead no-op when disabled);
* :mod:`repro.obs.metrics` — counters, gauges, and streaming
  log-bucketed histograms (p50/p95/p99) with snapshot + cross-cell
  merge;
* :mod:`repro.obs.sinks` — in-memory, JSONL-per-run, and live progress
  (per-cell ETA) sinks;
* :mod:`repro.obs.runtime` — the active context (:func:`session`,
  :func:`current`);
* :mod:`repro.obs.summary` — trace aggregation behind
  ``repro-experiments obs summary`` and ``obs tail``.

Typical use::

    from repro import obs

    with obs.session(jsonl_path="run.jsonl", manifest={"seed": 0}):
        TuningLoop(objective, optimizer).run()
"""

from repro.obs.diagnostics import DIAG_EVENT, emit_step, extract_diagnostics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.runtime import (
    DISABLED,
    ObsContext,
    activate,
    current,
    deactivate,
    session,
)
from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    ProgressSink,
    read_jsonl,
)
from repro.obs.summary import (
    PHASE_SPANS,
    SpanStats,
    TraceSummary,
    aggregate_spans,
    format_event_line,
    summarize_trace,
    summary_rows,
)
from repro.obs.tracer import NOOP_TRACER, SCHEMA_VERSION, NoopTracer, Span, Tracer

__all__ = [
    "DIAG_EVENT",
    "emit_step",
    "extract_diagnostics",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DISABLED",
    "ObsContext",
    "activate",
    "current",
    "deactivate",
    "session",
    "InMemorySink",
    "JsonlSink",
    "ProgressSink",
    "read_jsonl",
    "PHASE_SPANS",
    "SpanStats",
    "TraceSummary",
    "aggregate_spans",
    "format_event_line",
    "summarize_trace",
    "summary_rows",
    "NOOP_TRACER",
    "SCHEMA_VERSION",
    "NoopTracer",
    "Span",
    "Tracer",
]
