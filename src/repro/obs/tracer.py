"""Nested span tracing with monotonic timings.

The tracer is the event *producer* of :mod:`repro.obs`: instrumented
code opens spans (``with tracer.span("tuning.suggest"): ...``) or emits
point events (``tracer.event("cell_start", cell=...)``); finished spans
and events are pushed to the configured sinks as plain dicts (the JSONL
schema documented in docs/OBSERVABILITY.md).

Two implementations share one duck-typed interface:

:class:`Tracer`
    The real thing — maintains a span stack, stamps
    ``time.perf_counter`` timings, assigns span/parent ids, and emits a
    ``span`` record when each span closes (children therefore appear
    before their parents in the event stream).

:class:`NoopTracer`
    The disabled path.  ``span()`` returns one shared, pre-allocated
    no-op context manager and ``event()`` does nothing, so instrumented
    hot loops pay a single attribute call per site — the acceptance
    bar is < 2% overhead on the suggest fast path with tracing off.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Mapping

#: Bumped when the emitted record schema changes incompatibly.
SCHEMA_VERSION = 1

Event = dict[str, object]
EmitFn = Callable[[Event], None]


class Span:
    """One live span: name, monotonic start, attributes, tree position.

    Returned by ``Tracer.span(...)`` as a context manager; attributes
    added via :meth:`set_attribute` while the span is open are included
    in the emitted record.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "t_start",
        "duration_s",
        "attrs",
        "status",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        depth: int,
        attrs: dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attrs = attrs
        self.status = "ok"
        self.t_start = 0.0
        self.duration_s = 0.0

    def set_attribute(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.t_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = time.perf_counter() - self.t_start
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("exception", exc_type.__name__)
        self._tracer._pop(self)


class Tracer:
    """Emitting tracer: spans and events go to ``emit`` callables.

    Single-threaded by design — the tuning loop, engines, and studies
    all run spans on one thread per process (process-pool workers get
    their own module state, hence their own tracer).
    """

    enabled = True

    def __init__(self, sinks: tuple[EmitFn, ...] | list[EmitFn] = ()) -> None:
        self._sinks: tuple[EmitFn, ...] = tuple(sinks)
        self._stack: list[Span] = []
        self._ids = itertools.count(1)
        #: Offset subtracted from perf_counter stamps so event times are
        #: small run-relative seconds rather than machine-uptime values.
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: object) -> Span:
        parent = self._stack[-1] if self._stack else None
        return Span(
            self,
            name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            depth=len(self._stack),
            attrs=attributes,
        )

    def event(self, name: str, **attributes: object) -> None:
        """Emit a point-in-time event tied to the current span."""
        parent = self._stack[-1] if self._stack else None
        self._emit(
            {
                "type": "event",
                "name": name,
                "t": time.perf_counter() - self._t0,
                "span_id": parent.span_id if parent else None,
                "attrs": attributes,
            }
        )

    @property
    def current_depth(self) -> int:
        return len(self._stack)

    # ------------------------------------------------------------------
    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            # Mis-nested exit (a span closed out of order); recover by
            # dropping back to the matching frame rather than corrupting
            # every later parent id.
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
        if self._stack:
            self._stack.pop()
        self._emit(
            {
                "type": "span",
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "depth": span.depth,
                "t_start": span.t_start - self._t0,
                "duration_s": span.duration_s,
                "status": span.status,
                "attrs": span.attrs,
            }
        )

    def _emit(self, record: Event) -> None:
        for sink in self._sinks:
            sink(record)


class _NoopSpan:
    """Shared do-nothing span: entering returns itself, exiting is free."""

    __slots__ = ()
    name = ""
    duration_s = 0.0

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: The singleton every NoopTracer.span() call returns.
NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Disabled tracer: zero allocation, zero emission."""

    enabled = False
    current_depth = 0

    def span(self, name: str, **attributes: object) -> _NoopSpan:
        return NOOP_SPAN

    def event(self, name: str, **attributes: object) -> None:
        pass


#: Shared disabled tracer used by the default (inactive) context.
NOOP_TRACER = NoopTracer()


def span_records(events: list[Mapping[str, object]]) -> list[Mapping[str, object]]:
    """Filter an event stream down to the finished-span records."""
    return [e for e in events if e.get("type") == "span"]
