"""OpenMetrics textfile exposition of a metrics snapshot.

``repro-experiments obs export RUN.jsonl --format openmetrics`` turns
the *latest* ``metrics`` record of a JSONL trace into the OpenMetrics
text format, suitable for the Prometheus node-exporter textfile
collector (write to ``*.prom`` in its directory, atomically).  A
long-running continuous-tuning loop that emits per-epoch snapshots
(:class:`~repro.core.continuous.ContinuousTuningLoop`) can therefore be
scraped while it runs: each ``obs export`` pass picks up the freshest
snapshot appended to the trace.

Mapping
-------
* counters → ``counter`` families with a ``_total`` sample,
* gauges → ``gauge`` families (plus a ``_max`` gauge for peaks),
* histograms → ``summary`` families: ``_count``/``_sum`` plus
  ``quantile="0.5|0.95|0.99"`` samples from the streaming log buckets
  (the bucketed representation is geometric, not cumulative-le, so the
  summary form is the faithful one).

Metric names are sanitized to the OpenMetrics grammar
(``[a-zA-Z_][a-zA-Z0-9_]*``) with the repo-wide ``repro_`` prefix:
dots map to underscores, which is injective over this codebase's
``lowercase.dotted`` metric names, and the original dotted name is
echoed in each family's HELP line.
"""

from __future__ import annotations

import math
import re
from typing import Mapping

from repro.obs.metrics import Histogram

#: Prefix applied to every exported family.
PREFIX = "repro_"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(raw: str) -> str:
    """Sanitize a dotted registry name to an OpenMetrics family name."""
    name = _NAME_RE.sub("_", raw.strip())
    if not name or not (name[0].isalpha() or name[0] == "_"):
        name = "_" + name
    return PREFIX + name


def _fmt(value: float) -> str:
    """OpenMetrics number rendering (finite shortest-round-trip)."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_openmetrics(snapshot: Mapping[str, object]) -> str:
    """Render one registry snapshot as an OpenMetrics text exposition.

    ``snapshot`` is the dict :meth:`MetricsRegistry.snapshot` produces
    (the payload of a trace's ``metrics`` record).  Ends with the
    mandatory ``# EOF`` terminator.
    """
    lines: list[str] = []
    counters = dict(snapshot.get("counters", {}))  # type: ignore[arg-type]
    for raw in sorted(counters):
        name = metric_name(raw)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"# HELP {name} repro counter {raw}")
        lines.append(f"{name}_total {_fmt(float(counters[raw]))}")
    gauges = dict(snapshot.get("gauges", {}))  # type: ignore[arg-type]
    for raw in sorted(gauges):
        name = metric_name(raw)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"# HELP {name} repro gauge {raw}")
        lines.append(f"{name} {_fmt(float(gauges[raw]))}")
    histograms = dict(snapshot.get("histograms", {}))  # type: ignore[arg-type]
    for raw in sorted(histograms):
        hist = Histogram.from_dict(histograms[raw])
        name = metric_name(raw)
        lines.append(f"# TYPE {name} summary")
        lines.append(f"# HELP {name} repro histogram {raw}")
        for q_label, q in (("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)):
            lines.append(
                f'{name}{{quantile="{q_label}"}} {_fmt(hist.quantile(q))}'
            )
        lines.append(f"{name}_count {int(hist.count)}")
        lines.append(f"{name}_sum {_fmt(hist.total)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def latest_snapshot(
    events: list[Mapping[str, object]],
) -> Mapping[str, object] | None:
    """The freshest ``metrics`` record's snapshot in a trace, if any."""
    for record in reversed(events):
        if record.get("type") == "metrics":
            snap = record.get("snapshot")
            if isinstance(snap, Mapping):
                return snap
    return None
