"""Benchmark result schema + perf-regression comparison.

Every ``benchmarks/bench_*.py`` emits one JSON document in this shape
(built via :func:`make_result`, usually through
``benchmarks/_harness.py``)::

    {
      "schema_version": 1,
      "bench": "bench_batch_eval",
      "mode": "smoke",            # or "full"
      "created_unix": 1754550000.0,
      "metrics": {
        "speedup": {"value": 12.4, "higher_is_better": true, "unit": "x"},
        "wall_seconds": {"value": 3.1, "higher_is_better": false, "unit": "s"}
      },
      "meta": {"n": 256, "python": "3.12.3"}
    }

Committed baselines live in ``benchmarks/baselines/<bench>.json``;
``repro-experiments obs perf-compare BASELINE CURRENT --threshold 0.1``
replays CI's regression gate: each metric moves against its declared
direction by more than the threshold → regression (exit 1, unless
``--warn-only`` downgrades it for smoke-run variance); a *structural*
mismatch — wrong schema version, different bench, baseline metrics
missing from the current run — is schema drift and always fails
(:class:`SchemaDriftError`), because a silently renamed metric is how a
perf trajectory goes dark.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

#: Version of the shared bench-result schema.
SCHEMA_VERSION = 1


class SchemaDriftError(Exception):
    """The two results are structurally incomparable (not a perf call)."""


def make_metric(
    value: float, *, higher_is_better: bool, unit: str = ""
) -> dict[str, object]:
    """One metric entry: value + the direction 'better' points."""
    return {
        "value": float(value),
        "higher_is_better": bool(higher_is_better),
        "unit": unit,
    }


def make_result(
    bench: str,
    *,
    mode: str,
    metrics: Mapping[str, Mapping[str, object]],
    meta: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """Assemble (and validate) one schema-conformant bench result."""
    if mode not in ("smoke", "full"):
        raise ValueError(f"mode must be 'smoke' or 'full', not {mode!r}")
    result: dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "bench": str(bench),
        "mode": mode,
        "created_unix": time.time(),
        "metrics": {k: dict(v) for k, v in metrics.items()},
        "meta": dict(meta or {}),
    }
    errors = validate_result(result)
    if errors:
        raise ValueError("invalid bench result: " + "; ".join(errors))
    return result


def validate_result(payload: object) -> list[str]:
    """Schema conformance problems (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(payload, Mapping):
        return ["result is not a JSON object"]
    if payload.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version is {payload.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    if not isinstance(payload.get("bench"), str) or not payload.get("bench"):
        errors.append("bench must be a non-empty string")
    if payload.get("mode") not in ("smoke", "full"):
        errors.append(f"mode is {payload.get('mode')!r}, expected smoke|full")
    metrics = payload.get("metrics")
    if not isinstance(metrics, Mapping) or not metrics:
        errors.append("metrics must be a non-empty object")
        return errors
    for name, entry in metrics.items():
        if not isinstance(entry, Mapping):
            errors.append(f"metric {name!r} is not an object")
            continue
        value = entry.get("value")
        if not isinstance(value, (int, float)) or not math.isfinite(
            float(value)
        ):
            errors.append(f"metric {name!r} has non-finite value {value!r}")
        if not isinstance(entry.get("higher_is_better"), bool):
            errors.append(f"metric {name!r} missing higher_is_better bool")
    return errors


@dataclass
class MetricDelta:
    """One metric's baseline-vs-current movement."""

    metric: str
    baseline: float
    current: float
    higher_is_better: bool
    #: Relative change in the *better* direction: positive = improved.
    gain: float

    @property
    def regressed_by(self) -> float:
        return -self.gain if self.gain < 0 else 0.0

    def describe(self) -> str:
        arrow = "improved" if self.gain >= 0 else "REGRESSED"
        return (
            f"{self.metric}: {self.baseline:.6g} -> {self.current:.6g} "
            f"({arrow} {abs(self.gain):.1%}, "
            f"{'higher' if self.higher_is_better else 'lower'} is better)"
        )


@dataclass
class ComparisonReport:
    """The outcome of one baseline/current comparison."""

    bench: str
    threshold: float
    deltas: list[MetricDelta] = field(default_factory=list)
    #: Metrics present in the current run only (informational — new
    #: metrics are allowed, vanished ones are schema drift).
    new_metrics: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed_by > self.threshold]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"== perf-compare: {self.bench} "
            f"(threshold {self.threshold:.0%}) =="
        ]
        lines += ["  " + d.describe() for d in self.deltas]
        for name in self.new_metrics:
            lines.append(f"  {name}: new metric (no baseline)")
        if self.ok:
            lines.append("OK: no metric regressed past the threshold")
        else:
            lines.append(
                f"FAIL: {len(self.regressions)} metric(s) regressed past "
                f"{self.threshold:.0%}: "
                + ", ".join(d.metric for d in self.regressions)
            )
        return "\n".join(lines)


def compare(
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    *,
    threshold: float = 0.10,
) -> ComparisonReport:
    """Compare two schema-conformant results; raise on schema drift.

    Regression = a metric moved against its ``higher_is_better``
    direction by more than ``threshold`` (relative).  Mode mismatch
    (smoke baseline vs full current) is tolerated but noted in the
    report via the deltas' absolute values — CI keeps modes aligned.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    for label, payload in (("baseline", baseline), ("current", current)):
        errors = validate_result(payload)
        if errors:
            raise SchemaDriftError(f"{label}: " + "; ".join(errors))
    if baseline["bench"] != current["bench"]:
        raise SchemaDriftError(
            f"bench mismatch: baseline is {baseline['bench']!r}, "
            f"current is {current['bench']!r}"
        )
    base_metrics = dict(baseline["metrics"])  # type: ignore[arg-type]
    cur_metrics = dict(current["metrics"])  # type: ignore[arg-type]
    missing = sorted(set(base_metrics) - set(cur_metrics))
    if missing:
        raise SchemaDriftError(
            "current run dropped baseline metric(s): " + ", ".join(missing)
        )
    report = ComparisonReport(
        bench=str(current["bench"]),
        threshold=threshold,
        new_metrics=sorted(set(cur_metrics) - set(base_metrics)),
    )
    for name in sorted(base_metrics):
        base_entry = dict(base_metrics[name])
        cur_entry = dict(cur_metrics[name])
        if bool(base_entry["higher_is_better"]) != bool(
            cur_entry["higher_is_better"]
        ):
            raise SchemaDriftError(
                f"metric {name!r} flipped its higher_is_better direction"
            )
        higher = bool(base_entry["higher_is_better"])
        base_v = float(base_entry["value"])  # type: ignore[arg-type]
        cur_v = float(cur_entry["value"])  # type: ignore[arg-type]
        denom = abs(base_v)
        if denom == 0.0:
            # No relative scale; any movement in the worse direction of
            # a zero baseline counts fully against the threshold.
            change = cur_v - base_v
            gain = math.copysign(math.inf, change) if change else 0.0
            gain = gain if higher else -gain
        else:
            gain = (cur_v - base_v) / denom
            if not higher:
                gain = -gain
        report.deltas.append(
            MetricDelta(
                metric=name,
                baseline=base_v,
                current=cur_v,
                higher_is_better=higher,
                gain=gain,
            )
        )
    return report


def load_result(path: str | Path) -> dict[str, object]:
    """Read one bench-result JSON document from disk."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SchemaDriftError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SchemaDriftError(f"{path}: not a JSON object")
    return payload
