"""Counters, gauges, and streaming histograms with snapshot/merge.

The registry is the *aggregating* half of :mod:`repro.obs`: instrumented
code bumps named counters, sets gauges, and records durations into
histograms; a :meth:`MetricsRegistry.snapshot` is a plain JSON-safe dict
that can be stored in :class:`~repro.core.history.TuningResult.metadata`
and later :meth:`merged <MetricsRegistry.merge_snapshot>` across
experiment cells (including cells that ran in worker processes and came
back as snapshots).

Histograms are log-bucketed (HDR-style): values land in geometric
buckets growing by :data:`Histogram.GROWTH` per step, so quantiles are
answered from O(hundreds) of integer counts with bounded *relative*
error (≈ half the bucket width, ~2.5%) regardless of how many samples
were recorded — and two histograms merge by adding bucket counts.
"""

from __future__ import annotations

import math
from typing import Mapping

Snapshot = dict[str, object]


class Counter:
    """Monotonic named count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value (plus the max seen, for peak tracking)."""

    __slots__ = ("value", "max_value", "_set")

    def __init__(self) -> None:
        self.value = 0.0
        self.max_value = -math.inf
        self._set = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self.max_value = max(self.max_value, self.value)
        self._set = True


class Histogram:
    """Streaming log-bucketed histogram with p50/p95/p99 quantiles.

    Positive values fall in bucket ``floor(log(v) / log(GROWTH))``;
    zeros and negatives are counted separately (durations and sizes are
    the intended payload, so they are rare).  Quantile lookups walk the
    cumulative counts and return the geometric midpoint of the target
    bucket, clamped to the observed min/max.
    """

    GROWTH = 1.05
    _LOG_GROWTH = math.log(GROWTH)

    __slots__ = ("count", "total", "min", "max", "zeros", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.zeros = 0  # values <= 0
        self.buckets: dict[int, int] = {}

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if value <= 0.0:
            self.zeros += 1
            return
        idx = math.floor(math.log(value) / self._LOG_GROWTH)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]) of the recorded values."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = self.zeros
        if seen and rank <= seen:
            # Inside the non-positive mass; best available answer is the
            # recorded minimum.
            return min(self.min, 0.0)
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if rank <= seen:
                mid = math.exp((idx + 0.5) * self._LOG_GROWTH)
                return min(max(mid, self.min), self.max)
        return self.max

    def percentiles(self) -> dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # ------------------------------------------------------------------
    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.zeros += other.zeros
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n

    def as_dict(self) -> Snapshot:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "zeros": self.zeros,
            # JSON object keys are strings; from_dict undoes this.
            "buckets": {str(k): v for k, v in self.buckets.items()},
            **self.percentiles(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Histogram":
        hist = cls()
        hist.count = int(data.get("count", 0))
        hist.total = float(data.get("total", 0.0))
        if hist.count:
            hist.min = float(data.get("min", math.inf))
            hist.max = float(data.get("max", -math.inf))
        hist.zeros = int(data.get("zeros", 0))
        buckets = data.get("buckets", {})
        if isinstance(buckets, Mapping):
            hist.buckets = {int(k): int(v) for k, v in buckets.items()}
        return hist


class MetricsRegistry:
    """Named counters/gauges/histograms with get-or-create accessors."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    # ------------------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """JSON-serializable state of every metric."""
        return {
            "counters": {k: c.value for k, c in self.counters.items()},
            "gauges": {k: g.value for k, g in self.gauges.items()},
            "histograms": {k: h.as_dict() for k, h in self.histograms.items()},
        }

    def merge_snapshot(self, snap: Mapping[str, object]) -> None:
        """Fold another registry's snapshot into this one.

        Counters add, gauges last-write-wins, histograms merge bucket
        counts — the cross-cell aggregation path for studies whose cells
        ran in separate worker processes.
        """
        for name, value in dict(snap.get("counters", {})).items():  # type: ignore[union-attr]
            self.counter(name).inc(int(value))
        for name, value in dict(snap.get("gauges", {})).items():  # type: ignore[union-attr]
            self.gauge(name).set(float(value))
        for name, data in dict(snap.get("histograms", {})).items():  # type: ignore[union-attr]
            self.histogram(name).merge(Histogram.from_dict(data))

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_snapshot(other.snapshot())


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0.0
    max_value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    count = 0
    total = 0.0
    mean = 0.0

    def record(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}


class NullRegistry:
    """Disabled registry: every accessor returns a shared no-op metric."""

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    counters: dict[str, Counter] = {}
    gauges: dict[str, Gauge] = {}
    histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> _NullCounter:
        return self._COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return self._GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return self._HISTOGRAM

    def snapshot(self) -> Snapshot:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, snap: Mapping[str, object]) -> None:
        pass


#: Shared disabled registry used by the default (inactive) context.
NULL_REGISTRY = NullRegistry()
