"""Event sinks: in-memory, JSONL file, and live progress rendering.

A sink is anything callable as ``sink(record: dict)``; the tracer calls
every configured sink with each finished span / point event, and the
session adds ``manifest`` and ``metrics`` records around them.

:class:`InMemorySink`
    Collects records in a list (tests, programmatic consumers).

:class:`JsonlSink`
    One JSON object per line, append-only — the durable run trace that
    ``repro-experiments obs summary`` and ``obs tail`` read back.

:class:`ProgressSink`
    Human-readable live reporting for the experiment runner: listens for
    ``study_start`` / ``cell_start`` / ``cell_finish`` events and renders
    per-cell progress with an ETA extrapolated from completed-cell
    durations.  It doubles as the CLI's verbosity-aware console
    (``result``/``info``/``detail``), so `print()` never appears outside
    ``cli.py``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import IO, Mapping

import numpy as np


def _json_default(obj: object) -> object:
    """Serialize numpy scalars/arrays and other stragglers.

    Explicit about the numpy taxonomy: ``np.bool_`` → bool,
    ``np.integer`` → int, ``np.floating`` → float, ``np.ndarray`` →
    nested list (even for single-element arrays, which ``.item()`` would
    silently collapse to a scalar).  Anything else falls back to the
    duck-typed ``item()``/``tolist()`` protocols, then ``repr``.
    """
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    fn = getattr(obj, "item", None)  # other zero-dim scalar wrappers
    if callable(fn):
        try:
            return fn()
        except (TypeError, ValueError):
            pass
    if hasattr(obj, "tolist"):
        return obj.tolist()
    return repr(obj)


class InMemorySink:
    """Collect every record in ``self.events``."""

    def __init__(self) -> None:
        self.events: list[dict[str, object]] = []

    def __call__(self, record: Mapping[str, object]) -> None:
        self.events.append(dict(record))

    def close(self) -> None:
        pass


class JsonlSink:
    """Write records to ``path`` as one JSON object per line.

    Truncates by default — a trace file is one run's event log; pass
    ``mode="a"`` to accumulate several sessions into one file.
    """

    def __init__(self, path: str | Path, *, mode: str = "w") -> None:
        if mode not in ("w", "a"):
            raise ValueError("mode must be 'w' or 'a'")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = self.path.open(mode, encoding="utf-8")
        self.n_written = 0

    def __call__(self, record: Mapping[str, object]) -> None:
        if self._handle is None:
            raise RuntimeError(f"JsonlSink({self.path}) is closed")
        self._handle.write(json.dumps(record, default=_json_default) + "\n")
        self.n_written += 1

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(
    path: str | Path, *, strict: bool = True
) -> list[dict[str, object]]:
    """Load a JSONL trace back into a list of event dicts.

    Blank lines are skipped.  A torn *final* line — the partial write of
    a killed (or still-running) producer — is always dropped silently; a
    re-read after the writer's next flush picks the completed line up.
    Any other malformed line raises ``ValueError`` with its line number
    under ``strict=True`` (the default), or is skipped under
    ``strict=False`` — the live-tailing mode, where a crashed-then-
    reopened ``mode="a"`` trace can legitimately carry a torn line
    mid-file and a follower must keep going rather than die.
    """
    events: list[dict[str, object]] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                break  # torn tail write; retried on the next read
            if strict:
                raise ValueError(
                    f"{path}:{lineno}: invalid JSONL: {exc}"
                ) from exc
    return events


#: Verbosity levels for :class:`ProgressSink`.
QUIET, NORMAL, VERBOSE = 0, 1, 2


class ProgressSink:
    """Verbosity-aware console + live study progress with per-cell ETA.

    Results (the exhibits themselves) always go to ``out`` (stdout);
    informational lines respect the verbosity; progress lines go to
    ``err`` (stderr) so piped stdout stays clean.
    """

    def __init__(
        self,
        verbosity: int = NORMAL,
        *,
        out: IO[str] | None = None,
        err: IO[str] | None = None,
    ) -> None:
        self.verbosity = verbosity
        self._out = out if out is not None else sys.stdout
        self._err = err if err is not None else sys.stderr
        # Study progress state, keyed by study label.
        self._totals: dict[str, int] = {}
        self._done: dict[str, int] = {}
        self._durations: dict[str, list[float]] = {}
        self._started: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Console API (replaces bare print() outside cli.py)
    # ------------------------------------------------------------------
    def result(self, text: str = "") -> None:
        """Exhibit output: always printed, even under --quiet."""
        self._out.write(text + "\n")

    def info(self, text: str) -> None:
        if self.verbosity >= NORMAL:
            self._out.write(text + "\n")

    def detail(self, text: str) -> None:
        if self.verbosity >= VERBOSE:
            self._out.write(text + "\n")

    # ------------------------------------------------------------------
    # Event sink API
    # ------------------------------------------------------------------
    def __call__(self, record: Mapping[str, object]) -> None:
        if record.get("type") != "event":
            return
        name = record.get("name")
        attrs = record.get("attrs")
        attrs = attrs if isinstance(attrs, Mapping) else {}
        if name == "study_start":
            study = str(attrs.get("study", "study"))
            self._totals[study] = int(attrs.get("n_cells", 0))  # type: ignore[arg-type]
            self._done[study] = 0
            self._durations[study] = []
            self._started[study] = time.perf_counter()
            self._progress(f"[{study}] {self._totals[study]} cells queued")
        elif name == "cell_start":
            study = str(attrs.get("study", "study"))
            if self.verbosity >= VERBOSE:
                self._progress(f"[{study}] cell {attrs.get('cell', '?')} started")
        elif name == "cell_finish":
            self._on_cell_finish(attrs)
        elif name == "study_finish":
            study = str(attrs.get("study", "study"))
            elapsed = time.perf_counter() - self._started.get(study, time.perf_counter())
            self._progress(f"[{study}] done in {elapsed:.1f}s")

    def _on_cell_finish(self, attrs: Mapping[str, object]) -> None:
        study = str(attrs.get("study", "study"))
        seconds = float(attrs.get("seconds", 0.0))  # type: ignore[arg-type]
        self._done[study] = self._done.get(study, 0) + 1
        self._durations.setdefault(study, []).append(seconds)
        done, total = self._done[study], self._totals.get(study, 0)
        eta = self.eta_seconds(study)
        eta_text = f"  eta {eta:.0f}s" if eta is not None else ""
        self._progress(
            f"[{study}] {done}/{total or '?'} cells  "
            f"({attrs.get('cell', '?')}: {seconds:.1f}s){eta_text}"
        )

    def eta_seconds(self, study: str) -> float | None:
        """Remaining-cells estimate from mean completed-cell duration."""
        durations = self._durations.get(study) or []
        total = self._totals.get(study, 0)
        done = self._done.get(study, 0)
        if not durations or total <= done:
            return None
        return (total - done) * (sum(durations) / len(durations))

    def _progress(self, text: str) -> None:
        if self.verbosity >= NORMAL:
            self._err.write(text + "\n")
            self._err.flush()

    def close(self) -> None:
        pass
