"""The Sundog entity-ranking topology (paper Figure 2).

Three phases:

1. **Reading, preprocessing and counting** — lines are read from HDFS
   (HDFS1), lines without dictionary terms are dropped (Filter), term
   statistics go to the key-value store (CNT1 → DKVS1) while entity
   pairs are built in preprocessing steps (PPS1–PPS3) and counted
   (CNT2–CNT5).
2. **Feature computation** — feature metrics from the counter values
   (FC1–FC7).
3. **Ranking** — features merged (M1–M3), complemented with semi-static
   features from the key-value store (DKVS2) and scored with a decision
   tree (R1), results written back to HDFS (HDFS2, HDFS3).

The evaluation copy replaces DKVS calls with dummies returning 1 and
reads common crawl text, so DKVS1/DKVS2 appear as cheap lookup/write
bolts and the workload module controls filter selectivity and line
sizes.

Per-operator costs are derived from *work shares*: each operator is
assigned a fraction of the per-ingested-tuple compute budget
(:data:`TOTAL_UNITS_PER_TUPLE`), and its per-tuple cost is that share
divided by its relative tuple volume.  The budget is the calibration
anchor that places Sundog throughput in the paper's regime (hundreds of
thousands to ~1.7M tuples/s on 320 cores, Figure 8); EXPERIMENTS.md
documents the calibration.
"""

from __future__ import annotations

import numpy as np

from repro.storm.config import TopologyConfig
from repro.storm.grouping import Grouping
from repro.storm.topology import Edge, OperatorKind, OperatorSpec, Topology
from repro.sundog.workload import CommonCrawlWorkload

#: Compute units (≈ core-milliseconds) Sundog spends per ingested line,
#: summed over all operators.  320 cores / 0.135 units ≈ a 2.4M tuples/s
#: CPU ceiling; with scheduling overheads this puts the developers'
#: manual configuration near the paper's 0.6M tuples/s and the tuned
#: configurations near its 1.7M tuples/s (Figure 8a anchors).
TOTAL_UNITS_PER_TUPLE = 0.135

#: Relative work shares per operator (normalized internally).  Roughly
#: flat across the 24 operators — Sundog was hand-balanced by its
#: developers — with the regex Filter and the decision-tree ranker R1
#: slightly heavier and the dummy DKVS stages lighter.
WORK_SHARES: dict[str, float] = {
    "HDFS1": 0.040,
    "Filter": 0.050,
    "CNT1": 0.040,
    "DKVS1": 0.020,
    "PPS1": 0.042,
    "PPS2": 0.042,
    "PPS3": 0.042,
    "CNT2": 0.042,
    "CNT3": 0.042,
    "CNT4": 0.042,
    "CNT5": 0.042,
    "FC1": 0.044,
    "FC2": 0.044,
    "FC3": 0.044,
    "FC4": 0.044,
    "FC5": 0.044,
    "FC6": 0.044,
    "FC7": 0.044,
    "DKVS2": 0.020,
    "M1": 0.042,
    "M2": 0.042,
    "M3": 0.042,
    "R1": 0.050,
    "HDFS2": 0.016,
    "HDFS3": 0.016,
}

#: Edges of Figure 2 (source, destination).
EDGES: tuple[tuple[str, str], ...] = (
    ("HDFS1", "Filter"),
    # Term statistics path: count term occurrences, store to the DKVS.
    ("Filter", "CNT1"),
    ("CNT1", "DKVS1"),
    # Entity-pair preprocessing pipeline.
    ("Filter", "PPS1"),
    ("PPS1", "PPS2"),
    ("PPS2", "PPS3"),
    # Per-entity / per-pair counters.
    ("PPS3", "CNT2"),
    ("PPS3", "CNT3"),
    ("PPS3", "CNT4"),
    ("PPS3", "CNT5"),
    # Phase 2: feature computations from counter values.
    ("CNT2", "FC1"),
    ("CNT2", "FC2"),
    ("CNT3", "FC3"),
    ("CNT3", "FC4"),
    ("CNT4", "FC5"),
    ("CNT5", "FC6"),
    ("CNT5", "FC7"),
    # Phase 3: merging, semi-static feature lookup, ranking, output.
    ("FC1", "M1"),
    ("FC2", "M1"),
    ("FC3", "M1"),
    ("FC4", "M2"),
    ("FC5", "M2"),
    ("FC6", "M3"),
    ("FC7", "M3"),
    ("M3", "DKVS2"),
    ("M1", "R1"),
    ("M2", "R1"),
    ("DKVS2", "R1"),
    ("R1", "HDFS2"),
    ("R1", "HDFS3"),
)

#: Selectivities: the Filter drops lines without dictionary terms; the
#: pair-preprocessing expands entities into pairs; counters aggregate.
SELECTIVITIES: dict[str, float] = {
    "Filter": 0.35,  # overwritten from the workload when provided
    "PPS1": 1.4,  # entity pairs out of entities
    "CNT1": 0.5,
    "CNT2": 0.6,
    "CNT3": 0.6,
    "CNT4": 0.6,
    "CNT5": 0.6,
    "M1": 0.8,
    "M2": 0.8,
    "M3": 0.8,
}

#: Tuple sizes are *effective on-wire* bytes per tuple after Trident's
#: batch framing amortizes headers — calibrated so the simulated network
#: load per worker lands in Figure 3's single-digit MB/s band.  Raw
#: lines are workload-sized; derived records (counters, features) are
#: smaller.
DERIVED_TUPLE_BYTES = 50


def sundog_topology(
    workload: CommonCrawlWorkload | None = None,
    *,
    seed: int = 0,
) -> Topology:
    """Build the Sundog topology, optionally calibrated to a workload.

    When a workload is given, the Filter selectivity and raw-line tuple
    size are measured from generated text rather than taken from the
    defaults.
    """
    selectivities = dict(SELECTIVITIES)
    line_bytes = 70
    if workload is not None:
        rng = np.random.default_rng(seed)
        selectivities["Filter"] = workload.measure_selectivity(4000, rng)
        line_bytes = int(round(workload.average_tuple_bytes(4000, rng)))

    names = list(WORK_SHARES)
    children = {name for _, name in EDGES}

    # First pass: structure only, to obtain tuple volumes.
    skeleton_ops = [
        OperatorSpec(
            name=name,
            kind=OperatorKind.SPOUT if name not in children else OperatorKind.BOLT,
            cost=1.0,
            selectivity=selectivities.get(name, 1.0),
            tuple_bytes=line_bytes if name in ("HDFS1", "Filter") else DERIVED_TUPLE_BYTES,
        )
        for name in names
    ]
    edges = [Edge(src=s, dst=d, grouping=Grouping.SHUFFLE) for s, d in EDGES]
    skeleton = Topology("sundog", skeleton_ops, edges)
    volumes = skeleton.volumes()

    # Second pass: derive per-tuple costs from the work shares.
    share_total = sum(WORK_SHARES.values())
    updates: dict[str, dict[str, object]] = {}
    for name in names:
        share = WORK_SHARES[name] / share_total
        units = share * TOTAL_UNITS_PER_TUPLE
        volume = max(volumes[name], 1e-9)
        updates[name] = {"cost": units / volume}
    return skeleton.with_operator_updates(updates)


def sundog_default_config(num_workers: int = 80) -> TopologyConfig:
    """The Sundog developers' manual configuration (paper §V-D).

    Batch size 50 000 lines, batch parallelism 5, a worker thread pool
    of 8 (twice the 4 cores), Storm's default one acker per worker, one
    receiver thread — the baseline every Figure 8 experiment starts
    from.
    """
    return TopologyConfig(
        parallelism_hints={},
        max_tasks=None,
        batch_size=50_000,
        batch_parallelism=5,
        worker_threads=8,
        receiver_threads=1,
        ackers=None,  # Storm default: one per worker
        num_workers=num_workers,
    )


#: Convenience instance of the developers' manual configuration.
SUNDOG_DEFAULT_CONFIG = sundog_default_config()
