"""Sundog: the paper's real-world entity-ranking topology (§IV-A).

The original Sundog consumes search logs and ranks entity relationships
by co-occurrence statistics.  The paper's evaluation copy reads a common
crawl dump instead and stubs out the distributed key-value store with
dummy calls — changes that invalidate the rankings but preserve the
workload shape.  This package reproduces that evaluation copy:

* :mod:`repro.sundog.topology` — the Figure 2 operator graph (three
  phases: read/preprocess/count, feature computation, ranking),
* :mod:`repro.sundog.workload` — a synthetic common-crawl-like text
  workload that sets the filter selectivity and tuple sizes.
"""

from repro.sundog.topology import (
    SUNDOG_DEFAULT_CONFIG,
    sundog_default_config,
    sundog_topology,
)
from repro.sundog.workload import CommonCrawlWorkload

__all__ = [
    "CommonCrawlWorkload",
    "SUNDOG_DEFAULT_CONFIG",
    "sundog_default_config",
    "sundog_topology",
]
