"""Real operator logic for Sundog's local-mode execution.

The performance engines treat operators as (cost, selectivity) pairs;
this module provides actual implementations for every Figure 2 operator
so the topology can run end-to-end on generated common-crawl-like text
in :class:`~repro.storm.local.LocalTopologyRunner`.  Faithful to the
paper's evaluation copy: the distributed key-value store is stubbed
with "dummy methods which always return 1" (§IV-A) — which invalidates
the rankings but preserves the workload shape.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.storm.local import BatchAwareBolt, SpoutSource
from repro.storm.tuples import Tuple
from repro.sundog.workload import CommonCrawlWorkload

import numpy as np


def hdfs_line_source(
    workload: CommonCrawlWorkload, seed: int = 0, chunk: int = 512
) -> SpoutSource:
    """HDFS1: stream common-crawl-like lines, regenerated on demand."""
    rng = np.random.default_rng(seed)

    def generate():
        while True:
            for line in workload.sample_lines(chunk, rng):
                yield {"line": line}

    return generate()


class FilterBolt:
    """Filter: drop lines without at least one dictionary term."""

    def __init__(self, workload: CommonCrawlWorkload) -> None:
        self.workload = workload

    def __call__(self, item: Tuple) -> Iterable[Mapping[str, object]]:
        line = str(item["line"])
        if self.workload.matches(line):
            return [{"line": line}]
        return []


class TermCountBolt(BatchAwareBolt):
    """CNT1: count term occurrences per batch (stored to DKVS1)."""

    def __init__(self, workload: CommonCrawlWorkload) -> None:
        self.workload = workload
        self._counts: dict[str, int] = {}

    def begin_batch(self, batch_id: int) -> None:
        self._counts = {}

    def process(self, item: Tuple) -> Iterable[Mapping[str, object]]:
        tokens = set(str(item["line"]).lower().split())
        for term in self.workload.dictionary:
            if term in tokens:
                self._counts[term] = self._counts.get(term, 0) + 1
        return []

    def end_batch(self) -> Iterable[Mapping[str, object]]:
        return [
            {"term": term, "count": count}
            for term, count in sorted(self._counts.items())
        ]


class DkvsWriteBolt:
    """DKVS1 / HDFS2 / HDFS3: terminal writers (dummy side effects)."""

    def __init__(self) -> None:
        self.written = 0

    def __call__(self, item: Tuple) -> Iterable[Mapping[str, object]]:
        self.written += 1
        return []


class EntityExtractBolt:
    """PPS1: build entity pairs from the terms in a line.

    All dictionary terms found in the line are paired; a line with one
    term contributes a (term, term-context) pseudo-pair so downstream
    stages always see work, as in the modified Sundog where rankings no
    longer matter.
    """

    def __init__(self, workload: CommonCrawlWorkload) -> None:
        self.workload = workload

    def __call__(self, item: Tuple) -> Iterable[Mapping[str, object]]:
        line = str(item["line"])
        tokens = line.lower().split()
        token_set = set(tokens)
        terms = sorted(t for t in self.workload.dictionary if t in token_set)
        rows: list[Mapping[str, object]] = []
        if len(terms) >= 2:
            for i, a in enumerate(terms):
                for b in terms[i + 1 :]:
                    rows.append({"entity_a": a, "entity_b": b, "line": line})
        elif terms:
            context = tokens[0] if tokens else "ctx"
            rows.append({"entity_a": terms[0], "entity_b": context, "line": line})
        return rows


class NormalizePairBolt:
    """PPS2: canonical pair ordering plus a stable pair key."""

    def __call__(self, item: Tuple) -> Iterable[Mapping[str, object]]:
        a, b = str(item["entity_a"]), str(item["entity_b"])
        a, b = (a, b) if a <= b else (b, a)
        return [{"pair": f"{a}|{b}", "entity_a": a, "entity_b": b}]


class PartitionPairBolt:
    """PPS3: attach the partition key downstream counters group on."""

    def __init__(self, n_partitions: int = 8) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        self.n_partitions = n_partitions

    def __call__(self, item: Tuple) -> Iterable[Mapping[str, object]]:
        pair = str(item["pair"])
        return [
            {
                "pair": pair,
                "partition": hash(pair) % self.n_partitions,
            }
        ]


class PairCountBolt(BatchAwareBolt):
    """CNT2–CNT5: per-batch counts of events per entity pair."""

    def __init__(self, metric: str) -> None:
        self.metric = metric
        self._counts: dict[str, int] = {}

    def begin_batch(self, batch_id: int) -> None:
        self._counts = {}

    def process(self, item: Tuple) -> Iterable[Mapping[str, object]]:
        pair = str(item["pair"])
        self._counts[pair] = self._counts.get(pair, 0) + 1
        return []

    def end_batch(self) -> Iterable[Mapping[str, object]]:
        return [
            {"pair": pair, "metric": self.metric, "count": count}
            for pair, count in sorted(self._counts.items())
        ]


def _dummy_dkvs_lookup(_key: object) -> int:
    """The paper's DKVS stub: "dummy methods which always return 1"."""
    return 1


class FeatureComputeBolt:
    """FC1–FC7: one feature metric from a counter value."""

    def __init__(self, feature: str) -> None:
        self.feature = feature

    def __call__(self, item: Tuple) -> Iterable[Mapping[str, object]]:
        count = int(item["count"])  # type: ignore[arg-type]
        baseline = _dummy_dkvs_lookup(item["pair"])
        value = math.log1p(count) / (1.0 + baseline)
        return [{"pair": item["pair"], "feature": self.feature, "value": value}]


class MergeFeaturesBolt(BatchAwareBolt):
    """M1–M3: merge feature values per pair within a batch."""

    def __init__(self) -> None:
        self._merged: dict[str, dict[str, float]] = {}

    def begin_batch(self, batch_id: int) -> None:
        self._merged = {}

    def process(self, item: Tuple) -> Iterable[Mapping[str, object]]:
        pair = str(item["pair"])
        features = self._merged.setdefault(pair, {})
        features[str(item["feature"])] = float(item["value"])  # type: ignore[arg-type]
        return []

    def end_batch(self) -> Iterable[Mapping[str, object]]:
        return [
            {"pair": pair, "features": dict(features)}
            for pair, features in sorted(self._merged.items())
        ]


class SemiStaticLookupBolt:
    """DKVS2: complement features with semi-static ones (dummy = 1)."""

    def __call__(self, item: Tuple) -> Iterable[Mapping[str, object]]:
        features = dict(item["features"])  # type: ignore[arg-type]
        features["semantic_type"] = float(_dummy_dkvs_lookup(item["pair"]))
        return [{"pair": item["pair"], "features": features}]


class RankingBolt:
    """R1: score each pair with a small decision tree (§IV-A phase 3)."""

    def __call__(self, item: Tuple) -> Iterable[Mapping[str, object]]:
        features: Mapping[str, float] = item["features"]  # type: ignore[assignment]
        total = sum(features.values())
        # A hand-rolled two-level decision tree; the exact shape is
        # irrelevant (the evaluation copy's rankings are invalid by
        # construction) but it is real branching compute.
        if total > 2.0:
            score = 0.9 if features.get("semantic_type", 0.0) > 0.5 else 0.7
        else:
            score = 0.4 if len(features) > 3 else 0.1
        return [{"pair": item["pair"], "score": score}]


def sundog_logic(workload: CommonCrawlWorkload) -> dict[str, object]:
    """Bolt-logic registry covering every Figure 2 operator."""
    return {
        "Filter": FilterBolt(workload),
        "CNT1": TermCountBolt(workload),
        "DKVS1": DkvsWriteBolt(),
        "PPS1": EntityExtractBolt(workload),
        "PPS2": NormalizePairBolt(),
        "PPS3": PartitionPairBolt(),
        "CNT2": PairCountBolt("search_events"),
        "CNT3": PairCountBolt("unique_users"),
        "CNT4": PairCountBolt("entity_events"),
        "CNT5": PairCountBolt("pair_events"),
        "FC1": FeatureComputeBolt("cooccurrence"),
        "FC2": FeatureComputeBolt("pmi"),
        "FC3": FeatureComputeBolt("user_diversity"),
        "FC4": FeatureComputeBolt("recency"),
        "FC5": FeatureComputeBolt("entity_freq"),
        "FC6": FeatureComputeBolt("pair_freq"),
        "FC7": FeatureComputeBolt("jaccard"),
        "DKVS2": SemiStaticLookupBolt(),
        "M1": MergeFeaturesBolt(),
        "M2": MergeFeaturesBolt(),
        "M3": MergeFeaturesBolt(),
        "R1": RankingBolt(),
        "HDFS2": DkvsWriteBolt(),
        "HDFS3": DkvsWriteBolt(),
    }
