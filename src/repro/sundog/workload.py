"""Synthetic common-crawl-like workload for Sundog.

The paper feeds Sundog "a dump of the common crawl data" (§IV-A) — lines
of web text filtered against a predefined entity dictionary.  We have no
common crawl dump offline, so this module generates text with the same
workload-relevant characteristics: a heavy-tailed line-length
distribution and a controllable fraction of lines containing dictionary
terms (which determines the Filter operator's selectivity).  Rankings
are meaningless either way — the paper already replaced the key-value
store with dummies — only the load shape matters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: A small built-in entity dictionary in the spirit of Sundog's
#: predefined term list.
DEFAULT_DICTIONARY: tuple[str, ...] = (
    "zurich",
    "storm",
    "hadoop",
    "cluster",
    "stream",
    "entity",
    "ranking",
    "semantic",
    "crawl",
    "topology",
)

#: Filler vocabulary for non-matching text.
_FILLER: tuple[str, ...] = (
    "the",
    "and",
    "with",
    "data",
    "from",
    "page",
    "link",
    "text",
    "site",
    "news",
    "time",
    "year",
    "world",
    "value",
    "index",
)


@dataclass
class CommonCrawlWorkload:
    """Generator of common-crawl-like text lines.

    Parameters
    ----------
    dictionary:
        Entity terms the Filter stage matches against.
    match_fraction:
        Fraction of lines containing at least one dictionary term —
        this *is* the Filter operator's selectivity.
    mean_line_bytes:
        Mean *effective on-wire* line size; lengths are lognormal (web
        text is heavy-tailed).  Calibrated with Trident batch framing
        amortized in, so simulated network load matches Figure 3's
        band.
    sigma:
        Lognormal shape parameter.
    """

    dictionary: tuple[str, ...] = DEFAULT_DICTIONARY
    match_fraction: float = 0.35
    mean_line_bytes: float = 70.0
    sigma: float = 0.6

    def __post_init__(self) -> None:
        if not self.dictionary:
            raise ValueError("dictionary must be non-empty")
        if not 0.0 <= self.match_fraction <= 1.0:
            raise ValueError("match_fraction must be in [0, 1]")
        if self.mean_line_bytes <= 0:
            raise ValueError("mean_line_bytes must be > 0")
        if self.sigma <= 0:
            raise ValueError("sigma must be > 0")

    # ------------------------------------------------------------------
    def line_lengths(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``n`` line lengths in bytes (lognormal, mean preserved)."""
        mu = np.log(self.mean_line_bytes) - self.sigma**2 / 2.0
        return np.maximum(8, rng.lognormal(mu, self.sigma, size=n)).astype(int)

    def sample_lines(self, n: int, rng: np.random.Generator) -> list[str]:
        """Generate ``n`` text lines; ~``match_fraction`` contain a term."""
        lengths = self.line_lengths(n, rng)
        matches = rng.random(n) < self.match_fraction
        lines: list[str] = []
        for length, match in zip(lengths, matches):
            words: list[str] = []
            size = 0
            while size < length:
                word = _FILLER[int(rng.integers(len(_FILLER)))]
                words.append(word)
                size += len(word) + 1
            if match:
                term = self.dictionary[int(rng.integers(len(self.dictionary)))]
                pos = int(rng.integers(len(words) + 1))
                words.insert(pos, term)
            lines.append(" ".join(words))
        return lines

    def matches(self, line: str) -> bool:
        """The Filter predicate: does the line contain a dictionary term?"""
        tokens = set(line.lower().split())
        return any(term in tokens for term in self.dictionary)

    def measure_selectivity(self, n: int, rng: np.random.Generator) -> float:
        """Empirical Filter selectivity over ``n`` generated lines."""
        if n < 1:
            raise ValueError("n must be >= 1")
        lines = self.sample_lines(n, rng)
        return sum(self.matches(line) for line in lines) / n

    def average_tuple_bytes(self, n: int, rng: np.random.Generator) -> float:
        """Mean serialized line size over ``n`` samples."""
        return float(np.mean([len(line) for line in self.sample_lines(n, rng)]))
