"""Synthetic common-crawl-like workload for Sundog.

The paper feeds Sundog "a dump of the common crawl data" (§IV-A) — lines
of web text filtered against a predefined entity dictionary.  We have no
common crawl dump offline, so this module generates text with the same
workload-relevant characteristics: a heavy-tailed line-length
distribution and a controllable fraction of lines containing dictionary
terms (which determines the Filter operator's selectivity).  Rankings
are meaningless either way — the paper already replaced the key-value
store with dummies — only the load shape matters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: A small built-in entity dictionary in the spirit of Sundog's
#: predefined term list.
DEFAULT_DICTIONARY: tuple[str, ...] = (
    "zurich",
    "storm",
    "hadoop",
    "cluster",
    "stream",
    "entity",
    "ranking",
    "semantic",
    "crawl",
    "topology",
)

#: Filler vocabulary for non-matching text.
_FILLER: tuple[str, ...] = (
    "the",
    "and",
    "with",
    "data",
    "from",
    "page",
    "link",
    "text",
    "site",
    "news",
    "time",
    "year",
    "world",
    "value",
    "index",
)


@dataclass
class CommonCrawlWorkload:
    """Generator of common-crawl-like text lines.

    Parameters
    ----------
    dictionary:
        Entity terms the Filter stage matches against.
    match_fraction:
        Fraction of lines containing at least one dictionary term —
        this *is* the Filter operator's selectivity.
    mean_line_bytes:
        Mean *effective on-wire* line size; lengths are lognormal (web
        text is heavy-tailed).  Calibrated with Trident batch framing
        amortized in, so simulated network load matches Figure 3's
        band.
    sigma:
        Lognormal shape parameter.
    """

    dictionary: tuple[str, ...] = DEFAULT_DICTIONARY
    match_fraction: float = 0.35
    mean_line_bytes: float = 70.0
    sigma: float = 0.6

    def __post_init__(self) -> None:
        if not self.dictionary:
            raise ValueError("dictionary must be non-empty")
        if not 0.0 <= self.match_fraction <= 1.0:
            raise ValueError("match_fraction must be in [0, 1]")
        if self.mean_line_bytes <= 0:
            raise ValueError("mean_line_bytes must be > 0")
        if self.sigma <= 0:
            raise ValueError("sigma must be > 0")
        self._calibrated_mu: float | None = None

    # ------------------------------------------------------------------
    @property
    def _mu(self) -> float:
        if self._calibrated_mu is None:
            self._calibrated_mu = self._calibrate_mu()
        return self._calibrated_mu

    def _calibrate_mu(self) -> float:
        """Fit the lognormal location so *realized* lines hit the target.

        :meth:`sample_lines` realizes a drawn target length by
        appending whole filler words until the target is reached
        (overshooting by part of a word on average), clamps draws below
        8 bytes, truncates to int, and inserts a dictionary term into
        matching lines.  Every step but the truncation biases the
        realized mean upward, so drawing from the textbook
        ``log(mean) - sigma**2/2`` location lands
        :meth:`average_tuple_bytes` several percent above
        ``mean_line_bytes``.  This simulates the realization pipeline —
        word steps and term insertion in expectation, no string
        building — on a dedicated fixed stream and walks ``mu`` by
        fixed-point iteration until the simulated realized mean matches
        the target.
        """
        rng = np.random.default_rng(0x5D0C)
        # Antithetic, exactly-standardized normals: the realized mean of
        # a heavy-tailed lognormal converges slowly under plain Monte
        # Carlo, and a percent of sampling error here becomes a percent
        # of calibration bias.
        half = rng.normal(size=8192)
        half = (half - half.mean()) / half.std()
        z = np.concatenate([half, -half])
        n = z.size
        steps = np.array([len(word) + 1 for word in _FILLER])
        mu = float(np.log(self.mean_line_bytes) - self.sigma**2 / 2.0)
        first = np.maximum(8, np.exp(mu + self.sigma * z)).astype(int)
        # Word pool sized for the initial (largest) draws; calibration
        # only shrinks lengths from there, plus margin for wobble.
        n_words = int(first.max() // steps.min()) + 10
        cums = rng.choice(steps, size=(n, n_words)).cumsum(axis=1)
        extra = self.match_fraction * float(
            np.mean([len(term) + 1 for term in self.dictionary])
        )
        for _ in range(8):
            lengths = np.maximum(8, np.exp(mu + self.sigma * z)).astype(int)
            idx = np.argmax(cums >= lengths[:, None], axis=1)
            realized = cums[np.arange(n), idx] - 1.0 + extra
            ratio = float(realized.mean()) / self.mean_line_bytes
            if abs(ratio - 1.0) < 1e-4:
                break
            mu -= float(np.log(ratio))
        return mu

    def line_lengths(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``n`` *target* line lengths in bytes.

        Lognormal (web text is heavy-tailed), with the location
        calibrated down so that the lines realized from these targets —
        clamped, whole-word overshot, term-injected — average
        ``mean_line_bytes``.
        """
        return np.maximum(8, rng.lognormal(self._mu, self.sigma, size=n)).astype(int)

    def sample_lines(self, n: int, rng: np.random.Generator) -> list[str]:
        """Generate ``n`` text lines; ~``match_fraction`` contain a term."""
        lengths = self.line_lengths(n, rng)
        matches = rng.random(n) < self.match_fraction
        lines: list[str] = []
        for length, match in zip(lengths, matches):
            words: list[str] = []
            size = 0
            while size < length:
                word = _FILLER[int(rng.integers(len(_FILLER)))]
                words.append(word)
                size += len(word) + 1
            if match:
                term = self.dictionary[int(rng.integers(len(self.dictionary)))]
                pos = int(rng.integers(len(words) + 1))
                words.insert(pos, term)
            lines.append(" ".join(words))
        return lines

    def matches(self, line: str) -> bool:
        """The Filter predicate: does the line contain a dictionary term?"""
        tokens = set(line.lower().split())
        return any(term in tokens for term in self.dictionary)

    def measure_selectivity(self, n: int, rng: np.random.Generator) -> float:
        """Empirical Filter selectivity over ``n`` generated lines."""
        if n < 1:
            raise ValueError("n must be >= 1")
        lines = self.sample_lines(n, rng)
        return sum(self.matches(line) for line in lines) / n

    def average_tuple_bytes(self, n: int, rng: np.random.Generator) -> float:
        """Mean serialized line size over ``n`` samples."""
        return float(np.mean([len(line) for line in self.sample_lines(n, rng)]))
