"""``repro-experiments store ...`` — inspect and migrate study stores.

Exit codes follow the ``obs perf-compare`` convention: 0 on success,
1 on ordinary errors (missing store, bad arguments at runtime), and 2
when a store's schema version is newer than this build understands
(:class:`~repro.store.base.SchemaVersionError`) — the "upgrade the
tool, don't trust the data" signal CI can branch on.
"""

from __future__ import annotations

import argparse

from repro import obs
from repro.store.base import SchemaVersionError, StoreError, StudyStore


def _open(spec: str) -> StudyStore:
    from repro.store import open_store

    return open_store(spec)


def _ls(store: StudyStore, sink: obs.ProgressSink) -> int:
    sink.result(f"store {store.kind}:{store.describe()} "
                f"(schema version {store.schema_version()})")
    studies = store.studies()
    if not studies:
        sink.result("  (empty)")
        return 0
    for study in studies:
        cells = store.cells(study)
        sink.result(f"  study {study!r}: {len(cells)} cell(s)")
        for cell in cells:
            runs = store.runs(study, cell)
            n_obs = store.observation_count(study, cell)
            done = "done" if store.has_results(study, cell) else "in progress"
            states = store.state_names(study, cell)
            extra = f", state: {', '.join(states)}" if states else ""
            sink.result(
                f"    cell {cell or '(root)'!r}: {len(runs)} run(s), "
                f"{n_obs} observation(s), {done}{extra}"
            )
    return 0


def store_main(argv: list[str]) -> int:
    """``repro-experiments store ...`` entry point; returns exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments store",
        description="Inspect, migrate, and compact study stores "
        "(a directory of JSONL checkpoints or a *.db SQLite file).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    ls = sub.add_parser(
        "ls", help="list studies, cells, and observation counts"
    )
    ls.add_argument("store", help="store location (directory or *.db file)")
    migrate = sub.add_parser(
        "migrate",
        help="copy every study/cell/checkpoint from SRC into DST "
        "(backends inferred from the paths; lossless either direction)",
    )
    migrate.add_argument("src", help="source store (directory or *.db)")
    migrate.add_argument("dst", help="destination store (directory or *.db)")
    vacuum = sub.add_parser(
        "vacuum", help="compact the store / drop crash leftovers"
    )
    vacuum.add_argument("store", help="store location (directory or *.db file)")
    args = parser.parse_args(argv)
    sink = obs.ProgressSink()

    try:
        if args.command == "ls":
            with _open(args.store) as store:
                return _ls(store, sink)
        if args.command == "migrate":
            from repro.store.migrate import migrate_store

            with _open(args.src) as src, _open(args.dst) as dst:
                report = migrate_store(src, dst)
                parts = ", ".join(
                    f"{v} {k}" for k, v in report.as_dict().items()
                )
                sink.result(
                    f"migrated {src.kind}:{src.describe()} -> "
                    f"{dst.kind}:{dst.describe()} ({parts})"
                )
            return 0
        if args.command == "vacuum":
            with _open(args.store) as store:
                store.vacuum()
                sink.result(f"vacuumed {store.kind}:{store.describe()}")
            return 0
    except SchemaVersionError as exc:
        sink.result(f"SCHEMA VERSION MISMATCH: {exc}")
        return 2
    except (StoreError, OSError) as exc:
        sink.result(f"error: {exc}")
        return 1
    return 1  # pragma: no cover - argparse enforces a command
