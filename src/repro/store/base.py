"""The study-store contract: who owns persisted tuning state.

Before this layer existed, persistence was smeared across three places
— :mod:`repro.core.checkpoint` JSONL files, per-cell ``pass``/``done``
files inside the experiment runner, and ``continuous.json`` sidecars in
:mod:`repro.core.continuous`.  :class:`StudyStore` centralizes all of
it behind one interface with two interchangeable backends:

* :class:`repro.store.jsonl.JsonlStudyStore` — a directory of
  atomic-write JSONL/JSON files, bit-compatible with the pre-store
  layout (``--resume DIR`` keeps working on old directories);
* :class:`repro.store.sqlite.SqliteStudyStore` — one stdlib ``sqlite3``
  database with a versioned schema and migration runner, safe for many
  concurrent campaign processes.

The data model is three kinds of documents under a ``(study, cell)``
address:

===========  =====================================================
document     contents
===========  =====================================================
checkpoint   one tuning run's :class:`~repro.core.checkpoint.
             TuningCheckpoint` (observations + optimizer snapshot),
             keyed by a run name (``pass0``, ``epoch-0003``, ...)
results      a finished cell's :class:`~repro.core.history.
             TuningResult` list (the runner's old ``done`` file)
state        an arbitrary JSON document, keyed by name (the
             continuous-tuning loop's old ``continuous.json``)
===========  =====================================================

``tests/test_store.py`` holds the shared contract suite both backends
must pass; docs/STORE.md documents layouts and the migration CLI.
"""

from __future__ import annotations

import abc
import dataclasses
import os
import re
import signal
import time
from dataclasses import dataclass
from typing import Mapping

from repro.core.checkpoint import TuningCheckpoint
from repro.core.history import TuningResult
from repro.core.seeding import label_digest
from repro.obs import runtime as obs_runtime


class StoreError(RuntimeError):
    """A study-store operation failed."""


class SchemaVersionError(StoreError):
    """The store was written by an incompatible schema version.

    Raised instead of guessing: a newer schema may record state this
    build cannot interpret, and "resume from garbage" is worse than
    refusing.  The store CLI maps this to exit code 2, the same
    convention ``obs perf-compare`` uses for schema drift.
    """


class LeaseError(StoreError):
    """A lease operation failed."""


class StaleLeaseError(LeaseError):
    """The caller's fencing token no longer names the current lease.

    Raised when a worker that lost its lease (expiry + reclamation by
    another owner, or an explicit release) tries to renew, commit, or
    write fenced results.  The correct reaction is to *drop* the work —
    the new owner re-derives it deterministically — never to retry.
    """


#: Lease lifecycle states (docs/ROBUSTNESS.md has the state diagram).
#: ``committed`` and ``quarantined`` are terminal; ``released`` and an
#: expired ``leased`` are reclaimable by the next :meth:`~StudyStore.
#: acquire_lease` call, which bumps the fencing token.
LEASE_STATUSES = ("leased", "committed", "released", "quarantined")
TERMINAL_LEASE_STATUSES = ("committed", "quarantined")


@dataclass(frozen=True)
class Lease:
    """One cell's work lease: owner, fencing token, heartbeat deadline.

    ``token`` increases monotonically per cell — every successful
    acquisition (including reclamation of an expired or released lease)
    bumps it, so any writer holding an older token is provably stale.
    ``deadline`` is wall-clock (``time.time()``) so independent worker
    processes on one host agree on expiry; ``attempts`` counts total
    acquisitions of the cell (the poisoned-cell quarantine bound);
    ``reason`` carries the last recorded failure or quarantine cause.
    """

    study: str
    cell: str
    owner: str
    token: int
    deadline: float
    attempts: int = 1
    status: str = "leased"
    reason: str = ""

    def expired(self, now: float | None = None) -> bool:
        """True when a ``leased`` lease's heartbeat deadline passed."""
        if self.status != "leased":
            return False
        return (time.time() if now is None else now) >= self.deadline

    def as_dict(self) -> dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Lease":
        return cls(
            study=str(data.get("study", "")),
            cell=str(data.get("cell", "")),
            owner=str(data.get("owner", "")),
            token=int(data["token"]),  # type: ignore[arg-type]
            deadline=float(data["deadline"]),  # type: ignore[arg-type]
            attempts=int(data.get("attempts", 1)),  # type: ignore[arg-type]
            status=str(data.get("status", "leased")),
            reason=str(data.get("reason", "")),
        )


#: ``REPRO_STORE_KILL="<op>:<n>"`` SIGKILLs the *current process* right
#: after its n-th (1-based) store operation of kind ``op`` —
#: ``checkpoint_write`` / ``result_write`` / ``lease_acquire`` /
#: ``lease_renew`` / ``lease_commit``.  The kill-fuzzer
#: (``benchmarks/bench_fleet.py``) uses it to die deterministically
#: mid-cell, mid-heartbeat, and between the two commit phases (results
#: written, lease not yet committed).
KILL_ENV = "REPRO_STORE_KILL"
_kill_counts: dict[str, int] = {}


def _maybe_die(op: str) -> None:
    spec = os.environ.get(KILL_ENV)
    if not spec:
        return
    want, _, count = spec.partition(":")
    if want != op:
        return
    _kill_counts[op] = _kill_counts.get(op, 0) + 1
    try:
        threshold = int(count)
    except ValueError:
        return
    if _kill_counts[op] >= threshold:
        os.kill(os.getpid(), signal.SIGKILL)


def sanitize_label(label: str) -> str:
    """Make a cell label path-safe (``/`` and spaces become ``_``)."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label)


def cell_stem(label: str) -> str:
    """Collision-free path stem for a cell label.

    Sanitizing alone is lossy: ``a/b`` and ``a.b`` both sanitize to the
    same stem, and two such cells would silently overwrite each other's
    ``done``/``pass`` files.  Appending a short blake2b digest of the
    *raw* label (:func:`repro.core.seeding.label_digest`) keeps stems
    readable while making distinct labels map to distinct files.
    """
    if not label:
        return ""
    return f"{sanitize_label(label)}-{label_digest(label)}"


def _count(name: str, n: int = 1) -> None:
    """Fold one store operation into the active obs registry (no-op
    fast path when no session is active — same budget as the tracer)."""
    obs_runtime.current().metrics.counter(name).inc(n)


class StudyStore(abc.ABC):
    """Persistence for studies, cells, observations, and epoch state.

    Subclasses implement the underscore hooks; the public methods add
    uniform ``store.*`` metrics accounting on top so every backend
    reports reads and writes the same way (docs/OBSERVABILITY.md).
    """

    #: Backend identifier (``jsonl`` / ``sqlite``) for events and `ls`.
    kind: str = "store"

    # ------------------------------------------------------------------
    # Checkpoints (one tuning run each)
    # ------------------------------------------------------------------
    def save_checkpoint(
        self, study: str, cell: str, run: str, checkpoint: TuningCheckpoint
    ) -> None:
        self._save_checkpoint(study, cell, run, checkpoint)
        _count("store.checkpoint_writes")
        _maybe_die("checkpoint_write")

    def load_checkpoint(
        self, study: str, cell: str, run: str
    ) -> TuningCheckpoint | None:
        checkpoint = self._load_checkpoint(study, cell, run)
        _count("store.checkpoint_reads")
        return checkpoint

    # ------------------------------------------------------------------
    # Finished-cell results (the runner's old ``done`` files)
    # ------------------------------------------------------------------
    def save_results(
        self, study: str, cell: str, results: list[TuningResult]
    ) -> None:
        self._save_results(study, cell, results)
        _count("store.result_writes")
        _maybe_die("result_write")

    def save_results_fenced(
        self,
        study: str,
        cell: str,
        results: list[TuningResult],
        *,
        owner: str,
        token: int,
    ) -> None:
        """Save results only while ``(owner, token)`` holds the lease.

        The write and the fencing check are atomic on the SQLite
        backend (one transaction) and check-then-atomic-rename on
        JSONL; either way a worker reclaimed while it was computing
        raises :class:`StaleLeaseError` instead of clobbering the new
        owner's cell.
        """
        try:
            self._save_results_fenced(study, cell, results, owner, int(token))
        except StaleLeaseError:
            _count("lease.stale_rejected")
            raise
        _count("store.result_writes")
        _maybe_die("result_write")

    def load_results(
        self, study: str, cell: str
    ) -> list[TuningResult] | None:
        results = self._load_results(study, cell)
        _count("store.result_reads")
        if results is not None:
            _count("store.result_hits")
        return results

    # ------------------------------------------------------------------
    # Named state documents (continuous-tuning epoch state, ...)
    # ------------------------------------------------------------------
    def save_state(
        self, study: str, cell: str, name: str, state: Mapping[str, object]
    ) -> None:
        self._save_state(study, cell, name, dict(state))
        _count("store.state_writes")

    def load_state(
        self, study: str, cell: str, name: str
    ) -> dict[str, object] | None:
        state = self._load_state(study, cell, name)
        _count("store.state_reads")
        return state

    # ------------------------------------------------------------------
    # Leases (the crash-safe multi-worker queue substrate)
    # ------------------------------------------------------------------
    def acquire_lease(
        self,
        study: str,
        cell: str,
        owner: str,
        ttl_seconds: float,
        now: float | None = None,
    ) -> Lease | None:
        """Claim a cell: ``None`` if it is held, committed, or
        quarantined; otherwise a fresh :class:`Lease` with a bumped
        fencing token (expired and released leases are reclaimable)."""
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be > 0")
        now = time.time() if now is None else float(now)
        lease = self._acquire_lease(study, cell, owner, float(ttl_seconds), now)
        if lease is None:
            _count("lease.contended")
            return None
        _count("lease.acquired")
        if lease.attempts > 1:
            _count("lease.reacquired")
        _maybe_die("lease_acquire")
        return lease

    def renew_lease(
        self, lease: Lease, ttl_seconds: float, now: float | None = None
    ) -> Lease:
        """Heartbeat: push the deadline ``ttl_seconds`` into the future.

        Raises :class:`StaleLeaseError` once the lease was reclaimed
        (fencing token superseded) or left the ``leased`` state."""
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be > 0")
        now = time.time() if now is None else float(now)
        updated = self._checked_update(
            lease, status="leased", deadline=now + float(ttl_seconds),
            reason=lease.reason,
        )
        _count("lease.renewed")
        _maybe_die("lease_renew")
        return updated

    def commit_lease(self, lease: Lease) -> Lease:
        """Mark the leased cell done (terminal).  Idempotent at the
        queue level: a committed cell is never claimable again."""
        updated = self._checked_update(
            lease, status="committed", deadline=lease.deadline, reason=""
        )
        _count("lease.committed")
        _maybe_die("lease_commit")
        return updated

    def release_lease(self, lease: Lease, reason: str = "") -> Lease:
        """Give the cell back (retryable), recording ``reason``."""
        updated = self._checked_update(
            lease, status="released", deadline=lease.deadline, reason=reason
        )
        _count("lease.released")
        return updated

    def quarantine_lease(self, lease: Lease, reason: str) -> Lease:
        """Park a poisoned cell (terminal) with the recorded reason."""
        updated = self._checked_update(
            lease, status="quarantined", deadline=lease.deadline, reason=reason
        )
        _count("lease.quarantined")
        return updated

    def _checked_update(
        self, lease: Lease, *, status: str, deadline: float, reason: str
    ) -> Lease:
        try:
            return self._update_lease(
                lease, status=status, deadline=deadline, reason=reason
            )
        except StaleLeaseError:
            _count("lease.stale_rejected")
            raise

    def read_lease(self, study: str, cell: str) -> Lease | None:
        """The cell's current lease record (``None``: never claimed)."""
        return self._read_lease(study, cell)

    def leases(self, study: str) -> list[Lease]:
        """Every current lease record in the study, sorted by cell."""
        return sorted(self._leases(study), key=lambda lease: lease.cell)

    # ------------------------------------------------------------------
    # Backend hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _save_checkpoint(
        self, study: str, cell: str, run: str, checkpoint: TuningCheckpoint
    ) -> None: ...

    @abc.abstractmethod
    def _load_checkpoint(
        self, study: str, cell: str, run: str
    ) -> TuningCheckpoint | None: ...

    @abc.abstractmethod
    def _save_results(
        self, study: str, cell: str, results: list[TuningResult]
    ) -> None: ...

    @abc.abstractmethod
    def _load_results(
        self, study: str, cell: str
    ) -> list[TuningResult] | None: ...

    @abc.abstractmethod
    def _save_state(
        self, study: str, cell: str, name: str, state: dict[str, object]
    ) -> None: ...

    @abc.abstractmethod
    def _load_state(
        self, study: str, cell: str, name: str
    ) -> dict[str, object] | None: ...

    @abc.abstractmethod
    def _acquire_lease(
        self, study: str, cell: str, owner: str, ttl: float, now: float
    ) -> Lease | None: ...

    @abc.abstractmethod
    def _update_lease(
        self, lease: Lease, *, status: str, deadline: float, reason: str
    ) -> Lease:
        """Apply a state change iff ``lease`` is still the current
        ``leased`` record; raise :class:`StaleLeaseError` otherwise."""

    @abc.abstractmethod
    def _read_lease(self, study: str, cell: str) -> Lease | None: ...

    @abc.abstractmethod
    def _leases(self, study: str) -> list[Lease]: ...

    def _save_results_fenced(
        self,
        study: str,
        cell: str,
        results: list[TuningResult],
        owner: str,
        token: int,
    ) -> None:
        # Check-then-write default; the SQLite backend overrides this
        # with a single transaction so the check cannot race the write.
        lease = self._read_lease(study, cell)
        if (
            lease is None
            or lease.owner != owner
            or lease.token != token
            or lease.status != "leased"
        ):
            raise StaleLeaseError(
                f"results for {study}/{cell or '(root)'} rejected: "
                f"{owner!r} token {token} is not the current lease "
                f"({'none' if lease is None else f'{lease.owner!r} token {lease.token} {lease.status}'})"
            )
        self._save_results(study, cell, results)

    # ------------------------------------------------------------------
    # Enumeration (the `store ls` / migration surface)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def studies(self) -> list[str]: ...

    @abc.abstractmethod
    def cells(self, study: str) -> list[str]: ...

    @abc.abstractmethod
    def runs(self, study: str, cell: str) -> list[str]: ...

    @abc.abstractmethod
    def state_names(self, study: str, cell: str) -> list[str]: ...

    @abc.abstractmethod
    def has_results(self, study: str, cell: str) -> bool: ...

    def observation_count(self, study: str, cell: str) -> int:
        """Total observations across a cell's run checkpoints."""
        total = 0
        for run in self.runs(study, cell):
            checkpoint = self.load_checkpoint(study, cell, run)
            if checkpoint is not None:
                total += checkpoint.completed
        return total

    # ------------------------------------------------------------------
    # Lifecycle / maintenance
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable location (directory path, database file)."""

    def schema_version(self) -> int:
        """The store's on-disk format version."""
        return 1

    def vacuum(self) -> None:
        """Reclaim space / compact the backing storage (may be no-op)."""

    def close(self) -> None:
        """Release backend resources; the store is unusable after."""

    def __enter__(self) -> "StudyStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def checkpoint_slot(
        self, study: str, cell: str, run: str
    ) -> "StoreCheckpointSlot":
        """Bind one run's checkpoint address as a loop-compatible slot."""
        return StoreCheckpointSlot(self, study, cell, run)


class StoreCheckpointSlot:
    """A :class:`~repro.core.checkpoint.CheckpointSlot` over one store
    address, handed to :class:`~repro.core.loop.TuningLoop` so the loop
    checkpoints through the store without knowing the backend."""

    def __init__(
        self, store: StudyStore, study: str, cell: str, run: str
    ) -> None:
        self.store = store
        self.study = study
        self.cell = cell
        self.run = run

    def load(self) -> TuningCheckpoint | None:
        return self.store.load_checkpoint(self.study, self.cell, self.run)

    def save(self, checkpoint: TuningCheckpoint) -> None:
        self.store.save_checkpoint(self.study, self.cell, self.run, checkpoint)

    def describe(self) -> str:
        return (
            f"{self.store.kind}:{self.store.describe()}"
            f"::{self.study}/{self.cell or '-'}/{self.run}"
        )
