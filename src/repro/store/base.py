"""The study-store contract: who owns persisted tuning state.

Before this layer existed, persistence was smeared across three places
— :mod:`repro.core.checkpoint` JSONL files, per-cell ``pass``/``done``
files inside the experiment runner, and ``continuous.json`` sidecars in
:mod:`repro.core.continuous`.  :class:`StudyStore` centralizes all of
it behind one interface with two interchangeable backends:

* :class:`repro.store.jsonl.JsonlStudyStore` — a directory of
  atomic-write JSONL/JSON files, bit-compatible with the pre-store
  layout (``--resume DIR`` keeps working on old directories);
* :class:`repro.store.sqlite.SqliteStudyStore` — one stdlib ``sqlite3``
  database with a versioned schema and migration runner, safe for many
  concurrent campaign processes.

The data model is three kinds of documents under a ``(study, cell)``
address:

===========  =====================================================
document     contents
===========  =====================================================
checkpoint   one tuning run's :class:`~repro.core.checkpoint.
             TuningCheckpoint` (observations + optimizer snapshot),
             keyed by a run name (``pass0``, ``epoch-0003``, ...)
results      a finished cell's :class:`~repro.core.history.
             TuningResult` list (the runner's old ``done`` file)
state        an arbitrary JSON document, keyed by name (the
             continuous-tuning loop's old ``continuous.json``)
===========  =====================================================

``tests/test_store.py`` holds the shared contract suite both backends
must pass; docs/STORE.md documents layouts and the migration CLI.
"""

from __future__ import annotations

import abc
import re
from typing import Mapping

from repro.core.checkpoint import TuningCheckpoint
from repro.core.history import TuningResult
from repro.core.seeding import label_digest
from repro.obs import runtime as obs_runtime


class StoreError(RuntimeError):
    """A study-store operation failed."""


class SchemaVersionError(StoreError):
    """The store was written by an incompatible schema version.

    Raised instead of guessing: a newer schema may record state this
    build cannot interpret, and "resume from garbage" is worse than
    refusing.  The store CLI maps this to exit code 2, the same
    convention ``obs perf-compare`` uses for schema drift.
    """


def sanitize_label(label: str) -> str:
    """Make a cell label path-safe (``/`` and spaces become ``_``)."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label)


def cell_stem(label: str) -> str:
    """Collision-free path stem for a cell label.

    Sanitizing alone is lossy: ``a/b`` and ``a.b`` both sanitize to the
    same stem, and two such cells would silently overwrite each other's
    ``done``/``pass`` files.  Appending a short blake2b digest of the
    *raw* label (:func:`repro.core.seeding.label_digest`) keeps stems
    readable while making distinct labels map to distinct files.
    """
    if not label:
        return ""
    return f"{sanitize_label(label)}-{label_digest(label)}"


def _count(name: str, n: int = 1) -> None:
    """Fold one store operation into the active obs registry (no-op
    fast path when no session is active — same budget as the tracer)."""
    obs_runtime.current().metrics.counter(name).inc(n)


class StudyStore(abc.ABC):
    """Persistence for studies, cells, observations, and epoch state.

    Subclasses implement the underscore hooks; the public methods add
    uniform ``store.*`` metrics accounting on top so every backend
    reports reads and writes the same way (docs/OBSERVABILITY.md).
    """

    #: Backend identifier (``jsonl`` / ``sqlite``) for events and `ls`.
    kind: str = "store"

    # ------------------------------------------------------------------
    # Checkpoints (one tuning run each)
    # ------------------------------------------------------------------
    def save_checkpoint(
        self, study: str, cell: str, run: str, checkpoint: TuningCheckpoint
    ) -> None:
        self._save_checkpoint(study, cell, run, checkpoint)
        _count("store.checkpoint_writes")

    def load_checkpoint(
        self, study: str, cell: str, run: str
    ) -> TuningCheckpoint | None:
        checkpoint = self._load_checkpoint(study, cell, run)
        _count("store.checkpoint_reads")
        return checkpoint

    # ------------------------------------------------------------------
    # Finished-cell results (the runner's old ``done`` files)
    # ------------------------------------------------------------------
    def save_results(
        self, study: str, cell: str, results: list[TuningResult]
    ) -> None:
        self._save_results(study, cell, results)
        _count("store.result_writes")

    def load_results(
        self, study: str, cell: str
    ) -> list[TuningResult] | None:
        results = self._load_results(study, cell)
        _count("store.result_reads")
        if results is not None:
            _count("store.result_hits")
        return results

    # ------------------------------------------------------------------
    # Named state documents (continuous-tuning epoch state, ...)
    # ------------------------------------------------------------------
    def save_state(
        self, study: str, cell: str, name: str, state: Mapping[str, object]
    ) -> None:
        self._save_state(study, cell, name, dict(state))
        _count("store.state_writes")

    def load_state(
        self, study: str, cell: str, name: str
    ) -> dict[str, object] | None:
        state = self._load_state(study, cell, name)
        _count("store.state_reads")
        return state

    # ------------------------------------------------------------------
    # Backend hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _save_checkpoint(
        self, study: str, cell: str, run: str, checkpoint: TuningCheckpoint
    ) -> None: ...

    @abc.abstractmethod
    def _load_checkpoint(
        self, study: str, cell: str, run: str
    ) -> TuningCheckpoint | None: ...

    @abc.abstractmethod
    def _save_results(
        self, study: str, cell: str, results: list[TuningResult]
    ) -> None: ...

    @abc.abstractmethod
    def _load_results(
        self, study: str, cell: str
    ) -> list[TuningResult] | None: ...

    @abc.abstractmethod
    def _save_state(
        self, study: str, cell: str, name: str, state: dict[str, object]
    ) -> None: ...

    @abc.abstractmethod
    def _load_state(
        self, study: str, cell: str, name: str
    ) -> dict[str, object] | None: ...

    # ------------------------------------------------------------------
    # Enumeration (the `store ls` / migration surface)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def studies(self) -> list[str]: ...

    @abc.abstractmethod
    def cells(self, study: str) -> list[str]: ...

    @abc.abstractmethod
    def runs(self, study: str, cell: str) -> list[str]: ...

    @abc.abstractmethod
    def state_names(self, study: str, cell: str) -> list[str]: ...

    @abc.abstractmethod
    def has_results(self, study: str, cell: str) -> bool: ...

    def observation_count(self, study: str, cell: str) -> int:
        """Total observations across a cell's run checkpoints."""
        total = 0
        for run in self.runs(study, cell):
            checkpoint = self.load_checkpoint(study, cell, run)
            if checkpoint is not None:
                total += checkpoint.completed
        return total

    # ------------------------------------------------------------------
    # Lifecycle / maintenance
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable location (directory path, database file)."""

    def schema_version(self) -> int:
        """The store's on-disk format version."""
        return 1

    def vacuum(self) -> None:
        """Reclaim space / compact the backing storage (may be no-op)."""

    def close(self) -> None:
        """Release backend resources; the store is unusable after."""

    def __enter__(self) -> "StudyStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def checkpoint_slot(
        self, study: str, cell: str, run: str
    ) -> "StoreCheckpointSlot":
        """Bind one run's checkpoint address as a loop-compatible slot."""
        return StoreCheckpointSlot(self, study, cell, run)


class StoreCheckpointSlot:
    """A :class:`~repro.core.checkpoint.CheckpointSlot` over one store
    address, handed to :class:`~repro.core.loop.TuningLoop` so the loop
    checkpoints through the store without knowing the backend."""

    def __init__(
        self, store: StudyStore, study: str, cell: str, run: str
    ) -> None:
        self.store = store
        self.study = study
        self.cell = cell
        self.run = run

    def load(self) -> TuningCheckpoint | None:
        return self.store.load_checkpoint(self.study, self.cell, self.run)

    def save(self, checkpoint: TuningCheckpoint) -> None:
        self.store.save_checkpoint(self.study, self.cell, self.run, checkpoint)

    def describe(self) -> str:
        return (
            f"{self.store.kind}:{self.store.describe()}"
            f"::{self.study}/{self.cell or '-'}/{self.run}"
        )
