"""Directory-of-JSONL study store (the pre-store layout, formalized).

One directory holds every document, named exactly the way the
experiment runner and continuous-tuning loop named their files before
the store layer existed — so an old ``--resume DIR`` directory is a
valid store and a new one is readable by old eyes:

* ``<stem>.<run>.jsonl``   — run checkpoints (``pass0``, ``epoch-0003``)
  in the :mod:`repro.core.checkpoint` record format, atomic-rewritten
  after every tell;
* ``<stem>.done.json``     — a finished cell's results list;
* ``<stem>.<name>.json``   — named state documents (the continuous
  loop's sidecar: cell ``""`` + name ``continuous`` → the literal
  ``continuous.json``);
* ``<stem>.lease-<token>.json`` — cell work leases, one file per
  fencing token, claimed via exclusive create (docs/ROBUSTNESS.md);
  transient coordination state, excluded from enumeration/migration.

``<stem>`` is :func:`repro.store.base.cell_stem`: the sanitized label
plus a short blake2b digest of the raw label, so ``a/b`` and ``a.b``
(identical after sanitizing) can no longer overwrite each other.  Reads
fall back to the digest-less legacy stem, keeping pre-digest resume
directories loadable.  An ``store-index.json`` sidecar remembers which
stem belongs to which (study, raw label) so enumeration and migration
recover the original addresses; directories without one (legacy) still
enumerate, with stems standing in for labels.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
from pathlib import Path
from typing import Iterator

from repro.core.checkpoint import (
    TuningCheckpoint,
    _fsync_directory,
    atomic_write_text,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.history import TuningResult
from repro.store.base import (
    Lease,
    SchemaVersionError,
    StaleLeaseError,
    StudyStore,
    cell_stem,
    sanitize_label,
)

INDEX_VERSION = 1
INDEX_NAME = "store-index.json"

#: Reserved file names that are never store documents.
_RESERVED = frozenset({INDEX_NAME})

#: Lease token files: ``<stem>.lease-<token>.json`` (root cell: bare
#: ``lease-<token>.json``).  Excluded from document enumeration — they
#: are transient coordination state, not study data (and `store
#: migrate` deliberately does not copy them).
_LEASE_FILE_RE = re.compile(r"(?:^|\.)lease-(\d{6,})\.json$")


class JsonlStudyStore(StudyStore):
    """Study store over a directory of atomic-write JSONL/JSON files."""

    kind = "jsonl"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        #: (study, cell) addresses this instance already indexed — the
        #: index is rewritten once per new cell, not once per tell.
        self._registered: set[tuple[str, str]] = set()

    def describe(self) -> str:
        return str(self.root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @staticmethod
    def _join(stem: str, suffix: str) -> str:
        return f"{stem}.{suffix}" if stem else suffix

    def _checkpoint_path(self, cell: str, run: str, *, legacy: bool = False) -> Path:
        stem = sanitize_label(cell) if legacy else cell_stem(cell)
        return self.root / self._join(stem, f"{run}.jsonl")

    def _results_path(self, cell: str, *, legacy: bool = False) -> Path:
        stem = sanitize_label(cell) if legacy else cell_stem(cell)
        return self.root / self._join(stem, "done.json")

    def _state_path(self, cell: str, name: str, *, legacy: bool = False) -> Path:
        stem = sanitize_label(cell) if legacy else cell_stem(cell)
        return self.root / self._join(stem, f"{name}.json")

    def _read(self, fresh: Path, legacy: Path) -> Path | None:
        """The freshest readable variant of a document, digest-stem
        first, then the pre-digest legacy name."""
        if fresh.is_file():
            return fresh
        if legacy != fresh and legacy.is_file():
            return legacy
        return None

    # ------------------------------------------------------------------
    # Index (stem -> study/raw-label, for enumeration and migration)
    # ------------------------------------------------------------------
    def _load_index(self) -> dict[str, dict[str, str]]:
        path = self.root / INDEX_NAME
        if not path.is_file():
            return {}
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        version = data.get("version")
        if version != INDEX_VERSION:
            raise SchemaVersionError(
                f"store index {path} has version {version!r} but this "
                f"build reads version {INDEX_VERSION}"
            )
        cells = data.get("cells", {})
        return {str(k): dict(v) for k, v in cells.items()}

    def _register(self, study: str, cell: str) -> None:
        if (study, cell) in self._registered:
            return
        # Merge-on-write: concurrent cell processes each re-read the
        # index before rewriting, so parallel studies interleave their
        # registrations instead of clobbering each other wholesale.
        index = self._load_index()
        entry = {"study": study, "label": cell}
        if index.get(cell_stem(cell)) != entry:
            index[cell_stem(cell)] = entry
            atomic_write_text(
                self.root / INDEX_NAME,
                json.dumps(
                    {"version": INDEX_VERSION, "cells": index}, sort_keys=True
                ),
            )
        self._registered.add((study, cell))

    # ------------------------------------------------------------------
    # Backend hooks
    # ------------------------------------------------------------------
    def _save_checkpoint(
        self, study: str, cell: str, run: str, checkpoint: TuningCheckpoint
    ) -> None:
        self._register(study, cell)
        save_checkpoint(self._checkpoint_path(cell, run), checkpoint)

    def _load_checkpoint(
        self, study: str, cell: str, run: str
    ) -> TuningCheckpoint | None:
        path = self._read(
            self._checkpoint_path(cell, run),
            self._checkpoint_path(cell, run, legacy=True),
        )
        return None if path is None else load_checkpoint(path)

    def _save_results(
        self, study: str, cell: str, results: list[TuningResult]
    ) -> None:
        self._register(study, cell)
        atomic_write_text(
            self._results_path(cell),
            json.dumps([r.as_dict() for r in results], default=str),
        )

    def _load_results(
        self, study: str, cell: str
    ) -> list[TuningResult] | None:
        path = self._read(
            self._results_path(cell), self._results_path(cell, legacy=True)
        )
        if path is None:
            return None
        try:
            payload = json.loads(path.read_text())
            return [TuningResult.from_dict(entry) for entry in payload]
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def _save_state(
        self, study: str, cell: str, name: str, state: dict[str, object]
    ) -> None:
        self._register(study, cell)
        atomic_write_text(
            self._state_path(cell, name), json.dumps(state, sort_keys=True)
        )

    def _load_state(
        self, study: str, cell: str, name: str
    ) -> dict[str, object] | None:
        path = self._read(
            self._state_path(cell, name),
            self._state_path(cell, name, legacy=True),
        )
        if path is None:
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return dict(data) if isinstance(data, dict) else None

    # ------------------------------------------------------------------
    # Leases
    # ------------------------------------------------------------------
    # One file per fencing token, claimed with O_CREAT|O_EXCL (the
    # atomic only-one-racer-wins primitive POSIX gives a directory);
    # the *highest* token file is the current lease, renew/commit
    # atomic-rewrite the owner's own token file, and a torn claim (file
    # created, JSON never landed) just burns its token — the next
    # claimant writes token+1 and the unreadable file is ignored.

    def _lease_path(self, cell: str, token: int) -> Path:
        return self.root / self._join(cell_stem(cell), f"lease-{token:06d}.json")

    def _lease_files(self, cell: str) -> list[tuple[int, Path]]:
        stem = cell_stem(cell)
        if not self.root.is_dir():
            return []
        found = []
        for path in self.root.glob(self._join(stem, "lease-*.json")):
            match = _LEASE_FILE_RE.search(path.name)
            if match and path.name == self._join(stem, f"lease-{match.group(1)}.json"):
                found.append((int(match.group(1)), path))
        return sorted(found)

    def _lease_doc(self, study: str, cell: str, path: Path) -> Lease | None:
        try:
            data = json.loads(path.read_text())
            lease = Lease.from_dict(data)
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None
        return dataclasses.replace(lease, study=study, cell=cell)

    def _read_lease(self, study: str, cell: str) -> Lease | None:
        # Highest *readable* token wins; unreadable (torn) claims above
        # it are burned tokens, not leases.
        for _, path in reversed(self._lease_files(cell)):
            lease = self._lease_doc(study, cell, path)
            if lease is not None:
                return lease
        return None

    def _acquire_lease(
        self, study: str, cell: str, owner: str, ttl: float, now: float
    ) -> Lease | None:
        files = self._lease_files(cell)
        top_token = files[-1][0] if files else 0
        current = self._read_lease(study, cell)
        if current is not None:
            if current.status in ("committed", "quarantined"):
                return None
            if current.status == "leased" and current.deadline > now:
                return None
        lease = Lease(
            study=study,
            cell=cell,
            owner=owner,
            token=top_token + 1,
            deadline=now + ttl,
            attempts=(current.attempts if current else 0) + 1,
            status="leased",
            reason=current.reason if current else "",
        )
        path = self._lease_path(cell, lease.token)
        self.root.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return None  # lost the claim race to a concurrent worker
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(lease.as_dict(), sort_keys=True))
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            return None
        _fsync_directory(self.root)
        self._register(study, cell)
        return lease

    def _update_lease(
        self, lease: Lease, *, status: str, deadline: float, reason: str
    ) -> Lease:
        def stale(detail: str) -> StaleLeaseError:
            return StaleLeaseError(
                f"lease on {lease.study}/{lease.cell or '(root)'} "
                f"({lease.owner!r} token {lease.token}) is stale: {detail}"
            )

        files = self._lease_files(lease.cell)
        if files and files[-1][0] > lease.token:
            raise stale(f"token {files[-1][0]} supersedes it")
        own_path = self._lease_path(lease.cell, lease.token)
        current = self._lease_doc(lease.study, lease.cell, own_path)
        if current is None:
            raise stale("its token file is missing or unreadable")
        if current.owner != lease.owner or current.status != "leased":
            raise stale(
                f"current record is {current.owner!r} {current.status}"
            )
        updated = dataclasses.replace(
            lease, status=status, deadline=deadline, reason=reason
        )
        atomic_write_text(
            own_path, json.dumps(updated.as_dict(), sort_keys=True)
        )
        # Close the check-then-write window: if a reclaimer bumped the
        # token while we were writing, our record is shadowed (highest
        # readable token wins) — report stale so the caller drops the
        # work instead of believing the no-op update.
        files = self._lease_files(lease.cell)
        if files and files[-1][0] > lease.token:
            raise stale(f"token {files[-1][0]} claimed during the update")
        return updated

    def _leases(self, study: str) -> list[Lease]:
        index = self._load_index()
        found = []
        for entry in index.values():
            if str(entry.get("study", "default")) != study:
                continue
            label = str(entry.get("label", ""))
            lease = self._read_lease(study, label)
            if lease is not None:
                found.append(lease)
        return found

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def _scan(self) -> Iterator[tuple[str, str, str, str]]:
        """Yield ``(stem, doc_kind, doc_name, file_name)`` for every
        store document in the directory.

        ``doc_kind`` is ``checkpoint`` / ``results`` / ``state``.  Stems
        come from the index when possible (longest match wins, so a
        stem containing dots cannot shadow a shorter one); unindexed
        files fall back to the empty stem (whole name = document name),
        which is exactly how the continuous-tuning layout reads.
        """
        if not self.root.is_dir():
            return
        stems = sorted(
            (s for s in self._load_index() if s), key=len, reverse=True
        )

        def split(name: str) -> tuple[str, str]:
            for stem in stems:
                if name.startswith(stem + "."):
                    return stem, name[len(stem) + 1 :]
            return "", name

        for path in sorted(self.root.iterdir()):
            name = path.name
            if not path.is_file() or name in _RESERVED or name.endswith(".tmp"):
                continue
            if _LEASE_FILE_RE.search(name):
                continue  # coordination state, not a study document
            if name.endswith(".jsonl"):
                stem, rest = split(name[: -len(".jsonl")] + ".")
                yield stem, "checkpoint", rest.rstrip("."), name
            elif name.endswith(".done.json"):
                yield name[: -len(".done.json")], "results", "done", name
            elif name.endswith(".json"):
                stem, rest = split(name[: -len(".json")] + ".")
                yield stem, "state", rest.rstrip("."), name

    @staticmethod
    def _address(
        stem: str, index: dict[str, dict[str, str]]
    ) -> tuple[str, str]:
        """(study, raw cell label) for a stem; legacy fallbacks."""
        entry = index.get(stem)
        if entry is not None:
            return str(entry.get("study", "default")), str(
                entry.get("label", stem)
            )
        return "default", stem

    def studies(self) -> list[str]:
        index = self._load_index()
        found = {self._address(stem, index)[0] for stem, *_ in self._scan()}
        return sorted(found)

    def cells(self, study: str) -> list[str]:
        index = self._load_index()
        found = set()
        for stem, *_ in self._scan():
            cell_study, label = self._address(stem, index)
            if cell_study == study:
                found.add(label)
        return sorted(found)

    def _documents_of(self, study: str, cell: str, doc_kind: str) -> list[str]:
        index = self._load_index()
        found = set()
        for stem, kind, doc_name, _ in self._scan():
            if kind != doc_kind:
                continue
            cell_study, label = self._address(stem, index)
            if cell_study == study and label == cell:
                found.add(doc_name)
        return sorted(found)

    def runs(self, study: str, cell: str) -> list[str]:
        return self._documents_of(study, cell, "checkpoint")

    def state_names(self, study: str, cell: str) -> list[str]:
        return self._documents_of(study, cell, "state")

    def has_results(self, study: str, cell: str) -> bool:
        return (
            self._read(
                self._results_path(cell), self._results_path(cell, legacy=True)
            )
            is not None
        )

    # ------------------------------------------------------------------
    def schema_version(self) -> int:
        path = self.root / INDEX_NAME
        if not path.is_file():
            return INDEX_VERSION
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return INDEX_VERSION
        return int(data.get("version", INDEX_VERSION))

    def vacuum(self) -> None:
        """Remove orphaned temp files left by crashed atomic writes and
        lease token files superseded by a newer claim."""
        if not self.root.is_dir():
            return
        for path in self.root.glob("*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass
        by_stem: dict[str, list[tuple[int, Path]]] = {}
        for path in self.root.glob("*lease-*.json"):
            match = _LEASE_FILE_RE.search(path.name)
            if match is None:
                continue
            stem = path.name[: -len(f"lease-{match.group(1)}.json")].rstrip(".")
            by_stem.setdefault(stem, []).append((int(match.group(1)), path))
        for files in by_stem.values():
            ordered = sorted(files)
            # Keep everything from the highest *readable* lease up: the
            # top token file alone may be a torn, unreadable claim, and
            # deleting the readable record below it would erase the
            # cell's attempts counter and last-failure reason (the
            # poisoned-cell quarantine bound).  Files above the
            # readable lease are burned tokens _read_lease skips, but
            # the top one must survive so token monotonicity holds.
            keep_from = len(ordered) - 1
            for i in range(len(ordered) - 1, -1, -1):
                if self._readable_lease(ordered[i][1]):
                    keep_from = i
                    break
            for _, path in ordered[:keep_from]:
                try:
                    path.unlink()
                except OSError:
                    pass

    @staticmethod
    def _readable_lease(path: Path) -> bool:
        try:
            Lease.from_dict(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return False
        return True
