"""Directory-of-JSONL study store (the pre-store layout, formalized).

One directory holds every document, named exactly the way the
experiment runner and continuous-tuning loop named their files before
the store layer existed — so an old ``--resume DIR`` directory is a
valid store and a new one is readable by old eyes:

* ``<stem>.<run>.jsonl``   — run checkpoints (``pass0``, ``epoch-0003``)
  in the :mod:`repro.core.checkpoint` record format, atomic-rewritten
  after every tell;
* ``<stem>.done.json``     — a finished cell's results list;
* ``<stem>.<name>.json``   — named state documents (the continuous
  loop's sidecar: cell ``""`` + name ``continuous`` → the literal
  ``continuous.json``).

``<stem>`` is :func:`repro.store.base.cell_stem`: the sanitized label
plus a short blake2b digest of the raw label, so ``a/b`` and ``a.b``
(identical after sanitizing) can no longer overwrite each other.  Reads
fall back to the digest-less legacy stem, keeping pre-digest resume
directories loadable.  An ``store-index.json`` sidecar remembers which
stem belongs to which (study, raw label) so enumeration and migration
recover the original addresses; directories without one (legacy) still
enumerate, with stems standing in for labels.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.core.checkpoint import (
    TuningCheckpoint,
    atomic_write_text,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.history import TuningResult
from repro.store.base import (
    SchemaVersionError,
    StudyStore,
    cell_stem,
    sanitize_label,
)

INDEX_VERSION = 1
INDEX_NAME = "store-index.json"

#: Reserved file names that are never store documents.
_RESERVED = frozenset({INDEX_NAME})


class JsonlStudyStore(StudyStore):
    """Study store over a directory of atomic-write JSONL/JSON files."""

    kind = "jsonl"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        #: (study, cell) addresses this instance already indexed — the
        #: index is rewritten once per new cell, not once per tell.
        self._registered: set[tuple[str, str]] = set()

    def describe(self) -> str:
        return str(self.root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @staticmethod
    def _join(stem: str, suffix: str) -> str:
        return f"{stem}.{suffix}" if stem else suffix

    def _checkpoint_path(self, cell: str, run: str, *, legacy: bool = False) -> Path:
        stem = sanitize_label(cell) if legacy else cell_stem(cell)
        return self.root / self._join(stem, f"{run}.jsonl")

    def _results_path(self, cell: str, *, legacy: bool = False) -> Path:
        stem = sanitize_label(cell) if legacy else cell_stem(cell)
        return self.root / self._join(stem, "done.json")

    def _state_path(self, cell: str, name: str, *, legacy: bool = False) -> Path:
        stem = sanitize_label(cell) if legacy else cell_stem(cell)
        return self.root / self._join(stem, f"{name}.json")

    def _read(self, fresh: Path, legacy: Path) -> Path | None:
        """The freshest readable variant of a document, digest-stem
        first, then the pre-digest legacy name."""
        if fresh.is_file():
            return fresh
        if legacy != fresh and legacy.is_file():
            return legacy
        return None

    # ------------------------------------------------------------------
    # Index (stem -> study/raw-label, for enumeration and migration)
    # ------------------------------------------------------------------
    def _load_index(self) -> dict[str, dict[str, str]]:
        path = self.root / INDEX_NAME
        if not path.is_file():
            return {}
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        version = data.get("version")
        if version != INDEX_VERSION:
            raise SchemaVersionError(
                f"store index {path} has version {version!r} but this "
                f"build reads version {INDEX_VERSION}"
            )
        cells = data.get("cells", {})
        return {str(k): dict(v) for k, v in cells.items()}

    def _register(self, study: str, cell: str) -> None:
        if (study, cell) in self._registered:
            return
        # Merge-on-write: concurrent cell processes each re-read the
        # index before rewriting, so parallel studies interleave their
        # registrations instead of clobbering each other wholesale.
        index = self._load_index()
        entry = {"study": study, "label": cell}
        if index.get(cell_stem(cell)) != entry:
            index[cell_stem(cell)] = entry
            atomic_write_text(
                self.root / INDEX_NAME,
                json.dumps(
                    {"version": INDEX_VERSION, "cells": index}, sort_keys=True
                ),
            )
        self._registered.add((study, cell))

    # ------------------------------------------------------------------
    # Backend hooks
    # ------------------------------------------------------------------
    def _save_checkpoint(
        self, study: str, cell: str, run: str, checkpoint: TuningCheckpoint
    ) -> None:
        self._register(study, cell)
        save_checkpoint(self._checkpoint_path(cell, run), checkpoint)

    def _load_checkpoint(
        self, study: str, cell: str, run: str
    ) -> TuningCheckpoint | None:
        path = self._read(
            self._checkpoint_path(cell, run),
            self._checkpoint_path(cell, run, legacy=True),
        )
        return None if path is None else load_checkpoint(path)

    def _save_results(
        self, study: str, cell: str, results: list[TuningResult]
    ) -> None:
        self._register(study, cell)
        atomic_write_text(
            self._results_path(cell),
            json.dumps([r.as_dict() for r in results], default=str),
        )

    def _load_results(
        self, study: str, cell: str
    ) -> list[TuningResult] | None:
        path = self._read(
            self._results_path(cell), self._results_path(cell, legacy=True)
        )
        if path is None:
            return None
        try:
            payload = json.loads(path.read_text())
            return [TuningResult.from_dict(entry) for entry in payload]
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def _save_state(
        self, study: str, cell: str, name: str, state: dict[str, object]
    ) -> None:
        self._register(study, cell)
        atomic_write_text(
            self._state_path(cell, name), json.dumps(state, sort_keys=True)
        )

    def _load_state(
        self, study: str, cell: str, name: str
    ) -> dict[str, object] | None:
        path = self._read(
            self._state_path(cell, name),
            self._state_path(cell, name, legacy=True),
        )
        if path is None:
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return dict(data) if isinstance(data, dict) else None

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def _scan(self) -> Iterator[tuple[str, str, str, str]]:
        """Yield ``(stem, doc_kind, doc_name, file_name)`` for every
        store document in the directory.

        ``doc_kind`` is ``checkpoint`` / ``results`` / ``state``.  Stems
        come from the index when possible (longest match wins, so a
        stem containing dots cannot shadow a shorter one); unindexed
        files fall back to the empty stem (whole name = document name),
        which is exactly how the continuous-tuning layout reads.
        """
        if not self.root.is_dir():
            return
        stems = sorted(
            (s for s in self._load_index() if s), key=len, reverse=True
        )

        def split(name: str) -> tuple[str, str]:
            for stem in stems:
                if name.startswith(stem + "."):
                    return stem, name[len(stem) + 1 :]
            return "", name

        for path in sorted(self.root.iterdir()):
            name = path.name
            if not path.is_file() or name in _RESERVED or name.endswith(".tmp"):
                continue
            if name.endswith(".jsonl"):
                stem, rest = split(name[: -len(".jsonl")] + ".")
                yield stem, "checkpoint", rest.rstrip("."), name
            elif name.endswith(".done.json"):
                yield name[: -len(".done.json")], "results", "done", name
            elif name.endswith(".json"):
                stem, rest = split(name[: -len(".json")] + ".")
                yield stem, "state", rest.rstrip("."), name

    @staticmethod
    def _address(
        stem: str, index: dict[str, dict[str, str]]
    ) -> tuple[str, str]:
        """(study, raw cell label) for a stem; legacy fallbacks."""
        entry = index.get(stem)
        if entry is not None:
            return str(entry.get("study", "default")), str(
                entry.get("label", stem)
            )
        return "default", stem

    def studies(self) -> list[str]:
        index = self._load_index()
        found = {self._address(stem, index)[0] for stem, *_ in self._scan()}
        return sorted(found)

    def cells(self, study: str) -> list[str]:
        index = self._load_index()
        found = set()
        for stem, *_ in self._scan():
            cell_study, label = self._address(stem, index)
            if cell_study == study:
                found.add(label)
        return sorted(found)

    def _documents_of(self, study: str, cell: str, doc_kind: str) -> list[str]:
        index = self._load_index()
        found = set()
        for stem, kind, doc_name, _ in self._scan():
            if kind != doc_kind:
                continue
            cell_study, label = self._address(stem, index)
            if cell_study == study and label == cell:
                found.add(doc_name)
        return sorted(found)

    def runs(self, study: str, cell: str) -> list[str]:
        return self._documents_of(study, cell, "checkpoint")

    def state_names(self, study: str, cell: str) -> list[str]:
        return self._documents_of(study, cell, "state")

    def has_results(self, study: str, cell: str) -> bool:
        return (
            self._read(
                self._results_path(cell), self._results_path(cell, legacy=True)
            )
            is not None
        )

    # ------------------------------------------------------------------
    def schema_version(self) -> int:
        path = self.root / INDEX_NAME
        if not path.is_file():
            return INDEX_VERSION
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return INDEX_VERSION
        return int(data.get("version", INDEX_VERSION))

    def vacuum(self) -> None:
        """Remove orphaned temp files left by crashed atomic writes."""
        if not self.root.is_dir():
            return
        for path in self.root.glob("*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass
