"""Study-store persistence layer (docs/STORE.md).

One interface, two stdlib-only backends::

    from repro.store import open_store

    store = open_store("ckpts")          # directory -> JsonlStudyStore
    store = open_store("campaign.db")    # *.db      -> SqliteStudyStore

Everything the tuning stack persists — run checkpoints, finished-cell
results, continuous-tuning epoch state — flows through a
:class:`~repro.store.base.StudyStore`, so a campaign can switch
backends (or be migrated between them, see
:func:`~repro.store.migrate.migrate_store`) without touching the loop
or the experiment runner.
"""

from __future__ import annotations

from pathlib import Path

from repro.store.base import (
    Lease,
    LeaseError,
    SchemaVersionError,
    StaleLeaseError,
    StoreCheckpointSlot,
    StoreError,
    StudyStore,
    cell_stem,
    sanitize_label,
)
from repro.store.jsonl import JsonlStudyStore
from repro.store.migrate import MigrationReport, migrate_store
from repro.store.sqlite import SqliteStudyStore

#: Path suffixes routed to the SQLite backend by :func:`open_store`.
SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


def open_store(spec: str | Path | StudyStore) -> StudyStore:
    """A store for ``spec``: a :class:`StudyStore` passes through, a
    path ending in ``.db``/``.sqlite``/``.sqlite3`` opens the SQLite
    backend, and anything else is a JSONL store directory (created on
    first write) — which is how every pre-store ``--resume DIR`` and
    ``checkpoint_dir=`` call site keeps its exact old behavior.
    """
    if isinstance(spec, StudyStore):
        return spec
    path = Path(spec)
    if path.suffix.lower() in SQLITE_SUFFIXES:
        return SqliteStudyStore(path)
    return JsonlStudyStore(path)


__all__ = [
    "JsonlStudyStore",
    "Lease",
    "LeaseError",
    "MigrationReport",
    "SchemaVersionError",
    "StaleLeaseError",
    "SqliteStudyStore",
    "StoreCheckpointSlot",
    "StoreError",
    "StudyStore",
    "cell_stem",
    "migrate_store",
    "open_store",
    "sanitize_label",
    "SQLITE_SUFFIXES",
]
