"""Lossless store-to-store migration.

Copies every document the source store enumerates — run checkpoints,
finished-cell results, named state documents — into the destination
through the public :class:`~repro.store.base.StudyStore` interface, so
any backend pair works in either direction.  Losslessness is pinned by
the contract tests: a JSONL→SQLite→JSONL round trip must reproduce the
original checkpoints byte-identically under
:func:`repro.core.checkpoint.canonical_history`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.store.base import StudyStore


@dataclass
class MigrationReport:
    """What one migration moved (the `store migrate` summary)."""

    studies: int = 0
    cells: int = 0
    checkpoints: int = 0
    observations: int = 0
    results: int = 0
    states: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "studies": self.studies,
            "cells": self.cells,
            "checkpoints": self.checkpoints,
            "observations": self.observations,
            "results": self.results,
            "states": self.states,
        }


def migrate_store(src: StudyStore, dst: StudyStore) -> MigrationReport:
    """Copy every document from ``src`` into ``dst``; return counts."""
    report = MigrationReport()
    for study in src.studies():
        report.studies += 1
        for cell in src.cells(study):
            report.cells += 1
            for run in src.runs(study, cell):
                checkpoint = src.load_checkpoint(study, cell, run)
                if checkpoint is None:
                    continue
                dst.save_checkpoint(study, cell, run, checkpoint)
                report.checkpoints += 1
                report.observations += checkpoint.completed
            results = src.load_results(study, cell)
            if results is not None:
                dst.save_results(study, cell, results)
                report.results += 1
            for name in src.state_names(study, cell):
                state = src.load_state(study, cell, name)
                if state is not None:
                    dst.save_state(study, cell, name, state)
                    report.states += 1
    return report
