"""SQLite study store: one database, many concurrent campaigns.

Stdlib ``sqlite3`` only — no new runtime dependencies.  The schema is
versioned through an explicit ``schema_version`` table and a migration
runner: opening a database created by an older build applies the
missing migrations in order (each in its own transaction), and opening
one created by a *newer* build raises
:class:`~repro.store.base.SchemaVersionError` instead of misreading it
(the store CLI maps that to exit code 2).

Observations are stored as their canonical JSON payloads —
``Observation.as_dict()`` verbatim — so a JSONL→SQLite→JSONL migration
round-trips byte-identically under
:func:`repro.core.checkpoint.canonical_history`.  WAL journaling plus a
generous busy timeout make the single file safe for the campaign
runner's process-parallel cells, which each open their own connection.
"""

from __future__ import annotations

import dataclasses
import json
import random
import sqlite3
import time
import warnings
from pathlib import Path
from typing import Callable, TypeVar

from repro.core.checkpoint import TuningCheckpoint, _json_default
from repro.core.history import Observation, TuningResult
from repro.store.base import (
    Lease,
    SchemaVersionError,
    StaleLeaseError,
    StoreError,
    StudyStore,
)

T = TypeVar("T")

SCHEMA_VERSION = 3

#: Explicit driver-level lock wait (milliseconds) before SQLITE_BUSY
#: surfaces at all, plus the bounded retry-with-jitter below for the
#: cases the driver cannot wait out (writer starvation under WAL).
BUSY_TIMEOUT_MS = 30_000
_BUSY_RETRIES = 8
_BUSY_BASE_SLEEP = 0.005

#: Migration steps, applied in version order inside one transaction
#: each.  Never edit a shipped entry — append a new version instead;
#: the runner replays exactly the missing suffix on old databases.
MIGRATIONS: dict[int, tuple[str, ...]] = {
    1: (
        """CREATE TABLE studies (
               id INTEGER PRIMARY KEY,
               name TEXT NOT NULL UNIQUE
           )""",
        """CREATE TABLE cells (
               id INTEGER PRIMARY KEY,
               study_id INTEGER NOT NULL REFERENCES studies(id),
               label TEXT NOT NULL,
               UNIQUE (study_id, label)
           )""",
        """CREATE TABLE runs (
               id INTEGER PRIMARY KEY,
               cell_id INTEGER NOT NULL REFERENCES cells(id),
               name TEXT NOT NULL,
               strategy TEXT NOT NULL DEFAULT '',
               seed TEXT,
               max_steps INTEGER NOT NULL DEFAULT 0,
               optimizer_state TEXT,
               UNIQUE (cell_id, name)
           )""",
        """CREATE TABLE observations (
               run_id INTEGER NOT NULL REFERENCES runs(id),
               step INTEGER NOT NULL,
               payload TEXT NOT NULL,
               PRIMARY KEY (run_id, step)
           )""",
        """CREATE TABLE results (
               cell_id INTEGER PRIMARY KEY REFERENCES cells(id),
               payload TEXT NOT NULL
           )""",
        """CREATE TABLE states (
               cell_id INTEGER NOT NULL REFERENCES cells(id),
               name TEXT NOT NULL,
               payload TEXT NOT NULL,
               PRIMARY KEY (cell_id, name)
           )""",
    ),
    2: (
        # `store ls` walks cells-per-study and runs-per-cell; the v1
        # UNIQUE constraints cover the lookups but not the reverse
        # walks on big multi-tenant databases.
        "CREATE INDEX idx_cells_study ON cells(study_id)",
        "CREATE INDEX idx_runs_cell ON runs(cell_id)",
    ),
    3: (
        # One lease row per cell for the multi-worker campaign queue:
        # `token` is the monotonic fencing token (bumped on every
        # acquisition), `deadline` the wall-clock heartbeat deadline,
        # `attempts` the total acquisition count (the poisoned-cell
        # quarantine bound), `reason` the last recorded failure.
        """CREATE TABLE leases (
               cell_id INTEGER PRIMARY KEY REFERENCES cells(id),
               owner TEXT NOT NULL DEFAULT '',
               token INTEGER NOT NULL DEFAULT 0,
               deadline REAL NOT NULL DEFAULT 0,
               status TEXT NOT NULL DEFAULT 'released',
               attempts INTEGER NOT NULL DEFAULT 0,
               reason TEXT NOT NULL DEFAULT ''
           )""",
    ),
}


class SqliteStudyStore(StudyStore):
    """Study store over one stdlib-``sqlite3`` database file."""

    kind = "sqlite"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=BUSY_TIMEOUT_MS / 1000)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        #: Busy-retry knobs, patchable in tests (jitter only perturbs
        #: wall-clock sleeps, never stored values).
        self._sleep = time.sleep
        self._jitter = random.Random()
        self._retry(self._migrate)

    def describe(self) -> str:
        return str(self.path)

    # ------------------------------------------------------------------
    # SQLITE_BUSY handling
    # ------------------------------------------------------------------
    @staticmethod
    def _is_busy(exc: sqlite3.OperationalError) -> bool:
        message = str(exc).lower()
        return "locked" in message or "busy" in message

    def _retry(self, op: Callable[[], T]) -> T:
        """Run ``op`` with bounded exponential backoff + jitter on
        SQLITE_BUSY/locked errors, so concurrent writers surface a
        :class:`StoreError` only after the store stayed contended well
        past the driver's own ``busy_timeout``."""
        delay = _BUSY_BASE_SLEEP
        for attempt in range(_BUSY_RETRIES):
            try:
                return op()
            except sqlite3.OperationalError as exc:
                if not self._is_busy(exc):
                    raise
                if attempt == _BUSY_RETRIES - 1:
                    raise StoreError(
                        f"store {self.path} stayed locked through "
                        f"{_BUSY_RETRIES} attempts: {exc}"
                    ) from exc
                self._sleep(delay * (1.0 + self._jitter.random()))
                delay *= 2.0
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Schema versioning
    # ------------------------------------------------------------------
    def _migrate(self) -> None:
        conn = self._conn
        with conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS schema_version "
                "(version INTEGER NOT NULL)"
            )
        current = self.schema_version()
        if current > SCHEMA_VERSION:
            raise SchemaVersionError(
                f"store {self.path} has schema version {current} but this "
                f"build reads version {SCHEMA_VERSION}; refusing to touch it"
            )
        for version in range(current + 1, SCHEMA_VERSION + 1):
            try:
                with conn:
                    for statement in MIGRATIONS[version]:
                        conn.execute(statement)
                    conn.execute("DELETE FROM schema_version")
                    conn.execute(
                        "INSERT INTO schema_version (version) VALUES (?)",
                        (version,),
                    )
            except sqlite3.OperationalError:
                # A fleet of workers can race on a fresh database: the
                # loser sees "already exists" (or busy) for a step the
                # winner just applied.  Trust the version table, not
                # the exception: re-raise only if the migration truly
                # has not landed yet.
                if self.schema_version() < version:
                    raise

    def schema_version(self) -> int:
        row = self._conn.execute(
            "SELECT MAX(version) FROM schema_version"
        ).fetchone()
        return int(row[0]) if row and row[0] is not None else 0

    # ------------------------------------------------------------------
    # Row helpers
    # ------------------------------------------------------------------
    def _cell_id(self, study: str, cell: str, *, create: bool) -> int | None:
        conn = self._conn
        row = conn.execute(
            "SELECT cells.id FROM cells JOIN studies "
            "ON cells.study_id = studies.id "
            "WHERE studies.name = ? AND cells.label = ?",
            (study, cell),
        ).fetchone()
        if row is not None:
            return int(row[0])
        if not create:
            return None

        def insert() -> None:
            with conn:
                conn.execute(
                    "INSERT OR IGNORE INTO studies (name) VALUES (?)", (study,)
                )
                study_id = int(
                    conn.execute(
                        "SELECT id FROM studies WHERE name = ?", (study,)
                    ).fetchone()[0]
                )
                conn.execute(
                    "INSERT OR IGNORE INTO cells (study_id, label) "
                    "VALUES (?, ?)",
                    (study_id, cell),
                )

        self._retry(insert)
        return self._cell_id(study, cell, create=False)

    # ------------------------------------------------------------------
    # Backend hooks
    # ------------------------------------------------------------------
    def _save_checkpoint(
        self, study: str, cell: str, run: str, checkpoint: TuningCheckpoint
    ) -> None:
        cell_id = self._cell_id(study, cell, create=True)
        conn = self._conn
        state = (
            None
            if checkpoint.optimizer_state is None
            else json.dumps(checkpoint.optimizer_state, default=_json_default)
        )
        self._retry(lambda: self._write_checkpoint(conn, cell_id, run, checkpoint, state))

    def _write_checkpoint(
        self,
        conn: sqlite3.Connection,
        cell_id: int | None,
        run: str,
        checkpoint: TuningCheckpoint,
        state: str | None,
    ) -> None:
        with conn:
            conn.execute(
                "INSERT INTO runs (cell_id, name, strategy, seed, max_steps, "
                "optimizer_state) VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT (cell_id, name) DO UPDATE SET "
                "strategy = excluded.strategy, seed = excluded.seed, "
                "max_steps = excluded.max_steps, "
                "optimizer_state = excluded.optimizer_state",
                (
                    cell_id,
                    run,
                    checkpoint.strategy,
                    # Derived seeds routinely exceed SQLite's signed
                    # 64-bit INTEGER range; store them as decimal text.
                    None if checkpoint.seed is None else str(checkpoint.seed),
                    checkpoint.max_steps,
                    state,
                ),
            )
            run_id = int(
                conn.execute(
                    "SELECT id FROM runs WHERE cell_id = ? AND name = ?",
                    (cell_id, run),
                ).fetchone()[0]
            )
            # The checkpoint is a whole-state replacement, exactly like
            # the JSONL atomic rewrite: drop any rows past the new
            # history before (re)writing the current one.
            conn.execute(
                "DELETE FROM observations WHERE run_id = ? AND step >= ?",
                (run_id, len(checkpoint.observations)),
            )
            conn.executemany(
                "INSERT OR REPLACE INTO observations (run_id, step, payload) "
                "VALUES (?, ?, ?)",
                (
                    (
                        run_id,
                        i,
                        json.dumps(
                            obs.as_dict(), sort_keys=True, default=_json_default
                        ),
                    )
                    for i, obs in enumerate(checkpoint.observations)
                ),
            )

    def _load_checkpoint(
        self, study: str, cell: str, run: str
    ) -> TuningCheckpoint | None:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return None
        row = self._conn.execute(
            "SELECT id, strategy, seed, max_steps, optimizer_state "
            "FROM runs WHERE cell_id = ? AND name = ?",
            (cell_id, run),
        ).fetchone()
        if row is None:
            return None
        run_id, strategy, seed, max_steps, state = row
        checkpoint = TuningCheckpoint(
            strategy=str(strategy),
            seed=None if seed is None else int(seed),
            max_steps=int(max_steps),
            optimizer_state=None if state is None else json.loads(state),
        )
        cursor = self._conn.execute(
            "SELECT rowid, payload FROM observations WHERE run_id = ? "
            "ORDER BY step",
            (run_id,),
        )
        for rowid, payload in cursor:
            try:
                checkpoint.observations.append(
                    Observation.from_dict(json.loads(payload))
                )
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                # Mirror the JSONL torn-tail contract: stop at the first
                # bad record, keep the trusted prefix, and *name* the
                # rejected row so the operator can inspect it.
                warnings.warn(
                    f"store {self.path}: observations rowid {rowid} for run "
                    f"{study}/{cell}/{run} is malformed ({exc}); keeping the "
                    f"{checkpoint.completed} observation(s) before it",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
        return checkpoint

    def _save_results(
        self, study: str, cell: str, results: list[TuningResult]
    ) -> None:
        cell_id = self._cell_id(study, cell, create=True)
        payload = json.dumps([r.as_dict() for r in results], default=str)

        def write() -> None:
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO results (cell_id, payload) "
                    "VALUES (?, ?)",
                    (cell_id, payload),
                )

        self._retry(write)

    def _load_results(
        self, study: str, cell: str
    ) -> list[TuningResult] | None:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return None
        row = self._conn.execute(
            "SELECT payload FROM results WHERE cell_id = ?", (cell_id,)
        ).fetchone()
        if row is None:
            return None
        try:
            return [TuningResult.from_dict(r) for r in json.loads(row[0])]
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def _save_state(
        self, study: str, cell: str, name: str, state: dict[str, object]
    ) -> None:
        cell_id = self._cell_id(study, cell, create=True)

        def write() -> None:
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO states (cell_id, name, payload) "
                    "VALUES (?, ?, ?)",
                    (cell_id, name, json.dumps(state, sort_keys=True)),
                )

        self._retry(write)

    def _load_state(
        self, study: str, cell: str, name: str
    ) -> dict[str, object] | None:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return None
        row = self._conn.execute(
            "SELECT payload FROM states WHERE cell_id = ? AND name = ?",
            (cell_id, name),
        ).fetchone()
        if row is None:
            return None
        try:
            data = json.loads(row[0])
        except json.JSONDecodeError:
            return None
        return dict(data) if isinstance(data, dict) else None

    # ------------------------------------------------------------------
    # Leases
    # ------------------------------------------------------------------
    _LEASE_COLUMNS = "owner, token, deadline, status, attempts, reason"

    @staticmethod
    def _lease_from_row(
        study: str, cell: str, row: tuple[object, ...]
    ) -> Lease:
        owner, token, deadline, status, attempts, reason = row
        return Lease(
            study=study,
            cell=cell,
            owner=str(owner),
            token=int(token),  # type: ignore[arg-type]
            deadline=float(deadline),  # type: ignore[arg-type]
            attempts=int(attempts),  # type: ignore[arg-type]
            status=str(status),
            reason=str(reason),
        )

    def _acquire_lease(
        self, study: str, cell: str, owner: str, ttl: float, now: float
    ) -> Lease | None:
        cell_id = self._cell_id(study, cell, create=True)

        def claim() -> Lease | None:
            conn = self._conn
            # One transaction: the conditional UPDATE is the atomic
            # claim (it serializes on the write lock), and the readback
            # of the bumped token happens before anyone else can write.
            with conn:
                conn.execute(
                    "INSERT OR IGNORE INTO leases (cell_id) VALUES (?)",
                    (cell_id,),
                )
                cursor = conn.execute(
                    "UPDATE leases SET owner = ?, token = token + 1, "
                    "deadline = ?, status = 'leased', "
                    "attempts = attempts + 1 "
                    "WHERE cell_id = ? "
                    "AND status NOT IN ('committed', 'quarantined') "
                    "AND NOT (status = 'leased' AND deadline > ?)",
                    (owner, now + ttl, cell_id, now),
                )
                if cursor.rowcount != 1:
                    return None
                row = conn.execute(
                    f"SELECT {self._LEASE_COLUMNS} FROM leases "
                    "WHERE cell_id = ?",
                    (cell_id,),
                ).fetchone()
            return self._lease_from_row(study, cell, row)

        return self._retry(claim)

    def _update_lease(
        self, lease: Lease, *, status: str, deadline: float, reason: str
    ) -> Lease:
        cell_id = self._cell_id(lease.study, lease.cell, create=False)

        def update() -> int:
            with self._conn:
                cursor = self._conn.execute(
                    "UPDATE leases SET status = ?, deadline = ?, reason = ? "
                    "WHERE cell_id = ? AND token = ? AND owner = ? "
                    "AND status = 'leased'",
                    (
                        status,
                        deadline,
                        reason,
                        cell_id,
                        lease.token,
                        lease.owner,
                    ),
                )
                return cursor.rowcount

        if cell_id is None or self._retry(update) != 1:
            current = self._read_lease(lease.study, lease.cell)
            raise StaleLeaseError(
                f"lease on {lease.study}/{lease.cell or '(root)'} "
                f"({lease.owner!r} token {lease.token}) is stale; current: "
                + (
                    "none"
                    if current is None
                    else f"{current.owner!r} token {current.token} "
                    f"{current.status}"
                )
            )
        return dataclasses.replace(
            lease, status=status, deadline=deadline, reason=reason
        )

    def _read_lease(self, study: str, cell: str) -> Lease | None:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return None
        row = self._conn.execute(
            f"SELECT {self._LEASE_COLUMNS} FROM leases "
            "WHERE cell_id = ? AND token > 0",
            (cell_id,),
        ).fetchone()
        return None if row is None else self._lease_from_row(study, cell, row)

    def _leases(self, study: str) -> list[Lease]:
        rows = self._conn.execute(
            f"SELECT cells.label, {self._LEASE_COLUMNS} FROM leases "
            "JOIN cells ON leases.cell_id = cells.id "
            "JOIN studies ON cells.study_id = studies.id "
            "WHERE studies.name = ? AND leases.token > 0",
            (study,),
        ).fetchall()
        return [
            self._lease_from_row(study, str(row[0]), row[1:]) for row in rows
        ]

    def _save_results_fenced(
        self,
        study: str,
        cell: str,
        results: list[TuningResult],
        owner: str,
        token: int,
    ) -> None:
        cell_id = self._cell_id(study, cell, create=False)
        payload = json.dumps([r.as_dict() for r in results], default=str)

        def write() -> bool:
            if cell_id is None:
                return False
            with self._conn:
                held = self._conn.execute(
                    "SELECT 1 FROM leases WHERE cell_id = ? AND token = ? "
                    "AND owner = ? AND status = 'leased'",
                    (cell_id, token, owner),
                ).fetchone()
                if held is None:
                    return False
                self._conn.execute(
                    "INSERT OR REPLACE INTO results (cell_id, payload) "
                    "VALUES (?, ?)",
                    (cell_id, payload),
                )
            return True

        if not self._retry(write):
            raise StaleLeaseError(
                f"results for {study}/{cell or '(root)'} rejected: "
                f"{owner!r} token {token} is not the current lease"
            )

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def studies(self) -> list[str]:
        return [
            str(row[0])
            for row in self._conn.execute(
                "SELECT name FROM studies ORDER BY name"
            )
        ]

    def cells(self, study: str) -> list[str]:
        # A cell counts once it holds *content* (runs, results, or
        # state).  A bare lease row is coordination metadata — matching
        # the JSONL backend, which never enumerates lease files.
        return [
            str(row[0])
            for row in self._conn.execute(
                "SELECT cells.label FROM cells JOIN studies "
                "ON cells.study_id = studies.id "
                "WHERE studies.name = ? AND ("
                "EXISTS (SELECT 1 FROM runs WHERE runs.cell_id = cells.id)"
                " OR EXISTS "
                "(SELECT 1 FROM results WHERE results.cell_id = cells.id)"
                " OR EXISTS "
                "(SELECT 1 FROM states WHERE states.cell_id = cells.id)"
                ") ORDER BY cells.label",
                (study,),
            )
        ]

    def runs(self, study: str, cell: str) -> list[str]:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return []
        return [
            str(row[0])
            for row in self._conn.execute(
                "SELECT name FROM runs WHERE cell_id = ? ORDER BY name",
                (cell_id,),
            )
        ]

    def state_names(self, study: str, cell: str) -> list[str]:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return []
        return [
            str(row[0])
            for row in self._conn.execute(
                "SELECT name FROM states WHERE cell_id = ? ORDER BY name",
                (cell_id,),
            )
        ]

    def has_results(self, study: str, cell: str) -> bool:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return False
        return (
            self._conn.execute(
                "SELECT 1 FROM results WHERE cell_id = ?", (cell_id,)
            ).fetchone()
            is not None
        )

    def observation_count(self, study: str, cell: str) -> int:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return 0
        row = self._conn.execute(
            "SELECT COUNT(*) FROM observations JOIN runs "
            "ON observations.run_id = runs.id WHERE runs.cell_id = ?",
            (cell_id,),
        ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    def vacuum(self) -> None:
        self._conn.execute("VACUUM")

    def close(self) -> None:
        try:
            self._conn.close()
        except sqlite3.Error as exc:  # pragma: no cover - defensive
            raise StoreError(f"closing {self.path} failed: {exc}") from exc
