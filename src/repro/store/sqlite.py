"""SQLite study store: one database, many concurrent campaigns.

Stdlib ``sqlite3`` only — no new runtime dependencies.  The schema is
versioned through an explicit ``schema_version`` table and a migration
runner: opening a database created by an older build applies the
missing migrations in order (each in its own transaction), and opening
one created by a *newer* build raises
:class:`~repro.store.base.SchemaVersionError` instead of misreading it
(the store CLI maps that to exit code 2).

Observations are stored as their canonical JSON payloads —
``Observation.as_dict()`` verbatim — so a JSONL→SQLite→JSONL migration
round-trips byte-identically under
:func:`repro.core.checkpoint.canonical_history`.  WAL journaling plus a
generous busy timeout make the single file safe for the campaign
runner's process-parallel cells, which each open their own connection.
"""

from __future__ import annotations

import json
import sqlite3
import warnings
from pathlib import Path

from repro.core.checkpoint import TuningCheckpoint, _json_default
from repro.core.history import Observation, TuningResult
from repro.store.base import SchemaVersionError, StoreError, StudyStore

SCHEMA_VERSION = 2

#: Migration steps, applied in version order inside one transaction
#: each.  Never edit a shipped entry — append a new version instead;
#: the runner replays exactly the missing suffix on old databases.
MIGRATIONS: dict[int, tuple[str, ...]] = {
    1: (
        """CREATE TABLE studies (
               id INTEGER PRIMARY KEY,
               name TEXT NOT NULL UNIQUE
           )""",
        """CREATE TABLE cells (
               id INTEGER PRIMARY KEY,
               study_id INTEGER NOT NULL REFERENCES studies(id),
               label TEXT NOT NULL,
               UNIQUE (study_id, label)
           )""",
        """CREATE TABLE runs (
               id INTEGER PRIMARY KEY,
               cell_id INTEGER NOT NULL REFERENCES cells(id),
               name TEXT NOT NULL,
               strategy TEXT NOT NULL DEFAULT '',
               seed TEXT,
               max_steps INTEGER NOT NULL DEFAULT 0,
               optimizer_state TEXT,
               UNIQUE (cell_id, name)
           )""",
        """CREATE TABLE observations (
               run_id INTEGER NOT NULL REFERENCES runs(id),
               step INTEGER NOT NULL,
               payload TEXT NOT NULL,
               PRIMARY KEY (run_id, step)
           )""",
        """CREATE TABLE results (
               cell_id INTEGER PRIMARY KEY REFERENCES cells(id),
               payload TEXT NOT NULL
           )""",
        """CREATE TABLE states (
               cell_id INTEGER NOT NULL REFERENCES cells(id),
               name TEXT NOT NULL,
               payload TEXT NOT NULL,
               PRIMARY KEY (cell_id, name)
           )""",
    ),
    2: (
        # `store ls` walks cells-per-study and runs-per-cell; the v1
        # UNIQUE constraints cover the lookups but not the reverse
        # walks on big multi-tenant databases.
        "CREATE INDEX idx_cells_study ON cells(study_id)",
        "CREATE INDEX idx_runs_cell ON runs(cell_id)",
    ),
}


class SqliteStudyStore(StudyStore):
    """Study store over one stdlib-``sqlite3`` database file."""

    kind = "sqlite"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=30.0)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._migrate()

    def describe(self) -> str:
        return str(self.path)

    # ------------------------------------------------------------------
    # Schema versioning
    # ------------------------------------------------------------------
    def _migrate(self) -> None:
        conn = self._conn
        with conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS schema_version "
                "(version INTEGER NOT NULL)"
            )
        row = conn.execute("SELECT MAX(version) FROM schema_version").fetchone()
        current = int(row[0]) if row and row[0] is not None else 0
        if current > SCHEMA_VERSION:
            raise SchemaVersionError(
                f"store {self.path} has schema version {current} but this "
                f"build reads version {SCHEMA_VERSION}; refusing to touch it"
            )
        for version in range(current + 1, SCHEMA_VERSION + 1):
            with conn:
                for statement in MIGRATIONS[version]:
                    conn.execute(statement)
                conn.execute("DELETE FROM schema_version")
                conn.execute(
                    "INSERT INTO schema_version (version) VALUES (?)",
                    (version,),
                )

    def schema_version(self) -> int:
        row = self._conn.execute(
            "SELECT MAX(version) FROM schema_version"
        ).fetchone()
        return int(row[0]) if row and row[0] is not None else 0

    # ------------------------------------------------------------------
    # Row helpers
    # ------------------------------------------------------------------
    def _cell_id(self, study: str, cell: str, *, create: bool) -> int | None:
        conn = self._conn
        row = conn.execute(
            "SELECT cells.id FROM cells JOIN studies "
            "ON cells.study_id = studies.id "
            "WHERE studies.name = ? AND cells.label = ?",
            (study, cell),
        ).fetchone()
        if row is not None:
            return int(row[0])
        if not create:
            return None
        with conn:
            conn.execute(
                "INSERT OR IGNORE INTO studies (name) VALUES (?)", (study,)
            )
            study_id = int(
                conn.execute(
                    "SELECT id FROM studies WHERE name = ?", (study,)
                ).fetchone()[0]
            )
            conn.execute(
                "INSERT OR IGNORE INTO cells (study_id, label) VALUES (?, ?)",
                (study_id, cell),
            )
        return self._cell_id(study, cell, create=False)

    # ------------------------------------------------------------------
    # Backend hooks
    # ------------------------------------------------------------------
    def _save_checkpoint(
        self, study: str, cell: str, run: str, checkpoint: TuningCheckpoint
    ) -> None:
        cell_id = self._cell_id(study, cell, create=True)
        conn = self._conn
        state = (
            None
            if checkpoint.optimizer_state is None
            else json.dumps(checkpoint.optimizer_state, default=_json_default)
        )
        with conn:
            conn.execute(
                "INSERT INTO runs (cell_id, name, strategy, seed, max_steps, "
                "optimizer_state) VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT (cell_id, name) DO UPDATE SET "
                "strategy = excluded.strategy, seed = excluded.seed, "
                "max_steps = excluded.max_steps, "
                "optimizer_state = excluded.optimizer_state",
                (
                    cell_id,
                    run,
                    checkpoint.strategy,
                    # Derived seeds routinely exceed SQLite's signed
                    # 64-bit INTEGER range; store them as decimal text.
                    None if checkpoint.seed is None else str(checkpoint.seed),
                    checkpoint.max_steps,
                    state,
                ),
            )
            run_id = int(
                conn.execute(
                    "SELECT id FROM runs WHERE cell_id = ? AND name = ?",
                    (cell_id, run),
                ).fetchone()[0]
            )
            # The checkpoint is a whole-state replacement, exactly like
            # the JSONL atomic rewrite: drop any rows past the new
            # history before (re)writing the current one.
            conn.execute(
                "DELETE FROM observations WHERE run_id = ? AND step >= ?",
                (run_id, len(checkpoint.observations)),
            )
            conn.executemany(
                "INSERT OR REPLACE INTO observations (run_id, step, payload) "
                "VALUES (?, ?, ?)",
                (
                    (
                        run_id,
                        i,
                        json.dumps(
                            obs.as_dict(), sort_keys=True, default=_json_default
                        ),
                    )
                    for i, obs in enumerate(checkpoint.observations)
                ),
            )

    def _load_checkpoint(
        self, study: str, cell: str, run: str
    ) -> TuningCheckpoint | None:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return None
        row = self._conn.execute(
            "SELECT id, strategy, seed, max_steps, optimizer_state "
            "FROM runs WHERE cell_id = ? AND name = ?",
            (cell_id, run),
        ).fetchone()
        if row is None:
            return None
        run_id, strategy, seed, max_steps, state = row
        checkpoint = TuningCheckpoint(
            strategy=str(strategy),
            seed=None if seed is None else int(seed),
            max_steps=int(max_steps),
            optimizer_state=None if state is None else json.loads(state),
        )
        cursor = self._conn.execute(
            "SELECT rowid, payload FROM observations WHERE run_id = ? "
            "ORDER BY step",
            (run_id,),
        )
        for rowid, payload in cursor:
            try:
                checkpoint.observations.append(
                    Observation.from_dict(json.loads(payload))
                )
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                # Mirror the JSONL torn-tail contract: stop at the first
                # bad record, keep the trusted prefix, and *name* the
                # rejected row so the operator can inspect it.
                warnings.warn(
                    f"store {self.path}: observations rowid {rowid} for run "
                    f"{study}/{cell}/{run} is malformed ({exc}); keeping the "
                    f"{checkpoint.completed} observation(s) before it",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
        return checkpoint

    def _save_results(
        self, study: str, cell: str, results: list[TuningResult]
    ) -> None:
        cell_id = self._cell_id(study, cell, create=True)
        payload = json.dumps([r.as_dict() for r in results], default=str)
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO results (cell_id, payload) "
                "VALUES (?, ?)",
                (cell_id, payload),
            )

    def _load_results(
        self, study: str, cell: str
    ) -> list[TuningResult] | None:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return None
        row = self._conn.execute(
            "SELECT payload FROM results WHERE cell_id = ?", (cell_id,)
        ).fetchone()
        if row is None:
            return None
        try:
            return [TuningResult.from_dict(r) for r in json.loads(row[0])]
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def _save_state(
        self, study: str, cell: str, name: str, state: dict[str, object]
    ) -> None:
        cell_id = self._cell_id(study, cell, create=True)
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO states (cell_id, name, payload) "
                "VALUES (?, ?, ?)",
                (cell_id, name, json.dumps(state, sort_keys=True)),
            )

    def _load_state(
        self, study: str, cell: str, name: str
    ) -> dict[str, object] | None:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return None
        row = self._conn.execute(
            "SELECT payload FROM states WHERE cell_id = ? AND name = ?",
            (cell_id, name),
        ).fetchone()
        if row is None:
            return None
        try:
            data = json.loads(row[0])
        except json.JSONDecodeError:
            return None
        return dict(data) if isinstance(data, dict) else None

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def studies(self) -> list[str]:
        return [
            str(row[0])
            for row in self._conn.execute(
                "SELECT name FROM studies ORDER BY name"
            )
        ]

    def cells(self, study: str) -> list[str]:
        return [
            str(row[0])
            for row in self._conn.execute(
                "SELECT cells.label FROM cells JOIN studies "
                "ON cells.study_id = studies.id "
                "WHERE studies.name = ? ORDER BY cells.label",
                (study,),
            )
        ]

    def runs(self, study: str, cell: str) -> list[str]:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return []
        return [
            str(row[0])
            for row in self._conn.execute(
                "SELECT name FROM runs WHERE cell_id = ? ORDER BY name",
                (cell_id,),
            )
        ]

    def state_names(self, study: str, cell: str) -> list[str]:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return []
        return [
            str(row[0])
            for row in self._conn.execute(
                "SELECT name FROM states WHERE cell_id = ? ORDER BY name",
                (cell_id,),
            )
        ]

    def has_results(self, study: str, cell: str) -> bool:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return False
        return (
            self._conn.execute(
                "SELECT 1 FROM results WHERE cell_id = ?", (cell_id,)
            ).fetchone()
            is not None
        )

    def observation_count(self, study: str, cell: str) -> int:
        cell_id = self._cell_id(study, cell, create=False)
        if cell_id is None:
            return 0
        row = self._conn.execute(
            "SELECT COUNT(*) FROM observations JOIN runs "
            "ON observations.run_id = runs.id WHERE runs.cell_id = ?",
            (cell_id,),
        ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    def vacuum(self) -> None:
        self._conn.execute("VACUUM")

    def close(self) -> None:
        try:
            self._conn.close()
        except sqlite3.Error as exc:  # pragma: no cover - defensive
            raise StoreError(f"closing {self.path} failed: {exc}") from exc
