"""Covariance kernels for the Gaussian-process surrogate.

The paper's optimizer (Spearmint) models the objective with a Gaussian
process; its default covariance is the Matérn-5/2 kernel, recommended by
Snoek et al. [17] for machine-learning objectives because it does not
impose the unrealistic infinite smoothness of the squared exponential.
Both are implemented with either a shared (isotropic) or per-dimension
(ARD) lengthscale, with analytic gradients with respect to their log
hyperparameters for marginal-likelihood fitting.
"""

from __future__ import annotations

import abc
import math

import numpy as np


def _pairwise_scaled_sq_dists(
    X1: np.ndarray, X2: np.ndarray, lengthscales: np.ndarray
) -> np.ndarray:
    """Squared distances after per-dimension scaling by lengthscales."""
    A = X1 / lengthscales
    B = X2 / lengthscales
    sq = (
        np.sum(A**2, axis=1)[:, None]
        + np.sum(B**2, axis=1)[None, :]
        - 2.0 * A @ B.T
    )
    return np.maximum(sq, 0.0)


class Kernel(abc.ABC):
    """A stationary covariance function with tunable log hyperparameters.

    Hyperparameters are stored as a flat vector ``theta`` of logs:
    ``[log variance, log lengthscale_1, ..., log lengthscale_m]`` with
    ``m = dim`` for ARD kernels and ``m = 1`` for isotropic ones.
    """

    def __init__(self, dim: int, *, ard: bool = True) -> None:
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        self.ard = ard
        n_ls = dim if ard else 1
        self._log_variance = 0.0
        self._log_lengthscales = np.zeros(n_ls) + math.log(0.3)

    # ------------------------------------------------------------------
    # Hyperparameter plumbing
    # ------------------------------------------------------------------
    @property
    def variance(self) -> float:
        return math.exp(self._log_variance)

    @property
    def lengthscales(self) -> np.ndarray:
        ls = np.exp(self._log_lengthscales)
        return ls if self.ard else np.full(self.dim, ls[0])

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate(([self._log_variance], self._log_lengthscales))

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        if value.shape != (self.n_hyperparameters,):
            raise ValueError(
                f"expected {self.n_hyperparameters} hyperparameters, "
                f"got shape {value.shape}"
            )
        self._log_variance = float(value[0])
        self._log_lengthscales = value[1:].copy()

    @property
    def n_hyperparameters(self) -> int:
        return 1 + len(self._log_lengthscales)

    def theta_bounds(self) -> list[tuple[float, float]]:
        """Log-space box constraints used during ML-II fitting.

        Inputs live in the unit cube, so lengthscales are bounded to
        [0.01, 10]; the signal variance to [1e-4, 1e4] (targets are
        standardized before fitting).
        """
        bounds = [(math.log(1e-4), math.log(1e4))]
        bounds.extend(
            [(math.log(0.01), math.log(10.0))] * len(self._log_lengthscales)
        )
        return bounds

    # ------------------------------------------------------------------
    # Covariance evaluation
    # ------------------------------------------------------------------
    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        X1 = np.atleast_2d(np.asarray(X1, dtype=float))
        X2 = X1 if X2 is None else np.atleast_2d(np.asarray(X2, dtype=float))
        if X1.shape[1] != self.dim or X2.shape[1] != self.dim:
            raise ValueError("input dimensionality mismatch")
        sq = _pairwise_scaled_sq_dists(X1, X2, self.lengthscales)
        return self.variance * self._shape(sq)

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.full(X.shape[0], self.variance)

    def value_and_grads(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Training covariance ``K(X, X)`` and ``dK/dtheta_j`` matrices.

        The gradients come back stacked as one ``(n_hyperparameters, n,
        n)`` array, built by a single broadcast over dimensions rather
        than a per-dimension Python loop.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        A = X / self.lengthscales
        sq = _pairwise_scaled_sq_dists(X, X, self.lengthscales)
        K = self.variance * self._shape(sq)
        radial = self.variance * self._radial_factor(sq)
        grads = np.empty((self.n_hyperparameters, X.shape[0], X.shape[0]))
        grads[0] = K  # d/d log variance = K
        if self.ard:
            diffs = A[:, None, :] - A[None, :, :]  # (n, n, dim)
            grads[1:] = np.einsum("ij,ijd->dij", radial, diffs**2)
        else:
            grads[1] = radial * sq
        return K, grads

    def grad_dot(self, X: np.ndarray, W: np.ndarray) -> np.ndarray:
        """``sum_ij W_ij * dK_ij/dtheta_j`` for every hyperparameter.

        The ML-II gradient only ever needs these inner products, so this
        skips materializing the per-dimension ``dK`` matrices entirely:
        with ``M = W * radial`` and ``A = X / lengthscales``,

        ``sum_ij M_ij (A_id - A_jd)^2
            = r·A_d² + c·A_d² - 2 A_d·(M A)_d``

        with ``r``/``c`` the row/column sums of ``M`` — two matmuls and
        an einsum, O(n² d) BLAS flops and O(n² + n d) memory.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        A = X / self.lengthscales
        sq = _pairwise_scaled_sq_dists(X, X, self.lengthscales)
        K = self.variance * self._shape(sq)
        out = np.empty(self.n_hyperparameters)
        out[0] = float(np.sum(W * K))
        M = W * (self.variance * self._radial_factor(sq))
        if self.ard:
            A_sq = A**2
            row = M.sum(axis=1)
            col = M.sum(axis=0)
            MA = M @ A
            out[1:] = row @ A_sq + col @ A_sq - 2.0 * np.einsum("id,id->d", A, MA)
        else:
            out[1] = float(np.sum(M * sq))
        return out

    @abc.abstractmethod
    def _shape(self, sq_dists: np.ndarray) -> np.ndarray:
        """Unit-variance kernel value as a function of scaled sq. distance."""

    @abc.abstractmethod
    def _radial_factor(self, sq_dists: np.ndarray) -> np.ndarray:
        """Factor ``F`` such that ``dK/d(log l_d) = variance * F * u_d``
        with ``u_d`` the per-dimension scaled squared distance."""

    def clone(self) -> "Kernel":
        other = type(self)(self.dim, ard=self.ard)
        other.theta = self.theta
        return other

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"{type(self).__name__}(dim={self.dim}, ard={self.ard}, "
            f"variance={self.variance:.4g})"
        )


class RBF(Kernel):
    """Squared-exponential kernel: ``v * exp(-r^2 / 2)``."""

    def _shape(self, sq_dists: np.ndarray) -> np.ndarray:
        return np.exp(-0.5 * sq_dists)

    def _radial_factor(self, sq_dists: np.ndarray) -> np.ndarray:
        # dK/d(log l_d) = K * u_d  with u_d = diff_d^2 / l_d^2.
        return np.exp(-0.5 * sq_dists)


class Matern52(Kernel):
    """Matérn kernel with smoothness 5/2 (Spearmint's default).

    ``k(r) = v * (1 + sqrt(5) r + 5 r^2 / 3) exp(-sqrt(5) r)``.
    """

    def _shape(self, sq_dists: np.ndarray) -> np.ndarray:
        r = np.sqrt(sq_dists)
        s = math.sqrt(5.0) * r
        return (1.0 + s + s**2 / 3.0) * np.exp(-s)

    def _radial_factor(self, sq_dists: np.ndarray) -> np.ndarray:
        # dk/d(log l_d) = v * (5/3) (1 + sqrt(5) r) exp(-sqrt(5) r) * u_d.
        r = np.sqrt(sq_dists)
        s = math.sqrt(5.0) * r
        return (5.0 / 3.0) * (1.0 + s) * np.exp(-s)


class Matern32(Kernel):
    """Matérn kernel with smoothness 3/2 (rougher objectives).

    ``k(r) = v * (1 + sqrt(3) r) exp(-sqrt(3) r)``.
    """

    def _shape(self, sq_dists: np.ndarray) -> np.ndarray:
        s = math.sqrt(3.0) * np.sqrt(sq_dists)
        return (1.0 + s) * np.exp(-s)

    def _radial_factor(self, sq_dists: np.ndarray) -> np.ndarray:
        # From dk/dr = -3 v r exp(-s): dk/d(log l_d) = 3 v exp(-s) * u_d.
        s = math.sqrt(3.0) * np.sqrt(sq_dists)
        return 3.0 * np.exp(-s)


KERNELS = {
    "rbf": RBF,
    "matern32": Matern32,
    "matern52": Matern52,
}


def make_kernel(name: str, dim: int, *, ard: bool = True) -> Kernel:
    """Kernel factory by name ('rbf', 'matern32', 'matern52')."""
    try:
        cls = KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}"
        ) from None
    return cls(dim, ard=ard)
