"""Acquisition functions and their optimizer.

The acquisition function trades off *exploration* (high posterior
variance) against *exploitation* (high posterior mean).  The paper uses
Mockus' Expected Improvement — Spearmint's default — and we also provide
Probability of Improvement and GP-UCB for the ablation benches
(DESIGN.md §6, A1).

All functions are phrased for **maximization** of the objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import optimize as sopt
from scipy import stats

from repro.core.gp import GaussianProcess
from repro.core.parameters import ParameterSpace


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.0
) -> np.ndarray:
    """Mockus' Expected Improvement over the incumbent ``best``.

    ``EI(x) = E[max(0, f(x) - best - xi)]`` which for a Gaussian
    posterior has the closed form ``s * (z Phi(z) + phi(z))`` with
    ``z = (mu - best - xi) / s`` (paper §III-C).
    """
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    improvement = mean - best - xi
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(std > 0, improvement / std, 0.0)
    ei = np.where(
        std > 0,
        improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z),
        np.maximum(improvement, 0.0),
    )
    return np.maximum(ei, 0.0)


def probability_of_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.0
) -> np.ndarray:
    """P(f(x) > best + xi) under the Gaussian posterior."""
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    improvement = mean - best - xi
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(std > 0, improvement / std, 0.0)
    return np.where(std > 0, stats.norm.cdf(z), (improvement > 0).astype(float))


def upper_confidence_bound(
    mean: np.ndarray, std: np.ndarray, best: float = 0.0, kappa: float = 2.0
) -> np.ndarray:
    """GP-UCB: ``mu + kappa * sigma`` (``best`` accepted for uniformity)."""
    return np.asarray(mean, dtype=float) + kappa * np.asarray(std, dtype=float)


ACQUISITIONS = {
    "ei": expected_improvement,
    "pi": probability_of_improvement,
    "ucb": upper_confidence_bound,
}


@dataclass
class Proposal:
    """The acquisition optimizer's chosen next sample."""

    x: np.ndarray  # unit-cube point, snapped to the space's grid
    acquisition_value: float
    n_candidates: int = 0  # size of the scored candidate pool
    n_refined: int = 0  # top candidates handed to L-BFGS-B refinement
    refine_iterations: int = 0  # total L-BFGS-B iterations across them
    n_screened_out: int = 0  # candidates the feasibility screener rejected


class AcquisitionOptimizer:
    """Maximize an acquisition function over a parameter space.

    Strategy (Spearmint-like):

    1. score a large batch of candidates — Latin-hypercube samples plus
       Gaussian perturbations of the incumbent (local exploitation);
    2. for spaces with continuous dimensions, refine the top candidates
       with L-BFGS-B on the acquisition surface (numeric gradients) and
       snap back onto the representable grid.

    Integer-only spaces skip the continuous refinement, mirroring how
    Spearmint treated pure integer problems; this is also why the
    informed optimizer (one float dimension) pays more per step than
    the plain one (paper Figure 7's bo-vs-ibo gap).
    """

    def __init__(
        self,
        acquisition: str = "ei",
        n_candidates: int = 1024,
        n_refine: int = 5,
        xi: float = 0.0,
        screen: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> None:
        if acquisition not in ACQUISITIONS:
            raise ValueError(
                f"unknown acquisition {acquisition!r}; available: "
                f"{sorted(ACQUISITIONS)}"
            )
        if n_candidates < 1:
            raise ValueError("n_candidates must be >= 1")
        self.acquisition = acquisition
        self.n_candidates = n_candidates
        self.n_refine = n_refine
        self.xi = xi
        #: Optional feasibility screen: ``(M, dim)`` unit-cube candidate
        #: matrix -> boolean keep-mask.  Screened-out candidates are
        #: dropped from the acquisition ranking (and from gradient
        #: refinement) *before* any is chosen — cheap model-side
        #: screening of known-infeasible configurations, e.g.
        #: :func:`repro.storm.analytic_batch.make_analytic_screener`.
        #: Opt-in: ``None`` (the default) leaves proposals untouched.
        self.screen = screen
        #: Optional trust region ``(center, radius)`` in unit-cube
        #: coordinates: every candidate is clipped into the box
        #: ``[center - radius, center + radius]`` (intersected with the
        #: cube) before scoring, and gradient refinement is bounded to
        #: the same box.  The continuous-tuning loop sets this around
        #: the incumbent after a drift detection so re-tuning explores
        #: conservatively (docs/DRIFT.md); ``None`` disables it.
        self.trust_region: tuple[np.ndarray, float] | None = None

    # ------------------------------------------------------------------
    def score(
        self, gp: GaussianProcess, X: np.ndarray, best: float
    ) -> np.ndarray:
        mean, std = gp.predict(X)
        fn = ACQUISITIONS[self.acquisition]
        if self.acquisition == "ucb":
            return fn(mean, std, best)
        return fn(mean, std, best, self.xi)

    def propose(
        self,
        gp: GaussianProcess,
        space: ParameterSpace,
        best_x: np.ndarray | None,
        best_y: float,
        rng: np.random.Generator,
    ) -> Proposal:
        candidates = [space.latin_hypercube(self.n_candidates, rng)]
        # Diagonal line: all-coordinates-equal points sweep the "uniform
        # configuration" ridge, which is a strong direction in
        # parallelism spaces (and cheap to cover exhaustively).
        diag = np.linspace(0.0, 1.0, 33)[:, None] * np.ones((1, space.dim))
        candidates.append(space.round_trip_batch(diag))
        if best_x is not None:
            local = best_x[None, :] + rng.normal(
                0.0, 0.05, size=(max(8, self.n_candidates // 8), space.dim)
            )
            candidates.append(space.round_trip_batch(np.clip(local, 0.0, 1.0)))
            candidates.append(self._neighbourhood(space, best_x, rng))
        candidates = np.vstack(candidates)
        if self.trust_region is not None:
            lo, hi = self._trust_bounds(space.dim)
            candidates = space.round_trip_batch(np.clip(candidates, lo, hi))
        scores = self.score(gp, candidates, best_y)
        n_screened_out = 0
        if self.screen is not None:
            keep = np.asarray(self.screen(candidates), dtype=bool)
            # Only apply a usable verdict: if the screen rejects the
            # entire pool the ranking falls back to unscreened scores
            # (the optimizer must still propose *something*).
            if keep.shape == (candidates.shape[0],) and bool(keep.any()):
                n_screened_out = int((~keep).sum())
                scores = np.where(keep, scores, -np.inf)
        order = np.argsort(scores)[::-1]
        best_idx = int(order[0])
        best_point = candidates[best_idx]
        best_score = float(scores[best_idx])

        has_continuous = any(not p.is_discrete for p in space.parameters)
        n_refined = 0
        refine_iterations = 0
        if has_continuous and self.n_refine > 0 and gp.is_fitted:
            for idx in order[: self.n_refine]:
                if not np.isfinite(scores[int(idx)]):
                    continue  # screened out — don't refine from it
                refined, value, iterations = self._refine(
                    gp, space, candidates[int(idx)], best_y
                )
                n_refined += 1
                refine_iterations += iterations
                if value > best_score:
                    best_score = value
                    best_point = refined
        return Proposal(
            x=best_point,
            acquisition_value=best_score,
            n_candidates=candidates.shape[0],
            n_refined=n_refined,
            refine_iterations=refine_iterations,
            n_screened_out=n_screened_out,
        )

    def _trust_bounds(self, dim: int) -> tuple[np.ndarray, np.ndarray]:
        """The trust-region box intersected with the unit cube."""
        assert self.trust_region is not None
        center, radius = self.trust_region
        center = np.asarray(center, dtype=float).ravel()
        if center.shape[0] != dim:
            raise ValueError(
                f"trust-region center has dim {center.shape[0]}, space has {dim}"
            )
        lo = np.clip(center - radius, 0.0, 1.0)
        hi = np.clip(center + radius, 0.0, 1.0)
        return lo, hi

    def _neighbourhood(
        self,
        space: ParameterSpace,
        best_x: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Single-coordinate and diagonal-shift neighbours of the incumbent.

        For discrete dimensions this is the +/- one grid-step move set; a
        few whole-vector shifts ("raise/lower everything") are added
        because parallelism responses are strongly monotone along that
        direction.  Capped so very high-dimensional spaces stay cheap.
        """
        moves: list[np.ndarray] = []
        dims = list(range(space.dim))
        if space.dim > 128:
            dims = list(rng.choice(space.dim, size=128, replace=False))
        for d in dims:
            param = space.parameters[d]
            step = 1.0 / getattr(param, "n_values", 32)
            for sign in (-1.0, 1.0):
                x = best_x.copy()
                x[d] = min(1.0, max(0.0, x[d] + sign * step))
                moves.append(x)
        for shift in (-0.1, -0.05, 0.05, 0.1):
            moves.append(np.clip(best_x + shift, 0.0, 1.0))
        return space.round_trip_batch(np.array(moves))

    def _refine(
        self,
        gp: GaussianProcess,
        space: ParameterSpace,
        x0: np.ndarray,
        best_y: float,
    ) -> tuple[np.ndarray, float, int]:
        # Central-difference gradient evaluated as ONE batched posterior
        # predict per L-BFGS iteration (2 dim + 1 points), instead of
        # letting scipy probe the acquisition one point per coordinate.
        dim = space.dim
        eps = 1e-5
        eye = np.eye(dim) * eps

        def neg_acq_and_grad(x: np.ndarray) -> tuple[float, np.ndarray]:
            pts = np.vstack([x[None, :], x[None, :] + eye, x[None, :] - eye])
            values = self.score(gp, np.clip(pts, 0.0, 1.0), best_y)
            grad = (values[1 : 1 + dim] - values[1 + dim :]) / (2.0 * eps)
            return -float(values[0]), -grad

        if self.trust_region is not None:
            lo, hi = self._trust_bounds(dim)
            bounds = list(zip(lo.tolist(), hi.tolist()))
            x0 = np.clip(x0, lo, hi)
        else:
            bounds = [(0.0, 1.0)] * dim
        result = sopt.minimize(
            neg_acq_and_grad,
            x0,
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": 30},
        )
        snapped = space.round_trip(np.clip(result.x, 0.0, 1.0))
        score = float(self.score(gp, snapped[None, :], best_y)[0])
        return snapped, score, int(getattr(result, "nit", 0))
