"""Observation records and tuning-run results."""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence


@dataclass(frozen=True)
class Observation:
    """One optimization step: a configuration and its measured value.

    ``failed`` / ``failure_reason`` / ``bottleneck`` carry the engine's
    diagnosis for this measurement (when the objective exposes one), so
    failed configurations are distinguishable from genuinely
    zero-throughput ones after the fact, and successful ones record
    which operator or capacity cap bound their throughput.
    """

    step: int
    config: Mapping[str, object]
    value: float
    suggest_seconds: float = 0.0
    evaluate_seconds: float = 0.0
    failed: bool = False
    failure_reason: str = ""
    bottleneck: str = ""

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("step must be >= 0")
        object.__setattr__(self, "config", dict(self.config))

    def as_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "step": self.step,
            "config": dict(self.config),
            "value": self.value,
            "suggest_seconds": self.suggest_seconds,
            "evaluate_seconds": self.evaluate_seconds,
        }
        if self.failed:
            data["failed"] = True
            data["failure_reason"] = self.failure_reason
        if self.bottleneck:
            data["bottleneck"] = self.bottleneck
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Observation":
        return cls(
            step=int(data["step"]),  # type: ignore[arg-type]
            config=dict(data["config"]),  # type: ignore[arg-type]
            value=float(data["value"]),  # type: ignore[arg-type]
            suggest_seconds=float(data.get("suggest_seconds", 0.0)),  # type: ignore[arg-type]
            evaluate_seconds=float(data.get("evaluate_seconds", 0.0)),  # type: ignore[arg-type]
            failed=bool(data.get("failed", False)),
            failure_reason=str(data.get("failure_reason", "")),
            bottleneck=str(data.get("bottleneck", "")),
        )


@dataclass
class TuningResult:
    """The outcome of one tuning run (one optimizer on one objective).

    ``best_rerun_values`` holds the repeated measurements of the best
    configuration (the paper re-runs each winner 30 times and reports
    mean with min/max error bars).

    ``metadata`` carries run bookkeeping.  :class:`~repro.core.loop.
    TuningLoop` adds ``optimizer_telemetry`` (GP fit time,
    refit-vs-update counts, candidate-pool sizes — see
    ``BayesianOptimizer.telemetry``) and ``objective_cache``
    (evaluation-memoization hit rate) when the optimizer and objective
    expose them.
    """

    strategy: str
    observations: list[Observation] = field(default_factory=list)
    best_rerun_values: list[float] = field(default_factory=list)
    metadata: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def n_steps(self) -> int:
        return len(self.observations)

    @property
    def mean_suggest_seconds(self) -> float:
        """Average optimizer wall time per step (Figure 7's statistic)."""
        if not self.observations:
            return 0.0
        return sum(o.suggest_seconds for o in self.observations) / len(
            self.observations
        )

    def values(self) -> list[float]:
        return [o.value for o in self.observations]

    def best_observation(self) -> Observation:
        """The first observation achieving the maximum value."""
        if not self.observations:
            raise ValueError("no observations recorded")
        best = max(o.value for o in self.observations)
        for obs in self.observations:
            if obs.value >= best:
                return obs
        raise AssertionError("unreachable")

    @property
    def best_value(self) -> float:
        return self.best_observation().value

    @property
    def best_config(self) -> dict[str, object]:
        return dict(self.best_observation().config)

    @property
    def best_step(self) -> int:
        """1-based step at which the best value was first measured.

        This is Figure 5's "convergence speed" metric.
        """
        return self.best_observation().step + 1

    def best_so_far(self) -> list[float]:
        """Running maximum of observed values (convergence trace)."""
        trace: list[float] = []
        best = -math.inf
        for obs in self.observations:
            best = max(best, obs.value)
            trace.append(best)
        return trace

    def mean_suggest_seconds(self) -> float:
        if not self.observations:
            return 0.0
        return sum(o.suggest_seconds for o in self.observations) / len(
            self.observations
        )

    def rerun_summary(self) -> tuple[float, float, float]:
        """(mean, min, max) of the best-config re-run measurements."""
        values = self.best_rerun_values or [self.best_value]
        return (sum(values) / len(values), min(values), max(values))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        return {
            "strategy": self.strategy,
            "observations": [o.as_dict() for o in self.observations],
            "best_rerun_values": list(self.best_rerun_values),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TuningResult":
        return cls(
            strategy=str(data["strategy"]),
            observations=[
                Observation.from_dict(o) for o in data["observations"]  # type: ignore[union-attr]
            ],
            best_rerun_values=[float(v) for v in data.get("best_rerun_values", [])],  # type: ignore[union-attr]
            metadata=dict(data.get("metadata", {})),  # type: ignore[arg-type]
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.as_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "TuningResult":
        return cls.from_dict(json.loads(Path(path).read_text()))


def best_of(results: Iterable[TuningResult]) -> TuningResult:
    """The run with the highest best value (the paper graphs the better
    of its two optimization passes, §V-A)."""
    results = list(results)
    if not results:
        raise ValueError("no results given")
    return max(results, key=lambda r: r.best_value)


def convergence_spread(results: Sequence[TuningResult]) -> tuple[float, float, float]:
    """(min, avg, max) of best-step across repeated runs (Figure 5)."""
    if not results:
        raise ValueError("no results given")
    steps = [r.best_step for r in results]
    return (min(steps), sum(steps) / len(steps), max(steps))
