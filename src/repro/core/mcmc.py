"""MCMC hyperparameter inference: Spearmint's actual treatment.

Spearmint does not point-estimate GP hyperparameters: it slice-samples
them from their posterior and averages the acquisition function over
the samples (the *integrated acquisition* of Snoek et al. [17]).  The
reproduction's default is the cheaper ML-II point estimate; this module
provides the faithful alternative, selectable with
``BayesianOptimizer(..., hyper_inference="mcmc")`` and compared in
``benchmarks/bench_ablation_inference.py``.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.core.acquisition import AcquisitionOptimizer
from repro.core.gp import GaussianProcess

LogDensity = Callable[[np.ndarray], float]


def default_log_prior(theta: np.ndarray, *, fit_noise: bool = True) -> float:
    """Weakly informative log-normal priors over GP hyperparameters.

    Layout matches :meth:`GaussianProcess._pack_theta`:
    ``[log variance, log lengthscales..., (log noise)]``.  Inputs live
    in the unit cube and targets are standardized, so unit-scale priors
    are appropriate: variance ~ LogNormal(0, 2), lengthscales ~
    LogNormal(log 0.3, 1), noise ~ LogNormal(log 0.01, 2).
    """

    def log_normal(x: float, mu: float, sigma: float) -> float:
        return -0.5 * ((x - mu) / sigma) ** 2 - math.log(sigma)

    total = log_normal(float(theta[0]), 0.0, 2.0)
    lengthscales = theta[1:-1] if fit_noise else theta[1:]
    for value in lengthscales:
        total += log_normal(float(value), math.log(0.3), 1.0)
    if fit_noise:
        total += log_normal(float(theta[-1]), math.log(0.01), 2.0)
    return total


class SliceSampler:
    """Univariate-per-coordinate slice sampling (Neal 2003).

    The stepping-out/shrinking procedure needs no tuning beyond an
    initial bracket width — the property that made it Spearmint's
    sampler of choice for GP hyperparameters.
    """

    def __init__(
        self,
        log_density: LogDensity,
        *,
        width: float = 1.0,
        max_steps_out: int = 8,
        max_shrinks: int = 64,
    ) -> None:
        if width <= 0:
            raise ValueError("width must be > 0")
        self.log_density = log_density
        self.width = width
        self.max_steps_out = max_steps_out
        self.max_shrinks = max_shrinks

    def _sample_coordinate(
        self, x: np.ndarray, dim: int, rng: np.random.Generator
    ) -> np.ndarray:
        log_fx = self.log_density(x)
        log_y = log_fx + math.log(max(rng.random(), 1e-300))

        # Step out a bracket containing the slice.
        lower = x.copy()
        upper = x.copy()
        offset = rng.random() * self.width
        lower[dim] -= offset
        upper[dim] += self.width - offset
        for _ in range(self.max_steps_out):
            if self.log_density(lower) <= log_y:
                break
            lower[dim] -= self.width
        for _ in range(self.max_steps_out):
            if self.log_density(upper) <= log_y:
                break
            upper[dim] += self.width

        # Shrink until a point inside the slice is found.
        for _ in range(self.max_shrinks):
            candidate = x.copy()
            candidate[dim] = lower[dim] + rng.random() * (upper[dim] - lower[dim])
            if self.log_density(candidate) > log_y:
                return candidate
            if candidate[dim] < x[dim]:
                lower[dim] = candidate[dim]
            else:
                upper[dim] = candidate[dim]
        return x  # degenerate slice: stay put

    def sample(
        self,
        x0: np.ndarray,
        n_samples: int,
        *,
        burn_in: int = 10,
        thin: int = 1,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Draw ``n_samples`` states after ``burn_in``, thinned by ``thin``."""
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if thin < 1:
            raise ValueError("thin must be >= 1")
        rng = rng or np.random.default_rng(0)
        x = np.asarray(x0, dtype=float).copy()
        samples = []
        total = burn_in + n_samples * thin
        for i in range(total):
            for dim in range(len(x)):
                x = self._sample_coordinate(x, dim, rng)
            if i >= burn_in and (i - burn_in) % thin == 0:
                samples.append(x.copy())
        return np.asarray(samples[:n_samples])


def sample_gp_hyperparameters(
    gp: GaussianProcess,
    X: np.ndarray,
    z: np.ndarray,
    n_samples: int,
    *,
    burn_in: int = 10,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Posterior samples of the GP hyperparameter vector.

    Density: marginal likelihood of the standardized targets times the
    default priors, over :meth:`GaussianProcess._pack_theta`'s layout.
    """

    def log_posterior(theta: np.ndarray) -> float:
        neg_lml, _ = gp._neg_lml_and_grad(theta, X, z)
        if neg_lml >= 1e24:  # Cholesky failure sentinel
            return -math.inf
        return -neg_lml + default_log_prior(theta, fit_noise=gp.fit_noise)

    start = gp._pack_theta()
    sampler = SliceSampler(log_posterior)
    try:
        return sampler.sample(start, n_samples, burn_in=burn_in, rng=rng)
    finally:
        # Evaluating the density mutates the GP's hyperparameters;
        # leave the model exactly as we found it.
        gp._unpack_theta(start)


class IntegratedAcquisitionOptimizer(AcquisitionOptimizer):
    """Average the acquisition over hyperparameter posterior samples.

    Snoek et al.'s integrated acquisition: for each candidate,
    ``EI(x) = mean_k EI(x; theta_k)`` with ``theta_k`` drawn by
    :func:`sample_gp_hyperparameters`.  Falls back to the plain single-
    theta score when no samples are installed.
    """

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self._theta_samples: np.ndarray | None = None

    def set_theta_samples(self, samples: np.ndarray | None) -> None:
        self._theta_samples = samples

    def score(
        self, gp: GaussianProcess, X: np.ndarray, best: float
    ) -> np.ndarray:
        if self._theta_samples is None or gp._posterior is None:
            return super().score(gp, X, best)
        post = gp._posterior
        X_train, z_train = post.X, post.y
        original = gp._pack_theta()
        try:
            total = np.zeros(np.atleast_2d(X).shape[0])
            for theta in self._theta_samples:
                gp._unpack_theta(np.asarray(theta, dtype=float))
                gp._refresh_posterior(X_train, z_train)
                total += super().score(gp, X, best)
            return total / len(self._theta_samples)
        finally:
            gp._unpack_theta(original)
            gp._refresh_posterior(X_train, z_train)
