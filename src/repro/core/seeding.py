"""Deterministic seed derivation for independent random streams.

Every place the system forks off a random stream — one study cell, one
optimization pass, one in-flight evaluation — must get a seed that is
(a) stable across processes and ``PYTHONHASHSEED`` values, so parallel
and serial executions replay identically, and (b) well-separated from
every other stream, so measurement noise is not correlated across the
grid.  A plain ``base * K + index`` scheme fails (b): every cell of a
study grid would share the same few streams.

:func:`derive_seed` mixes a blake2b digest of the stream's *identity*
(any tuple of stringifiable parts) into the base seed.  The digest is a
pure function of the identity string, so the same (base, identity) pair
yields the same seed in any process, on any platform — the property the
evaluation executors rely on for order-independent replay of concurrent
runs (see :mod:`repro.core.executor`).
"""

from __future__ import annotations

import hashlib

#: Multiplier spreading distinct base seeds apart before the identity
#: digest is mixed in (prime, so consecutive bases cannot collide with
#: digest arithmetic).
_BASE_STRIDE = 10_007


def derive_seed(base_seed: int, *identity: object) -> int:
    """Derive an independent seed for the stream named by ``identity``.

    Parameters
    ----------
    base_seed:
        The user-facing seed of the whole run or study.
    identity:
        Any stringifiable parts naming the stream — e.g.
        ``("imbalance", "small", "bo")`` for a study cell or
        ``("eval", 17)`` for the 17th in-flight evaluation.

    Returns an int suitable for ``np.random.default_rng`` (non-negative
    whenever ``base_seed`` is non-negative).  The same (base_seed, identity) always maps to the same seed; any
    change to either part yields an unrelated stream.
    """
    label = "|".join(str(part) for part in identity)
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return base_seed * _BASE_STRIDE + int.from_bytes(digest, "big")


def label_digest(label: str, *, chars: int = 8) -> str:
    """Short stable hex digest of a label (same blake2b family as
    :func:`derive_seed`).

    Used by the study store to disambiguate sanitized cell labels:
    two labels that differ only in punctuation sanitize to the same
    path-safe stem, and without a digest suffix their persisted state
    would silently overwrite each other.
    """
    if chars < 1:
        raise ValueError("chars must be >= 1")
    digest = hashlib.blake2b(
        label.encode("utf-8"), digest_size=(chars + 1) // 2
    ).hexdigest()
    return digest[:chars]
