"""The tuning loop: drive an optimizer against a black-box objective.

Mirrors the paper's experimental procedure (§V-A): up to ``max_steps``
evaluation runs per pass (60, or 180 for the bo180 runs); per-step
optimizer wall time recorded (Figure 7); the best configuration
re-measured ``repeat_best`` times at the end (30 in the paper) to give
the mean/min/max bars of Figures 4 and 8.

The loop is a *pending-set event loop* over a pluggable evaluation
executor (:mod:`repro.core.executor`): a fill phase tops the in-flight
set up to ``batch_size`` proposals (via the optimizer's batch ask/tell
protocol), then a collect phase waits for any one evaluation to finish
and tells its result back.  With the default serial executor and
``batch_size=1`` this degenerates to the classic one-ask/one-evaluate/
one-tell cycle — identical objective call order, identical results.
With a concurrent executor the suggest and evaluate phases overlap, the
way the paper's Spearmint driver proposed configurations while earlier
cluster runs were still in flight.

Every run reports through :mod:`repro.obs`: the whole pass runs inside
a ``tuning.run`` span; each fill emits a ``tuning.suggest`` span and
each completion a ``tuning.step`` span wrapping ``tuning.evaluate`` /
``tuning.tell``.  Per-step timings, the in-flight gauge
(``tuning.pending``) and executor queue histograms land in a per-run
metrics registry whose snapshot becomes
``TuningResult.metadata["obs_metrics"]`` (and merges into the active
session registry, so studies aggregate across cells).  With no session
active all of this is the no-op fast path.
"""

from __future__ import annotations

import dataclasses
import math
import time
from pathlib import Path
from typing import Callable, Mapping

from repro.core.baselines import Optimizer
from repro.core.checkpoint import (
    CheckpointSlot,
    FileCheckpointSlot,
    TuningCheckpoint,
)
from repro.core.executor import EvaluationExecutor, SerialExecutor
from repro.core.history import Observation, TuningResult
from repro.core.resilience import ResilientExecutor, RetryPolicy
from repro.core.seeding import derive_seed
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry

Objective = Callable[[Mapping[str, object]], float]


def _coerce_telemetry(telemetry: object) -> dict[str, object] | None:
    """Best-effort view of an optimizer's telemetry as a plain dict.

    Accepts mappings, dataclasses, and attribute-bag objects; returns
    None only when no dict view exists at all (so non-conforming
    telemetry is preserved rather than silently dropped).
    """
    if telemetry is None:
        return None
    if isinstance(telemetry, Mapping):
        return dict(telemetry)
    if dataclasses.is_dataclass(telemetry) and not isinstance(telemetry, type):
        return dataclasses.asdict(telemetry)
    try:
        return dict(vars(telemetry))
    except TypeError:
        return None


def _failure_fields(run: object) -> dict[str, object]:
    """Diagnosable failure detail from one measurement record.

    ``run`` is the record the evaluation returned alongside its scalar
    (a :class:`~repro.storm.metrics.MeasuredRun` for Storm objectives;
    None for plain callables).  Extracts the failure reason plus the
    bottleneck detail the engine reported — the argmax of per-operator
    stage times when available, else the binding throughput cap.
    """
    if run is None:
        return {}
    fields: dict[str, object] = {}
    if getattr(run, "failed", False):
        fields["failed"] = True
        fields["failure_reason"] = str(getattr(run, "failure_reason", ""))
    details = getattr(run, "details", None)
    if isinstance(details, Mapping):
        stage_times = details.get("stage_times_ms")
        if isinstance(stage_times, Mapping) and stage_times:
            fields["bottleneck"] = max(stage_times, key=stage_times.get)  # type: ignore[arg-type]
        elif details.get("limiting_cap"):
            fields["bottleneck"] = str(details["limiting_cap"])
    return fields


class TuningLoop:
    """Run one optimizer against one objective for a step budget.

    ``patience`` optionally stops the loop once the best observed value
    has not improved by more than ``min_improvement`` (relative) for
    that many consecutive steps — a convergence cut-off for production
    use.  The paper's experiments always spend the full budget
    (``patience=None``), which Figure 5 then analyses post hoc.

    ``executor`` selects where evaluations run (default: inline on the
    calling thread).  ``batch_size`` bounds the in-flight proposal set;
    it defaults to the executor's worker count, so a threaded executor
    with 4 workers keeps 4 evaluations in flight.  At ``batch_size=1``
    proposals come from plain ``ask()`` — bit-identical to the classic
    serial loop; larger batches use ``ask_batch`` and the optimizer's
    pending-point machinery.  ``seed`` enables per-evaluation noise
    seeds (derived per submission index via
    :func:`~repro.core.seeding.derive_seed`), which make a concurrent
    run's observations an order-independent replay of the serial run.
    """

    def __init__(
        self,
        objective: Objective,
        optimizer: Optimizer,
        *,
        max_steps: int = 60,
        repeat_best: int = 0,
        strategy_name: str | None = None,
        patience: int | None = None,
        min_improvement: float = 0.01,
        executor: EvaluationExecutor | None = None,
        batch_size: int | None = None,
        seed: int | None = None,
        resilience: RetryPolicy | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint: CheckpointSlot | None = None,
        diagnostics: bool | None = None,
    ) -> None:
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if repeat_best < 0:
            raise ValueError("repeat_best must be >= 0")
        if patience is not None and patience < 1:
            raise ValueError("patience must be >= 1")
        if min_improvement < 0:
            raise ValueError("min_improvement must be >= 0")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.objective = objective
        self.optimizer = optimizer
        self.max_steps = max_steps
        self.repeat_best = repeat_best
        self.strategy_name = strategy_name or type(optimizer).__name__
        self.patience = patience
        self.min_improvement = min_improvement
        self.executor = executor
        self.batch_size = batch_size
        self.seed = seed
        #: When set, evaluations run under retry/timeout/circuit-breaker
        #: policy (:mod:`repro.core.resilience`): the loop wraps its
        #: executor in a :class:`ResilientExecutor`.
        self.resilience = resilience
        if checkpoint is not None and checkpoint_path is not None:
            raise ValueError(
                "pass either checkpoint_path or a checkpoint slot, not both"
            )
        #: When set, the loop checkpoints history + optimizer state to
        #: this slot after every tell, and resumes from it when it holds
        #: one (docs/ROBUSTNESS.md).  ``checkpoint_path=`` is the
        #: standalone-JSONL-file shim (:class:`FileCheckpointSlot`);
        #: ``checkpoint=`` accepts any slot, e.g. a study-store address
        #: (:class:`repro.store.base.StoreCheckpointSlot`).
        self.checkpoint: CheckpointSlot | None = checkpoint
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        if self.checkpoint is None and self.checkpoint_path is not None:
            self.checkpoint = FileCheckpointSlot(self.checkpoint_path)
        #: Online model-quality diagnostics (docs/OBSERVABILITY.md
        #: §diagnostics).  ``None`` (default) follows the obs session:
        #: active when one is, off when not — keeping the no-session
        #: path inside the <2% overhead budget.  ``True``/``False``
        #: force it either way.
        self.diagnostics = diagnostics

    def _eval_seed(self, stream: str, index: int) -> int | None:
        if self.seed is None:
            return None
        return derive_seed(self.seed, stream, index)

    # ------------------------------------------------------------------
    # Crash-safe checkpointing (docs/ROBUSTNESS.md)
    # ------------------------------------------------------------------
    def _resume(self, result: TuningResult) -> int:
        """Restore state from the checkpoint slot; completed step count.

        Exact resume when the checkpoint carries an optimizer snapshot
        and the optimizer type can rebuild from it (same RNG stream,
        same surrogate state — the next proposal is the one the
        uninterrupted run would have made); otherwise every completed
        observation is re-told into the fresh optimizer (replay
        resume).  Per-evaluation seeds key off the *issued index*, so
        post-resume evaluations draw the same noise and fault streams
        either way.
        """
        if self.checkpoint is None:
            return 0
        checkpoint = self.checkpoint.load()
        if checkpoint is None or not checkpoint.observations:
            return 0
        restored = False
        if checkpoint.optimizer_state is not None:
            from_state = getattr(type(self.optimizer), "from_state_dict", None)
            if callable(from_state):
                self.optimizer = from_state(checkpoint.optimizer_state)
                restored = True
        if not restored:
            for obs in checkpoint.observations:
                if obs.failed:
                    self.optimizer.tell_failure(
                        obs.config, reason=obs.failure_reason
                    )
                else:
                    self.optimizer.tell(obs.config, obs.value)
        result.observations.extend(checkpoint.observations)
        return len(checkpoint.observations)

    def _write_checkpoint(self, result: TuningResult) -> None:
        state_dict = getattr(self.optimizer, "state_dict", None)
        self.checkpoint.save(
            TuningCheckpoint(
                strategy=self.strategy_name,
                seed=self.seed,
                max_steps=self.max_steps,
                observations=list(result.observations),
                optimizer_state=(
                    dict(state_dict()) if callable(state_dict) else None
                ),
            ),
        )

    def run(self) -> TuningResult:
        ctx = obs_runtime.current()
        tracer = ctx.tracer
        run_metrics = MetricsRegistry()
        result = TuningResult(strategy=self.strategy_name)
        tracker = None
        if self.diagnostics if self.diagnostics is not None else ctx.enabled:
            # Imported here so the no-session path never pays for it.
            from repro.core.diagnostics import DiagnosticsTracker
            from repro.obs.diagnostics import emit_step

            tracker = DiagnosticsTracker(
                self.optimizer, objective=self.objective
            )
        executor = self.executor
        if executor is None:
            # The loop owns this one; SerialExecutor.close() is a no-op
            # so no try/finally plumbing is needed.
            executor = SerialExecutor(self.objective)
        if self.resilience is not None and not isinstance(
            executor, ResilientExecutor
        ):
            executor = ResilientExecutor(
                executor, self.resilience, seed=self.seed
            )
        batch_size = self.batch_size or max(1, executor.max_workers)
        with tracer.span(
            "tuning.run",
            strategy=self.strategy_name,
            max_steps=self.max_steps,
            executor=executor.kind,
            batch_size=batch_size,
        ) as run_span:
            best_seen = float("-inf")
            stale_steps = 0
            issued = 0
            completed = 0
            stop_issuing = False
            resumed = self._resume(result)
            if resumed:
                tracer.event(
                    "tuning.resume",
                    completed=resumed,
                    checkpoint=self.checkpoint.describe(),
                )
                run_metrics.counter("tuning.resumed_steps").inc(resumed)
                issued = completed = resumed
                # Rebuild the patience state the uninterrupted run would
                # have reached, so resuming never changes when (or if)
                # early stopping fires.
                for obs in result.observations:
                    improved = best_seen == float("-inf") or obs.value > (
                        best_seen + abs(best_seen) * self.min_improvement
                    )
                    best_seen = max(best_seen, obs.value)
                    stale_steps = 0 if improved else stale_steps + 1
            #: eval_id -> (amortized suggest seconds) for in-flight work.
            pending: dict[int, float] = {}
            while completed < self.max_steps:
                can_issue = (
                    not stop_issuing
                    and issued < self.max_steps
                    and not self.optimizer.done
                )
                if (
                    can_issue
                    and self.patience is not None
                    and stale_steps >= self.patience
                ):
                    tracer.event(
                        "tuning.early_stop", step=completed, patience=self.patience
                    )
                    stop_issuing = True
                    can_issue = False
                if can_issue:
                    want = min(self.max_steps - issued, batch_size - len(pending))
                    if want > 0:
                        t0 = time.perf_counter()
                        with tracer.span("tuning.suggest", want=want):
                            if batch_size == 1:
                                # Exact legacy path: plain ask() keeps
                                # single-point optimizers on the same
                                # code trajectory as the serial loop.
                                batch = [self.optimizer.ask()]
                            else:
                                batch = self.optimizer.ask_batch(want)
                        suggest_seconds = (time.perf_counter() - t0) / max(
                            1, len(batch)
                        )
                        for config in batch:
                            executor.submit(
                                issued, config, seed=self._eval_seed("eval", issued)
                            )
                            pending[issued] = suggest_seconds
                            issued += 1
                        run_metrics.counter("executor.submitted").inc(len(batch))
                        run_metrics.gauge("tuning.pending").set(len(pending))
                if not pending:
                    break
                with tracer.span("tuning.step", step=completed):
                    with tracer.span("tuning.evaluate", pending=len(pending)):
                        outcome = executor.wait_one()
                    suggest_seconds = pending.pop(outcome.eval_id)
                    failure = _failure_fields(outcome.run)
                    value = outcome.value
                    if not math.isfinite(value):
                        # Never feed NaN/inf to a surrogate: it poisons
                        # the GP through the normalization statistics.
                        failure = {
                            "failed": True,
                            "failure_reason": (
                                f"non_finite: objective returned {value!r}"
                            ),
                            "bottleneck": failure.get("bottleneck", ""),
                        }
                        value = 0.0
                    # Score *before* the tell: the one-step-ahead
                    # residual needs the surrogate's pre-update view of
                    # this measurement.
                    diag = None
                    if tracker is not None:
                        with tracer.span("tuning.diagnose", step=completed):
                            diag = tracker.observe(
                                step=completed,
                                config=outcome.config,
                                value=value,
                                failed=bool(failure.get("failed", False)),
                            )
                    t2 = time.perf_counter()
                    with tracer.span("tuning.tell"):
                        if failure.get("failed"):
                            self.optimizer.tell_failure(
                                outcome.config,
                                reason=str(failure.get("failure_reason", "")),
                            )
                        else:
                            self.optimizer.tell(outcome.config, value)
                    tell_seconds = time.perf_counter() - t2
                    if diag is not None:
                        emit_step(tracer, run_metrics, diag)
                run_metrics.gauge("tuning.pending").set(len(pending))
                if failure.get("failed"):
                    run_metrics.counter("tuning.failed_evaluations").inc()
                    tracer.event(
                        "tuning.evaluation_failure",
                        step=completed,
                        reason=failure.get("failure_reason", ""),
                        bottleneck=failure.get("bottleneck", ""),
                    )
                run_metrics.counter("tuning.steps").inc()
                run_metrics.counter("executor.completed").inc()
                run_metrics.histogram("tuning.suggest_seconds").record(
                    suggest_seconds
                )
                run_metrics.histogram("tuning.evaluate_seconds").record(
                    outcome.seconds
                )
                run_metrics.histogram("tuning.tell_seconds").record(tell_seconds)
                run_metrics.histogram("executor.run_seconds").record(
                    outcome.seconds
                )
                run_metrics.histogram("executor.turnaround_seconds").record(
                    outcome.turnaround_seconds
                )
                result.observations.append(
                    Observation(
                        step=completed,
                        config=outcome.config,
                        value=value,
                        suggest_seconds=suggest_seconds,
                        evaluate_seconds=outcome.seconds,
                        failed=bool(failure.get("failed", False)),
                        failure_reason=str(failure.get("failure_reason", "")),
                        bottleneck=str(failure.get("bottleneck", "")),
                    )
                )
                completed += 1
                if self.checkpoint is not None:
                    self._write_checkpoint(result)
                # Staleness counts off the thresholded comparison, while
                # best_seen always tracks the running max: a run of
                # sub-threshold gains must neither reset patience nor leave
                # the baseline stale below the actual best.
                improved = best_seen == float("-inf") or value > (
                    best_seen + abs(best_seen) * self.min_improvement
                )
                best_seen = max(best_seen, value)
                if improved:
                    stale_steps = 0
                else:
                    stale_steps += 1
            if not result.observations:
                raise RuntimeError("optimizer produced no observations")
            if self.repeat_best > 0:
                best_config = result.best_config
                for i in range(self.repeat_best):
                    executor.submit(
                        self.max_steps + i,
                        best_config,
                        seed=self._eval_seed("rerun", i),
                    )
                reruns: list[float] = []
                for _ in range(self.repeat_best):
                    with tracer.span("tuning.evaluate", rerun=True):
                        reruns.append(executor.wait_one().value)
                result.best_rerun_values = reruns
            run_span.set_attribute("steps_run", result.n_steps)
            run_span.set_attribute("best_value", result.best_value)
        result.metadata.update(
            {
                "max_steps": self.max_steps,
                "steps_run": result.n_steps,
                "repeat_best": self.repeat_best,
                "stopped_early": result.n_steps < self.max_steps,
                "executor": executor.kind,
                "batch_size": batch_size,
            }
        )
        if resumed:
            result.metadata["resumed_steps"] = resumed
        resilience_stats = getattr(executor, "stats", None)
        if isinstance(resilience_stats, dict):
            result.metadata["resilience"] = dict(resilience_stats)
            for name, count in resilience_stats.items():
                if count:
                    run_metrics.counter(f"resilience.{name}").inc(int(count))
        # Thread per-run telemetry from the optimizer (GP fit timing,
        # refit-vs-update counts, candidate-pool sizes) and the
        # objective (evaluation-cache hit rate) into the result so
        # Figure 7-style benches can report where time goes.  Non-dict
        # telemetry (e.g. a dataclass) is coerced, not dropped.
        telemetry = _coerce_telemetry(getattr(self.optimizer, "telemetry", None))
        if telemetry is not None:
            result.metadata["optimizer_telemetry"] = telemetry
        if tracker is not None:
            result.metadata["diagnostics"] = tracker.summary()
        cache_info = getattr(self.objective, "cache_info", None)
        if callable(cache_info):
            cache = dict(cache_info())
            result.metadata["objective_cache"] = cache
            run_metrics.counter("objective.cache_hits").inc(
                int(cache.get("hits", 0))
            )
            run_metrics.counter("objective.cache_misses").inc(
                int(cache.get("misses", 0))
            )
        # The per-run registry snapshot replaces ad-hoc dict plumbing as
        # the structured report; merged into the session registry so
        # studies aggregate across cells.
        result.metadata["obs_metrics"] = run_metrics.snapshot()
        ctx.metrics.merge_snapshot(result.metadata["obs_metrics"])  # type: ignore[arg-type]
        return result


def run_passes(
    make_optimizer: Callable[[int], Optimizer],
    objective: Objective,
    *,
    passes: int = 2,
    max_steps: int = 60,
    repeat_best: int = 30,
    strategy_name: str | None = None,
    base_seed: int = 0,
) -> list[TuningResult]:
    """Run several independent optimization passes (the paper runs two
    and graphs the better one; Figure 5 reports spread over both)."""
    if passes < 1:
        raise ValueError("passes must be >= 1")
    results = []
    for i in range(passes):
        optimizer = make_optimizer(base_seed + i)
        loop = TuningLoop(
            objective,
            optimizer,
            max_steps=max_steps,
            repeat_best=repeat_best,
            strategy_name=strategy_name,
        )
        results.append(loop.run())
    return results
