"""The tuning loop: drive an optimizer against a black-box objective.

Mirrors the paper's experimental procedure (§V-A): up to ``max_steps``
evaluation runs per pass (60, or 180 for the bo180 runs); per-step
optimizer wall time recorded (Figure 7); the best configuration
re-measured ``repeat_best`` times at the end (30 in the paper) to give
the mean/min/max bars of Figures 4 and 8.

Every run reports through :mod:`repro.obs`: the whole pass runs inside
a ``tuning.run`` span with per-step ``tuning.suggest`` /
``tuning.evaluate`` / ``tuning.tell`` child spans, and per-step timings
are recorded into a per-run metrics registry whose snapshot lands in
``TuningResult.metadata["obs_metrics"]`` (and merges into the active
session registry, so studies aggregate across cells).  With no session
active all of this is the no-op fast path.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Mapping

from repro.core.baselines import Optimizer
from repro.core.history import Observation, TuningResult
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry

Objective = Callable[[Mapping[str, object]], float]


def _coerce_telemetry(telemetry: object) -> dict[str, object] | None:
    """Best-effort view of an optimizer's telemetry as a plain dict.

    Accepts mappings, dataclasses, and attribute-bag objects; returns
    None only when no dict view exists at all (so non-conforming
    telemetry is preserved rather than silently dropped).
    """
    if telemetry is None:
        return None
    if isinstance(telemetry, Mapping):
        return dict(telemetry)
    if dataclasses.is_dataclass(telemetry) and not isinstance(telemetry, type):
        return dataclasses.asdict(telemetry)
    try:
        return dict(vars(telemetry))
    except TypeError:
        return None


def _failure_fields(objective: object) -> dict[str, object]:
    """Diagnosable failure detail from the objective's last measurement.

    Reads ``objective.last_measured`` (a :class:`~repro.storm.metrics.
    MeasuredRun` when the objective is a :class:`~repro.storm.objective.
    StormObjective`) and extracts the failure reason plus the bottleneck
    detail the engine reported — the argmax of per-operator stage times
    when available, else the binding throughput cap.
    """
    run = getattr(objective, "last_measured", None)
    if run is None:
        return {}
    fields: dict[str, object] = {}
    if getattr(run, "failed", False):
        fields["failed"] = True
        fields["failure_reason"] = str(getattr(run, "failure_reason", ""))
    details = getattr(run, "details", None)
    if isinstance(details, Mapping):
        stage_times = details.get("stage_times_ms")
        if isinstance(stage_times, Mapping) and stage_times:
            fields["bottleneck"] = max(stage_times, key=stage_times.get)  # type: ignore[arg-type]
        elif details.get("limiting_cap"):
            fields["bottleneck"] = str(details["limiting_cap"])
    return fields


class TuningLoop:
    """Run one optimizer against one objective for a step budget.

    ``patience`` optionally stops the loop once the best observed value
    has not improved by more than ``min_improvement`` (relative) for
    that many consecutive steps — a convergence cut-off for production
    use.  The paper's experiments always spend the full budget
    (``patience=None``), which Figure 5 then analyses post hoc.
    """

    def __init__(
        self,
        objective: Objective,
        optimizer: Optimizer,
        *,
        max_steps: int = 60,
        repeat_best: int = 0,
        strategy_name: str | None = None,
        patience: int | None = None,
        min_improvement: float = 0.01,
    ) -> None:
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if repeat_best < 0:
            raise ValueError("repeat_best must be >= 0")
        if patience is not None and patience < 1:
            raise ValueError("patience must be >= 1")
        if min_improvement < 0:
            raise ValueError("min_improvement must be >= 0")
        self.objective = objective
        self.optimizer = optimizer
        self.max_steps = max_steps
        self.repeat_best = repeat_best
        self.strategy_name = strategy_name or type(optimizer).__name__
        self.patience = patience
        self.min_improvement = min_improvement

    def run(self) -> TuningResult:
        ctx = obs_runtime.current()
        tracer = ctx.tracer
        run_metrics = MetricsRegistry()
        result = TuningResult(strategy=self.strategy_name)
        with tracer.span(
            "tuning.run", strategy=self.strategy_name, max_steps=self.max_steps
        ) as run_span:
            best_seen = float("-inf")
            stale_steps = 0
            for step in range(self.max_steps):
                if self.optimizer.done:
                    break
                if self.patience is not None and stale_steps >= self.patience:
                    tracer.event(
                        "tuning.early_stop", step=step, patience=self.patience
                    )
                    break
                with tracer.span("tuning.step", step=step):
                    t0 = time.perf_counter()
                    with tracer.span("tuning.suggest"):
                        config = self.optimizer.ask()
                    suggest_seconds = time.perf_counter() - t0

                    t1 = time.perf_counter()
                    with tracer.span("tuning.evaluate"):
                        value = float(self.objective(config))
                    evaluate_seconds = time.perf_counter() - t1

                    t2 = time.perf_counter()
                    with tracer.span("tuning.tell"):
                        self.optimizer.tell(config, value)
                    tell_seconds = time.perf_counter() - t2
                failure = _failure_fields(self.objective)
                if failure.get("failed"):
                    run_metrics.counter("tuning.failed_evaluations").inc()
                    tracer.event(
                        "tuning.evaluation_failure",
                        step=step,
                        reason=failure.get("failure_reason", ""),
                        bottleneck=failure.get("bottleneck", ""),
                    )
                run_metrics.counter("tuning.steps").inc()
                run_metrics.histogram("tuning.suggest_seconds").record(
                    suggest_seconds
                )
                run_metrics.histogram("tuning.evaluate_seconds").record(
                    evaluate_seconds
                )
                run_metrics.histogram("tuning.tell_seconds").record(tell_seconds)
                result.observations.append(
                    Observation(
                        step=step,
                        config=config,
                        value=value,
                        suggest_seconds=suggest_seconds,
                        evaluate_seconds=evaluate_seconds,
                        failed=bool(failure.get("failed", False)),
                        failure_reason=str(failure.get("failure_reason", "")),
                        bottleneck=str(failure.get("bottleneck", "")),
                    )
                )
                # Staleness counts off the thresholded comparison, while
                # best_seen always tracks the running max: a run of
                # sub-threshold gains must neither reset patience nor leave
                # the baseline stale below the actual best.
                improved = best_seen == float("-inf") or value > (
                    best_seen + abs(best_seen) * self.min_improvement
                )
                best_seen = max(best_seen, value)
                if improved:
                    stale_steps = 0
                else:
                    stale_steps += 1
            if not result.observations:
                raise RuntimeError("optimizer produced no observations")
            if self.repeat_best > 0:
                best_config = result.best_config
                reruns: list[float] = []
                for _ in range(self.repeat_best):
                    with tracer.span("tuning.evaluate", rerun=True):
                        reruns.append(float(self.objective(best_config)))
                result.best_rerun_values = reruns
            run_span.set_attribute("steps_run", result.n_steps)
            run_span.set_attribute("best_value", result.best_value)
        result.metadata.update(
            {
                "max_steps": self.max_steps,
                "steps_run": result.n_steps,
                "repeat_best": self.repeat_best,
                "stopped_early": result.n_steps < self.max_steps,
            }
        )
        # Thread per-run telemetry from the optimizer (GP fit timing,
        # refit-vs-update counts, candidate-pool sizes) and the
        # objective (evaluation-cache hit rate) into the result so
        # Figure 7-style benches can report where time goes.  Non-dict
        # telemetry (e.g. a dataclass) is coerced, not dropped.
        telemetry = _coerce_telemetry(getattr(self.optimizer, "telemetry", None))
        if telemetry is not None:
            result.metadata["optimizer_telemetry"] = telemetry
        cache_info = getattr(self.objective, "cache_info", None)
        if callable(cache_info):
            cache = dict(cache_info())
            result.metadata["objective_cache"] = cache
            run_metrics.counter("objective.cache_hits").inc(
                int(cache.get("hits", 0))
            )
            run_metrics.counter("objective.cache_misses").inc(
                int(cache.get("misses", 0))
            )
        # The per-run registry snapshot replaces ad-hoc dict plumbing as
        # the structured report; merged into the session registry so
        # studies aggregate across cells.
        result.metadata["obs_metrics"] = run_metrics.snapshot()
        ctx.metrics.merge_snapshot(result.metadata["obs_metrics"])  # type: ignore[arg-type]
        return result


def run_passes(
    make_optimizer: Callable[[int], Optimizer],
    objective: Objective,
    *,
    passes: int = 2,
    max_steps: int = 60,
    repeat_best: int = 30,
    strategy_name: str | None = None,
    base_seed: int = 0,
) -> list[TuningResult]:
    """Run several independent optimization passes (the paper runs two
    and graphs the better one; Figure 5 reports spread over both)."""
    if passes < 1:
        raise ValueError("passes must be >= 1")
    results = []
    for i in range(passes):
        optimizer = make_optimizer(base_seed + i)
        loop = TuningLoop(
            objective,
            optimizer,
            max_steps=max_steps,
            repeat_best=repeat_best,
            strategy_name=strategy_name,
        )
        results.append(loop.run())
    return results
