"""The tuning loop: drive an optimizer against a black-box objective.

Mirrors the paper's experimental procedure (§V-A): up to ``max_steps``
evaluation runs per pass (60, or 180 for the bo180 runs); per-step
optimizer wall time recorded (Figure 7); the best configuration
re-measured ``repeat_best`` times at the end (30 in the paper) to give
the mean/min/max bars of Figures 4 and 8.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping

from repro.core.baselines import Optimizer
from repro.core.history import Observation, TuningResult

Objective = Callable[[Mapping[str, object]], float]


class TuningLoop:
    """Run one optimizer against one objective for a step budget.

    ``patience`` optionally stops the loop once the best observed value
    has not improved by more than ``min_improvement`` (relative) for
    that many consecutive steps — a convergence cut-off for production
    use.  The paper's experiments always spend the full budget
    (``patience=None``), which Figure 5 then analyses post hoc.
    """

    def __init__(
        self,
        objective: Objective,
        optimizer: Optimizer,
        *,
        max_steps: int = 60,
        repeat_best: int = 0,
        strategy_name: str | None = None,
        patience: int | None = None,
        min_improvement: float = 0.01,
    ) -> None:
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if repeat_best < 0:
            raise ValueError("repeat_best must be >= 0")
        if patience is not None and patience < 1:
            raise ValueError("patience must be >= 1")
        if min_improvement < 0:
            raise ValueError("min_improvement must be >= 0")
        self.objective = objective
        self.optimizer = optimizer
        self.max_steps = max_steps
        self.repeat_best = repeat_best
        self.strategy_name = strategy_name or type(optimizer).__name__
        self.patience = patience
        self.min_improvement = min_improvement

    def run(self) -> TuningResult:
        result = TuningResult(strategy=self.strategy_name)
        best_seen = float("-inf")
        stale_steps = 0
        for step in range(self.max_steps):
            if self.optimizer.done:
                break
            if self.patience is not None and stale_steps >= self.patience:
                break
            t0 = time.perf_counter()
            config = self.optimizer.ask()
            suggest_seconds = time.perf_counter() - t0

            t1 = time.perf_counter()
            value = float(self.objective(config))
            evaluate_seconds = time.perf_counter() - t1

            self.optimizer.tell(config, value)
            result.observations.append(
                Observation(
                    step=step,
                    config=config,
                    value=value,
                    suggest_seconds=suggest_seconds,
                    evaluate_seconds=evaluate_seconds,
                )
            )
            # Staleness counts off the thresholded comparison, while
            # best_seen always tracks the running max: a run of
            # sub-threshold gains must neither reset patience nor leave
            # the baseline stale below the actual best.
            improved = best_seen == float("-inf") or value > (
                best_seen + abs(best_seen) * self.min_improvement
            )
            best_seen = max(best_seen, value)
            if improved:
                stale_steps = 0
            else:
                stale_steps += 1
        if not result.observations:
            raise RuntimeError("optimizer produced no observations")
        if self.repeat_best > 0:
            best_config = result.best_config
            result.best_rerun_values = [
                float(self.objective(best_config)) for _ in range(self.repeat_best)
            ]
        result.metadata.update(
            {
                "max_steps": self.max_steps,
                "steps_run": result.n_steps,
                "repeat_best": self.repeat_best,
                "stopped_early": result.n_steps < self.max_steps,
            }
        )
        # Thread per-run telemetry from the optimizer (GP fit timing,
        # refit-vs-update counts, candidate-pool sizes) and the
        # objective (evaluation-cache hit rate) into the result so
        # Figure 7-style benches can report where time goes.
        telemetry = getattr(self.optimizer, "telemetry", None)
        if isinstance(telemetry, Mapping):
            result.metadata["optimizer_telemetry"] = dict(telemetry)
        cache_info = getattr(self.objective, "cache_info", None)
        if callable(cache_info):
            result.metadata["objective_cache"] = dict(cache_info())
        return result


def run_passes(
    make_optimizer: Callable[[int], Optimizer],
    objective: Objective,
    *,
    passes: int = 2,
    max_steps: int = 60,
    repeat_best: int = 30,
    strategy_name: str | None = None,
    base_seed: int = 0,
) -> list[TuningResult]:
    """Run several independent optimization passes (the paper runs two
    and graphs the better one; Figure 5 reports spread over both)."""
    if passes < 1:
        raise ValueError("passes must be >= 1")
    results = []
    for i in range(passes):
        optimizer = make_optimizer(base_seed + i)
        loop = TuningLoop(
            objective,
            optimizer,
            max_steps=max_steps,
            repeat_best=repeat_best,
            strategy_name=strategy_name,
        )
        results.append(loop.run())
    return results
