"""The paper's contribution: Bayesian Optimization for configuration tuning.

A from-scratch Spearmint-style optimizer (paper §III-C):

* :mod:`repro.core.parameters` — typed parameter spaces mapped to the
  unit hypercube,
* :mod:`repro.core.kernels` / :mod:`repro.core.gp` — Gaussian-process
  surrogate with Matérn-5/2 or RBF kernels and ML-II hyperparameter
  fitting,
* :mod:`repro.core.acquisition` — Expected Improvement (the paper's
  choice), Probability of Improvement, and GP-UCB,
* :mod:`repro.core.optimizer` — the ask/tell loop with Latin-hypercube
  initialization and JSON state serialization (Spearmint's
  pause/resume feature, §III-C),
* :mod:`repro.core.baselines` — the parallel linear ascent baseline
  with the paper's three-consecutive-zeros stop rule, plus random
  search for ablations,
* :mod:`repro.core.informed` — "informed" variants built on base
  parallelism weights (§V-A),
* :mod:`repro.core.loop` — the experiment driver measuring per-step
  wall time and re-running best configurations.
"""

from repro.core.acquisition import (
    AcquisitionOptimizer,
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.core.baselines import (
    GridAscentOptimizer,
    Optimizer,
    ParallelLinearAscent,
    RandomSearchOptimizer,
)
from repro.core.gp import GaussianProcess
from repro.core.history import Observation, TuningResult
from repro.core.informed import (
    InformedParallelismCodec,
    base_parallelism_weights,
)
from repro.core.kernels import RBF, Kernel, Matern52
from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.core.parameters import (
    CategoricalParameter,
    FloatParameter,
    IntParameter,
    Parameter,
    ParameterSpace,
)

__all__ = [
    "AcquisitionOptimizer",
    "BayesianOptimizer",
    "CategoricalParameter",
    "FloatParameter",
    "GaussianProcess",
    "GridAscentOptimizer",
    "InformedParallelismCodec",
    "IntParameter",
    "Kernel",
    "Matern52",
    "Observation",
    "Optimizer",
    "ParallelLinearAscent",
    "Parameter",
    "ParameterSpace",
    "RBF",
    "RandomSearchOptimizer",
    "TuningLoop",
    "TuningResult",
    "base_parallelism_weights",
    "expected_improvement",
    "probability_of_improvement",
    "upper_confidence_bound",
]
