"""The paper's contribution: Bayesian Optimization for configuration tuning.

A from-scratch Spearmint-style optimizer (paper §III-C):

* :mod:`repro.core.parameters` — typed parameter spaces mapped to the
  unit hypercube,
* :mod:`repro.core.kernels` / :mod:`repro.core.gp` — Gaussian-process
  surrogate with Matérn-5/2 or RBF kernels and ML-II hyperparameter
  fitting,
* :mod:`repro.core.acquisition` — Expected Improvement (the paper's
  choice), Probability of Improvement, and GP-UCB,
* :mod:`repro.core.optimizer` — the ask/tell loop with Latin-hypercube
  initialization and JSON state serialization (Spearmint's
  pause/resume feature, §III-C),
* :mod:`repro.core.baselines` — the parallel linear ascent baseline
  with the paper's three-consecutive-zeros stop rule, plus random
  search for ablations,
* :mod:`repro.core.informed` — "informed" variants built on base
  parallelism weights (§V-A),
* :mod:`repro.core.loop` — the experiment driver measuring per-step
  wall time and re-running best configurations,
* :mod:`repro.core.executor` — pluggable evaluation executors (serial,
  thread pool, process pool) that let the loop keep several proposals
  in flight,
* :mod:`repro.core.seeding` — deterministic per-stream seed derivation
  shared by the executors and the experiment runner.
"""

from repro.core.acquisition import (
    AcquisitionOptimizer,
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.core.baselines import (
    GridAscentOptimizer,
    Optimizer,
    ParallelLinearAscent,
    RandomSearchOptimizer,
)
from repro.core.continuous import (
    ContinuousTuningLoop,
    ContinuousTuningResult,
    EpochRecord,
)
from repro.core.drift import PageHinkleyDetector
from repro.core.executor import (
    EvaluationExecutor,
    EvaluationOutcome,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    make_executor,
)
from repro.core.gp import GaussianProcess
from repro.core.history import Observation, TuningResult
from repro.core.informed import (
    InformedParallelismCodec,
    base_parallelism_weights,
)
from repro.core.kernels import RBF, Kernel, Matern52
from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.core.parameters import (
    CategoricalParameter,
    FloatParameter,
    IntParameter,
    Parameter,
    ParameterSpace,
)
from repro.core.seeding import derive_seed

__all__ = [
    "AcquisitionOptimizer",
    "BayesianOptimizer",
    "CategoricalParameter",
    "ContinuousTuningLoop",
    "ContinuousTuningResult",
    "EpochRecord",
    "EvaluationExecutor",
    "EvaluationOutcome",
    "FloatParameter",
    "GaussianProcess",
    "GridAscentOptimizer",
    "InformedParallelismCodec",
    "IntParameter",
    "Kernel",
    "Matern52",
    "Observation",
    "Optimizer",
    "PageHinkleyDetector",
    "ParallelLinearAscent",
    "Parameter",
    "ParameterSpace",
    "ProcessPoolExecutor",
    "RBF",
    "RandomSearchOptimizer",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "TuningLoop",
    "TuningResult",
    "base_parallelism_weights",
    "derive_seed",
    "expected_improvement",
    "make_executor",
    "probability_of_improvement",
    "upper_confidence_bound",
]
