"""Informed optimization: base parallelism weights (paper §V-A).

For the synthetic topologies the authors also ran *informed* optimizers
that exploit topological information: every spout gets a base weight of
1 and every bolt's base weight is the sum of its parents' weights — a
structural proxy for the tuple volume each operator must absorb.  The
optimizer then only chooses a single multiplier for these weights
(a float, which is why the informed Bayesian optimizer pays slightly
more per step than the integer-space one, §V-C).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # import only for annotations: repro.storm imports
    # repro.core.informed at runtime, so the reverse import here must
    # stay type-checking-only to avoid a cycle.
    from repro.storm.topology import Topology


def base_parallelism_weights(topology: Topology) -> dict[str, float]:
    """Recursive base weights: spouts 1.0, bolts sum their parents.

    Computed in topological order so each parent is resolved before its
    children (the topology is a DAG by construction).
    """
    weights: dict[str, float] = {}
    for name in topology.topological_order():
        parents = topology.parents(name)
        if not parents:
            weights[name] = 1.0
        else:
            weights[name] = sum(weights[p] for p in parents)
    return weights


class InformedParallelismCodec:
    """Translate a single multiplier into per-operator parallelism hints.

    ``hints[o] = max(1, round(weight[o] * multiplier))``.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.weights = base_parallelism_weights(topology)
        self.total_weight = sum(self.weights.values())

    def hints_for(self, multiplier: float) -> dict[str, int]:
        if multiplier <= 0:
            raise ValueError("multiplier must be > 0")
        return {
            name: max(1, round(weight * multiplier))
            for name, weight in self.weights.items()
        }

    def multiplier_step(self) -> float:
        """Ascent step for the informed parallel linear ascent.

        Chosen so one step adds roughly one task per operator — the same
        granularity as the uninformed ascent's hint increment — keeping
        ipla and pla trajectories comparable.
        """
        return len(self.weights) / self.total_weight

    def multiplier_for_total_tasks(self, total_tasks: int) -> float:
        """Multiplier at which the weighted hints sum to ``total_tasks``."""
        if total_tasks < len(self.weights):
            raise ValueError("total_tasks below one task per operator")
        return total_tasks / self.total_weight


def informed_hint_table(
    topology: Topology, multipliers: Mapping[str, float] | list[float]
) -> dict[float, dict[str, int]]:
    """Hints for several multipliers at once (inspection helper)."""
    codec = InformedParallelismCodec(topology)
    if isinstance(multipliers, Mapping):
        values = list(multipliers.values())
    else:
        values = list(multipliers)
    return {float(m): codec.hints_for(float(m)) for m in values}
