"""Resilient evaluation: retries, timeouts, backoff, circuit breaking.

The paper's evaluations were multi-minute measurement windows on a real
80-machine cluster, where workers crash, windows hang, and whole
configurations are reliably lethal.  This module wraps any
:class:`~repro.core.executor.EvaluationExecutor` in the policy layer a
production tuner needs (docs/ROBUSTNESS.md):

* **timeouts** — each evaluation gets a wall-clock budget; on expiry it
  is abandoned at the backend (a hung process worker is killed and the
  pool respawned) and surfaces as a ``evaluation_timeout`` failure;
* **bounded retries with exponential backoff + jitter** — *transient*
  failures (injected crashes/hangs, timeouts, worker exceptions) are
  retried up to ``max_retries`` times under a fresh derived seed, so a
  retry re-draws its fault decision instead of replaying the crash;
* **transient vs persistent classification** — mechanical
  infeasibilities (scheduling, memory, batch timeout) are *persistent*:
  retrying them wastes budget, so they pass straight through to the
  optimizer as failures to learn from;
* **circuit breaker** — a configuration that fails persistently
  ``breaker_threshold`` times is short-circuited: further submissions
  return an immediate synthesized failure without touching the
  substrate.  With ``breaker_cooldown_seconds`` set, a rested circuit
  goes *half-open*: one probe submission runs for real, and its success
  re-closes the circuit (a failed probe re-opens it for another
  cooldown).

Everything is deterministic given the objective's fault plan and the
loop's per-evaluation seeds: retry seeds derive from the original seed
via :func:`~repro.core.seeding.derive_seed`, and jitter only perturbs
wall-clock sleeps, never observed values — which is what keeps a
checkpoint-resumed campaign byte-identical to an uninterrupted one.

The wrapper emits ``resilience.*`` tracer events live and accumulates a
``stats`` dict the tuning loop folds into ``resilience.*`` metrics
counters (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import dataclasses
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.executor import (
    EvaluationExecutor,
    EvaluationOutcome,
)
from repro.core.seeding import derive_seed
from repro.obs import runtime as obs_runtime

#: ``failure_reason`` prefixes classified as transient.  The first two
#: match the injected faults of :mod:`repro.storm.faults`; the last two
#: are synthesized by :class:`ResilientExecutor` itself.
TRANSIENT_MARKERS: tuple[str, ...] = (
    "worker_crash",
    "measurement_window_hang",
    "evaluation_timeout",
    "worker_exception",
)


def classify_failure(reason: str) -> str:
    """``"transient"`` (worth retrying) or ``"persistent"`` (is not).

    Persistent failures are properties of the configuration — executor
    capacity, memory, the batch-latency cliff — that no retry can fix;
    transient ones are properties of the *measurement* and usually
    vanish under a fresh seed.
    """
    reason = str(reason)
    if any(reason.startswith(marker) for marker in TRANSIENT_MARKERS):
        return "transient"
    return "persistent"


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the resilient evaluation layer.

    ``timeout_seconds`` bounds an evaluation's submit-to-collect wall
    clock on concurrent backends; the serial backend runs evaluations
    inline, so there the budget is checked post-hoc against the
    in-worker seconds.  ``None`` disables timeouts.  Backoff before
    retry ``n`` (1-based) sleeps
    ``backoff_base_seconds * backoff_multiplier**(n-1)``, scaled by a
    uniform jitter in ``[1, 1 + backoff_jitter]`` so simultaneous
    retries of a shared substrate decorrelate.
    """

    max_retries: int = 2
    timeout_seconds: float | None = None
    backoff_base_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.25
    breaker_threshold: int = 3
    #: After an open circuit has rested this long, the next submission
    #: of that configuration runs as a *half-open probe*: success
    #: re-closes the circuit, another persistent failure re-opens it
    #: for a fresh cooldown.  ``None`` (the default) keeps the classic
    #: behavior: an open circuit never recovers within a run.
    breaker_cooldown_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be > 0 (or None)")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if (
            self.breaker_cooldown_seconds is not None
            and self.breaker_cooldown_seconds <= 0
        ):
            raise ValueError("breaker_cooldown_seconds must be > 0 (or None)")

    def as_dict(self) -> dict[str, object]:
        """JSON-safe form (campaign specs serialize their policy)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RetryPolicy":
        """Rebuild from :meth:`as_dict` output (re-validates fields)."""
        return cls(**dict(data))  # type: ignore[arg-type]

    def backoff_seconds(
        self, attempt: int, rng: np.random.Generator | None = None
    ) -> float:
        """Sleep before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff_base_seconds * self.backoff_multiplier ** (attempt - 1)
        if rng is not None and self.backoff_jitter > 0:
            base *= 1.0 + self.backoff_jitter * float(rng.random())
        return base


@dataclass(frozen=True)
class FailedEvaluation:
    """Synthesized measurement record for a failure the substrate never
    reported (timeout, worker exception, open circuit).

    Duck-type compatible with the fields the tuning loop reads off a
    :class:`~repro.storm.metrics.MeasuredRun` (``failed``,
    ``failure_reason``, ``throughput_tps``, ``details``) without a
    core → storm import.
    """

    failure_reason: str
    failed: bool = True
    throughput_tps: float = 0.0
    details: Mapping[str, object] = field(default_factory=dict)


def config_key(config: Mapping[str, object]) -> str:
    """Stable identity of a configuration for the circuit breaker."""
    return json.dumps(sorted(config.items()), default=str)


class ReplicatedObjective:
    """Median-of-k measurement replication against *silent* degradation.

    Crashes, hangs and timeouts surface as failures and flow into the
    retry layer above — but stragglers and tuple loss silently depress
    the measured value, and a single degraded window can send the
    optimizer exploiting the wrong basin for the rest of the campaign.
    The only defence is replication: measure each configuration
    ``replicates`` times under derived seeds and keep the run with the
    median throughput, so a lone outlier window never decides what the
    optimizer learns.

    Replicate 0 reuses the caller's seed unchanged; if it fails, that
    failure is returned as-is so the ordinary retry/backoff and
    failure-imputation paths see exactly what they would without the
    wrapper.  Failed extra replicates are dropped from the median.
    Everything stays a pure function of (config, seed), which keeps
    checkpoint-resumed campaigns byte-identical.
    """

    def __init__(self, objective, replicates: int = 3) -> None:
        if replicates < 1:
            raise ValueError(f"replicates must be >= 1, got {replicates}")
        self.objective = objective
        self.replicates = int(replicates)

    def __getattr__(self, name: str):
        return getattr(self.objective, name)

    def measure(self, params: Mapping[str, object], *, seed: int | None = None):
        first = self.objective.measure(params, seed=seed)
        if first.failed or self.replicates == 1:
            return first
        runs = [first]
        for rep in range(1, self.replicates):
            rep_seed = (
                None if seed is None else derive_seed(seed, "replicate", rep)
            )
            run = self.objective.measure(params, seed=rep_seed)
            if not run.failed:
                runs.append(run)
        runs.sort(key=lambda r: float(r.throughput_tps))
        # Upper median: with one clean and one degraded window the
        # clean one wins, and for odd counts it is the true median.
        return runs[len(runs) // 2]


@dataclass
class _Attempt:
    """In-flight bookkeeping for one logical evaluation."""

    config: dict[str, object]
    seed: int | None  # the *original* seed; retries derive from it
    attempts: int = 0  # retries performed so far
    deadline: float | None = None
    first_submitted_at: float = field(default_factory=time.perf_counter)


class ResilientExecutor(EvaluationExecutor):
    """Retry/timeout/circuit-breaker wrapper over any executor.

    One logical evaluation (``eval_id``) may cost several physical
    attempts; the caller only ever sees one outcome per submission, so
    the tuning loop drives this exactly like the backend it wraps.
    Failed outcomes keep ``value == 0.0`` and carry the (last) failure
    record, so the loop's failure accounting and the optimizer's
    failure-aware tell work unchanged.
    """

    def __init__(
        self,
        inner: EvaluationExecutor,
        policy: RetryPolicy | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        super().__init__(inner.objective, max_workers=inner.max_workers)
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.kind = f"resilient+{inner.kind}"
        self._rng = np.random.default_rng(seed)  # jitter only, never values
        self._attempts: dict[int, _Attempt] = {}
        self._ready: deque[EvaluationOutcome] = deque()
        self._breaker: dict[str, int] = {}
        self._breaker_opened: dict[str, float] = {}
        self._clock = time.perf_counter  # patchable in tests
        self.stats: dict[str, int] = {
            "retries": 0,
            "timeouts": 0,
            "worker_exceptions": 0,
            "transient_failures": 0,
            "persistent_failures": 0,
            "circuit_opens": 0,
            "circuit_half_opens": 0,
            "circuit_closes": 0,
            "short_circuits": 0,
            "gave_up": 0,
        }

    # ------------------------------------------------------------------
    def submit(
        self,
        eval_id: int,
        config: Mapping[str, object],
        seed: int | None = None,
    ) -> None:
        config = dict(config)
        key = config_key(config)
        if self._breaker.get(key, 0) >= self.policy.breaker_threshold:
            if self._cooldown_elapsed(key):
                # Half-open probe: let exactly this submission through
                # and re-arm the cooldown, so a failed probe waits a
                # full rest before the next one.
                self._breaker_opened[key] = self._clock()
                self.stats["circuit_half_opens"] += 1
                obs_runtime.current().tracer.event(
                    "resilience.circuit_half_open", eval_id=eval_id
                )
            else:
                self.stats["short_circuits"] += 1
                obs_runtime.current().tracer.event(
                    "resilience.short_circuit", eval_id=eval_id
                )
                self._ready.append(
                    self._synthesize(
                        eval_id,
                        config,
                        seed,
                        "circuit_open: configuration failed persistently "
                        f"{self._breaker[key]} times",
                        turnaround=0.0,
                    )
                )
                return
        record = _Attempt(config=config, seed=seed)
        self._arm_deadline(record)
        self._attempts[eval_id] = record
        self.inner.submit(eval_id, config, seed)

    def wait_one(self) -> EvaluationOutcome:
        while True:
            if self._ready:
                return self._ready.popleft()
            if self.inner.n_pending == 0:
                raise RuntimeError("no pending evaluations")
            try:
                outcome = self.inner.try_wait_one(self._nearest_timeout())
            except Exception as exc:  # noqa: BLE001 - reclassified below
                resolved = self._resolve_exception(exc)
                if resolved is not None:
                    return resolved
                continue
            if outcome is None:
                self._expire_overdue()
                continue
            resolved = self._resolve(self._post_check(outcome))
            if resolved is not None:
                return resolved

    @property
    def n_pending(self) -> int:
        return len(self._attempts) + len(self._ready)

    def cancel_pending(self) -> int:
        cancelled = self.inner.cancel_pending() + len(self._ready)
        self._ready.clear()
        self._attempts.clear()
        return cancelled

    def close(self) -> None:
        self.inner.close()

    # ------------------------------------------------------------------
    def _cooldown_elapsed(self, key: str) -> bool:
        """True when an open circuit has rested long enough to probe."""
        cooldown = self.policy.breaker_cooldown_seconds
        if cooldown is None:
            return False
        opened = self._breaker_opened.get(key)
        if opened is None:
            # Opened before cooldowns were tracked (or state was
            # externally seeded): treat the rest as already served.
            return True
        return self._clock() - opened >= cooldown

    def _arm_deadline(self, record: _Attempt) -> None:
        if self.policy.timeout_seconds is not None:
            record.deadline = time.perf_counter() + self.policy.timeout_seconds
        else:
            record.deadline = None

    def _nearest_timeout(self) -> float | None:
        """Seconds until the earliest in-flight deadline (None: block)."""
        deadlines = [
            rec.deadline
            for rec in self._attempts.values()
            if rec.deadline is not None
        ]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.perf_counter())

    def _expire_overdue(self) -> None:
        """Abandon every evaluation past its deadline and rule on it."""
        now = time.perf_counter()
        overdue = [
            eval_id
            for eval_id, rec in self._attempts.items()
            if rec.deadline is not None and rec.deadline <= now
        ]
        for eval_id in overdue:
            rec = self._attempts[eval_id]
            self.inner.abandon(eval_id)
            self.stats["timeouts"] += 1
            obs_runtime.current().tracer.event(
                "resilience.timeout", eval_id=eval_id, attempt=rec.attempts
            )
            outcome = self._synthesize(
                eval_id,
                rec.config,
                rec.seed,
                "evaluation_timeout: exceeded "
                f"{self.policy.timeout_seconds:g}s wall clock",
                turnaround=now - rec.first_submitted_at,
            )
            resolved = self._resolve(outcome)
            if resolved is not None:
                self._ready.append(resolved)

    def _post_check(self, outcome: EvaluationOutcome) -> EvaluationOutcome:
        """Post-hoc timeout for backends that cannot preempt (serial)."""
        budget = self.policy.timeout_seconds
        if budget is None or outcome.seconds <= budget:
            return outcome
        self.stats["timeouts"] += 1
        obs_runtime.current().tracer.event(
            "resilience.timeout", eval_id=outcome.eval_id, post_hoc=True
        )
        return self._synthesize(
            outcome.eval_id,
            outcome.config,
            outcome.seed,
            f"evaluation_timeout: ran {outcome.seconds:.2f}s against a "
            f"{budget:g}s budget",
            turnaround=outcome.turnaround_seconds,
        )

    def _resolve_exception(self, exc: Exception) -> EvaluationOutcome | None:
        """Convert an identifiable worker exception into a failure.

        Unattributable exceptions (no ticket — e.g. a broken pool
        surfacing through an unrelated future) propagate: swallowing
        them would retry the wrong evaluation.
        """
        ticket = getattr(exc, "_repro_ticket", None)
        if ticket is None:
            raise exc
        self.stats["worker_exceptions"] += 1
        obs_runtime.current().tracer.event(
            "resilience.worker_exception",
            eval_id=ticket.eval_id,
            error=f"{type(exc).__name__}: {exc}",
        )
        outcome = self._synthesize(
            ticket.eval_id,
            dict(ticket.config),
            ticket.seed,
            f"worker_exception: {type(exc).__name__}: {exc}",
            turnaround=time.perf_counter() - ticket.submitted_at,
        )
        return self._resolve(outcome)

    def _resolve(self, outcome: EvaluationOutcome) -> EvaluationOutcome | None:
        """Rule on one finished attempt: pass through, retry, or break.

        Returns the outcome to hand the caller, or None when the
        evaluation was resubmitted (retry) and nothing surfaces yet.
        """
        record = self._attempts.pop(outcome.eval_id, None)
        failed = bool(getattr(outcome.run, "failed", False))
        if not failed:
            key = config_key(outcome.config)
            if (
                self.policy.breaker_cooldown_seconds is not None
                and self._breaker.get(key, 0) >= self.policy.breaker_threshold
            ):
                # A successful half-open probe: the configuration
                # recovered, re-close the circuit.  Classic mode
                # (cooldown None) never issues probes, so a success
                # here is an evaluation that was already in flight
                # when the circuit opened — it must not re-close a
                # circuit documented to stay open for the whole run.
                self._breaker[key] = 0
                self._breaker_opened.pop(key, None)
                self.stats["circuit_closes"] += 1
                obs_runtime.current().tracer.event(
                    "resilience.circuit_close", eval_id=outcome.eval_id
                )
            return outcome
        reason = str(getattr(outcome.run, "failure_reason", ""))
        kind = classify_failure(reason)
        if kind == "persistent":
            self.stats["persistent_failures"] += 1
            key = config_key(outcome.config)
            count = self._breaker.get(key, 0) + 1
            self._breaker[key] = count
            if count >= self.policy.breaker_threshold:
                # Newly opened (== threshold) or a failed half-open
                # probe (> threshold): either way the circuit is open
                # as of *now*.
                self._breaker_opened[key] = self._clock()
            if count == self.policy.breaker_threshold:
                self.stats["circuit_opens"] += 1
                obs_runtime.current().tracer.event(
                    "resilience.circuit_open", failures=count, reason=reason
                )
            return outcome
        self.stats["transient_failures"] += 1
        if record is None or record.attempts >= self.policy.max_retries:
            # Out of retries (or a short-circuited submission that never
            # had a record): the failure stands.
            self.stats["gave_up"] += 1
            return outcome
        record.attempts += 1
        retry_seed = (
            derive_seed(record.seed, "retry", record.attempts)
            if record.seed is not None
            else None
        )
        self.stats["retries"] += 1
        obs_runtime.current().tracer.event(
            "resilience.retry",
            eval_id=outcome.eval_id,
            attempt=record.attempts,
            reason=reason,
        )
        backoff = self.policy.backoff_seconds(record.attempts, self._rng)
        if backoff > 0:
            time.sleep(backoff)
        self._arm_deadline(record)
        self._attempts[outcome.eval_id] = record
        self.inner.submit(outcome.eval_id, record.config, retry_seed)
        return None

    def _synthesize(
        self,
        eval_id: int,
        config: dict[str, object],
        seed: int | None,
        reason: str,
        *,
        turnaround: float,
    ) -> EvaluationOutcome:
        return EvaluationOutcome(
            eval_id=eval_id,
            config=config,
            value=0.0,
            run=FailedEvaluation(failure_reason=reason),
            seconds=0.0,
            turnaround_seconds=turnaround,
            seed=seed,
        )
