"""Continuous tuning across workload drift (docs/DRIFT.md).

One :class:`~repro.core.loop.TuningLoop` pass answers the paper's
question — find a good configuration for *this* workload.  A deployed
tuner faces the follow-up: the workload moves (diurnal load, flash
crowds, skew migration — :mod:`repro.storm.schedule`), and yesterday's
incumbent slowly stops being good.  :class:`ContinuousTuningLoop`
structures tuning into *epochs* along workload time.  At each epoch
boundary it re-measures the incumbent under current conditions and
feeds the measurement to a drift detector
(:class:`~repro.core.drift.PageHinkleyDetector`).  On detection it
either

* **continuous** (the interesting mode): conservatively re-tunes from
  the incumbent — a trust region confines new proposals near the last
  known-good configuration, stale pre-drift observations stay in the
  GP but with inflated noise
  (:meth:`~repro.core.optimizer.BayesianOptimizer.
  retune_from_incumbent`), and the fresh incumbent measurement anchors
  the posterior at current conditions; or
* **cold**: throws the optimizer away and restarts from scratch, the
  paper's re-run-the-campaign answer and this module's baseline.

``benchmarks/bench_drift.py`` compares the two by recovery time —
observations spent after a drift event before the tuner is back within
5% of the post-drift optimum.

Each epoch's inner loop checkpoints through a
:class:`~repro.store.base.StudyStore` (run names ``epoch-NNNN``), and
the epoch-level state — detector, incumbent, detections — lands in the
store's ``continuous`` state document, written atomically at each epoch
boundary.  ``checkpoint_dir=`` remains the compatibility spelling: it
opens a :class:`~repro.store.jsonl.JsonlStudyStore` on that directory
under the empty cell label, which produces the exact pre-store layout —
``epoch-NNNN.jsonl`` files plus a ``continuous.json`` sidecar.  A
SIGKILL at any point resumes byte-identically: completed epochs reload
from their checkpoints, the partial epoch resumes exactly via the inner
loop's optimizer snapshot, and the epoch-boundary work (monitor
measurement, detection, re-tune) is deterministic given the sidecar
state, so re-doing it reproduces the uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Mapping

from repro.core.baselines import Optimizer
from repro.core.drift import PageHinkleyDetector
from repro.core.executor import call_objective
from repro.core.history import Observation
from repro.core.loop import Objective, TuningLoop
from repro.core.seeding import derive_seed
from repro.obs import runtime as obs_runtime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core ≤ store)
    from repro.store.base import StudyStore

SIDECAR_VERSION = 1
#: Name of the epoch-state document in the store; under the JSONL
#: backend's empty cell label it is the literal ``continuous.json``
#: sidecar file of the pre-store layout.
SIDECAR_NAME = "continuous.json"
STATE_NAME = "continuous"

MODES = ("continuous", "cold")


@dataclass
class EpochRecord:
    """One epoch's boundary events plus its tuning observations."""

    index: int
    workload_time_s: float
    monitor_value: float | None = None
    drift_detected: bool = False
    detector_statistic: float = 0.0
    retuned: bool = False
    restarted: bool = False
    #: True when this epoch's best observation replaced the incumbent.
    adopted: bool = False
    observations: list[Observation] = field(default_factory=list)

    @property
    def best_value(self) -> float:
        values = [o.value for o in self.observations if not o.failed]
        return max(values) if values else float("nan")

    def boundary_as_dict(self) -> dict[str, object]:
        """The epoch-boundary fields (observations live in the epoch's
        own checkpoint file, not the sidecar)."""
        return {
            "index": self.index,
            "workload_time_s": self.workload_time_s,
            "monitor_value": self.monitor_value,
            "drift_detected": self.drift_detected,
            "detector_statistic": self.detector_statistic,
            "retuned": self.retuned,
            "restarted": self.restarted,
            "adopted": self.adopted,
        }

    @classmethod
    def from_boundary_dict(cls, data: Mapping[str, object]) -> "EpochRecord":
        monitor = data.get("monitor_value")
        return cls(
            index=int(data["index"]),  # type: ignore[arg-type]
            workload_time_s=float(data["workload_time_s"]),  # type: ignore[arg-type]
            monitor_value=None if monitor is None else float(monitor),  # type: ignore[arg-type]
            drift_detected=bool(data.get("drift_detected", False)),
            detector_statistic=float(data.get("detector_statistic", 0.0)),  # type: ignore[arg-type]
            retuned=bool(data.get("retuned", False)),
            restarted=bool(data.get("restarted", False)),
            adopted=bool(data.get("adopted", False)),
        )


@dataclass
class ContinuousTuningResult:
    """The outcome of a multi-epoch continuous-tuning run."""

    mode: str
    strategy: str
    epochs: list[EpochRecord] = field(default_factory=list)
    #: All tuning observations, globally renumbered across epochs — the
    #: stream :func:`~repro.core.checkpoint.canonical_history` compares
    #: for the kill-and-resume acceptance criterion.
    observations: list[Observation] = field(default_factory=list)
    detections: list[int] = field(default_factory=list)
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def n_steps(self) -> int:
        return len(self.observations)

    @property
    def best_value(self) -> float:
        values = [o.value for o in self.observations if not o.failed]
        if not values:
            raise ValueError("no successful observations")
        return max(values)


class ContinuousTuningLoop:
    """Epoch-structured tuning with drift detection and re-tuning.

    ``make_optimizer`` builds a fresh optimizer from a seed; it is
    called once at the start and, in cold mode, again after every
    detection.  ``objective`` should expose ``set_workload_time`` (as
    :class:`~repro.storm.objective.StormObjective` does when built with
    a :class:`~repro.storm.schedule.WorkloadSchedule`); objectives
    without it simply tune a stationary surface.  Epoch ``e`` runs at
    workload time ``start_time_s + e * epoch_duration_s``.

    ``steps_per_epoch`` bounds each epoch's inner tuning loop;
    ``initial_steps`` (default ``steps_per_epoch``) lets the first
    epoch — the only one that starts from nothing in continuous mode —
    spend a larger warm-up budget.
    """

    def __init__(
        self,
        objective: Objective,
        make_optimizer: Callable[[int | None], Optimizer],
        *,
        epochs: int = 6,
        epoch_duration_s: float = 600.0,
        steps_per_epoch: int = 8,
        initial_steps: int | None = None,
        mode: str = "continuous",
        detector: PageHinkleyDetector | None = None,
        seed: int | None = None,
        checkpoint_dir: str | Path | None = None,
        store: "StudyStore | None" = None,
        study: str = "continuous",
        cell: str = "",
        strategy_name: str | None = None,
        trust_radius: float = 0.15,
        mild_trust_radius: float | None = None,
        stale_inflation: float = 4.0,
        severe_deviation: float = 0.35,
        start_time_s: float = 0.0,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if epoch_duration_s <= 0:
            raise ValueError("epoch_duration_s must be > 0")
        if steps_per_epoch < 1:
            raise ValueError("steps_per_epoch must be >= 1")
        if initial_steps is not None and initial_steps < 1:
            raise ValueError("initial_steps must be >= 1")
        self.objective = objective
        self.make_optimizer = make_optimizer
        self.epochs = epochs
        self.epoch_duration_s = float(epoch_duration_s)
        self.steps_per_epoch = steps_per_epoch
        self.initial_steps = (
            steps_per_epoch if initial_steps is None else initial_steps
        )
        self.mode = mode
        self.detector = detector if detector is not None else PageHinkleyDetector()
        self.seed = seed
        if store is not None and checkpoint_dir is not None:
            raise ValueError(
                "pass either checkpoint_dir or a store, not both"
            )
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.study = study
        self.cell = cell
        self.store = store
        if self.store is None and self.checkpoint_dir is not None:
            # Imported lazily: the store layer sits above core, and this
            # shim is the one place core reaches up — only when a caller
            # asks for directory persistence by the pre-store spelling.
            from repro.store.jsonl import JsonlStudyStore

            self.store = JsonlStudyStore(self.checkpoint_dir)
        self.strategy_name = strategy_name or f"continuous-{mode}"
        self.trust_radius = float(trust_radius)
        self.mild_trust_radius = (
            None if mild_trust_radius is None else float(mild_trust_radius)
        )
        self.stale_inflation = float(stale_inflation)
        self.severe_deviation = float(severe_deviation)
        self.start_time_s = float(start_time_s)

    # ------------------------------------------------------------------
    # Seeds and paths
    # ------------------------------------------------------------------
    def _opt_seed(self, epoch: int) -> int | None:
        if self.seed is None:
            return None
        return derive_seed(self.seed, "optimizer", epoch)

    def _epoch_seed(self, epoch: int) -> int | None:
        if self.seed is None:
            return None
        return derive_seed(self.seed, "epoch", epoch)

    def _monitor_seed(self, epoch: int) -> int | None:
        if self.seed is None:
            return None
        return derive_seed(self.seed, "monitor", epoch)

    @staticmethod
    def _epoch_run(epoch: int) -> str:
        return f"epoch-{epoch:04d}"

    def _epoch_slot(self, epoch: int):
        if self.store is None:
            return None
        return self.store.checkpoint_slot(
            self.study, self.cell, self._epoch_run(epoch)
        )

    def _sidecar_describe(self) -> str:
        assert self.store is not None
        return (
            f"{self.store.kind}:{self.store.describe()}"
            f"::{self.study}/{self.cell or '-'}/{STATE_NAME}"
        )

    # ------------------------------------------------------------------
    # Epoch boundary
    # ------------------------------------------------------------------
    def _set_workload_time(self, t_s: float) -> None:
        set_time = getattr(self.objective, "set_workload_time", None)
        if callable(set_time):
            set_time(t_s)

    def _monitor_incumbent(
        self, config: Mapping[str, object], epoch: int
    ) -> tuple[float, bool]:
        """Re-measure the incumbent under current conditions."""
        value, run, _ = call_objective(
            self.objective, config, self._monitor_seed(epoch)
        )
        failed = bool(getattr(run, "failed", False)) or not math.isfinite(value)
        return (value if math.isfinite(value) else 0.0), failed

    def _epoch_boundary(
        self,
        epoch: int,
        record: EpochRecord,
        optimizer: Optimizer,
        incumbent: Mapping[str, object],
        incumbent_value: float,
        result: ContinuousTuningResult,
    ) -> tuple[Optimizer, float]:
        """Monitor the incumbent, update the detector, react to drift."""
        ctx = obs_runtime.current()
        value, failed = self._monitor_incumbent(incumbent, epoch)
        # A failed incumbent measurement reads as a collapse to zero:
        # the strongest possible drift signal.
        drifted = self.detector.update(0.0 if failed else value)
        record.monitor_value = None if failed else value
        record.detector_statistic = float(self.detector.statistic)
        ctx.tracer.event(
            "drift.monitor",
            epoch=epoch,
            value=value,
            failed=failed,
            statistic=record.detector_statistic,
        )
        ctx.metrics.counter("drift.monitors").inc()
        if not drifted:
            # The trust region is a *recovery* device: it confines the
            # epoch right after a detection.  Once the incumbent
            # re-measures clean, release the optimizer back to global
            # search — under slow drift (diurnal) the optimum keeps
            # walking, and a permanent box around the old incumbent
            # would pin tuning to its ceiling.
            clear = getattr(optimizer, "clear_trust_region", None)
            if callable(clear):
                clear()
            return optimizer, incumbent_value
        record.drift_detected = True
        result.detections.append(epoch)
        ctx.tracer.event(
            "drift.detected",
            epoch=epoch,
            statistic=record.detector_statistic,
            mode=self.mode,
        )
        ctx.metrics.counter("drift.detections").inc()
        # Re-anchor the incumbent's value estimate at post-drift
        # conditions — the pre-drift estimate may now be unreachable,
        # and keeping it would freeze the incumbent forever.
        incumbent_value = 0.0 if failed else value
        if self.mode == "continuous":
            retune = getattr(optimizer, "retune_from_incumbent", None)
            if callable(retune):
                # Grade the response by severity.  A severe collapse
                # (flash crowd, skew migration) gets the tight trust
                # region: the incumbent's neighborhood is the best known
                # starting point and serving quality matters.  A mild
                # shift (early diurnal drift) skips the box — the
                # surface is mostly intact, so down-weighted stale
                # observations plus global search recover faster than a
                # box capped at the old incumbent's ceiling.
                severity = -float(getattr(self.detector, "last_deviation", 0.0))
                radius = (
                    self.trust_radius
                    if severity >= self.severe_deviation
                    else self.mild_trust_radius
                )
                retune(
                    incumbent,
                    trust_radius=radius,
                    stale_inflation=self.stale_inflation,
                )
                record.retuned = True
            if not failed:
                # Anchor the posterior at post-drift conditions: the
                # monitor measurement is the one fresh data point.
                optimizer.tell(incumbent, value)
        else:
            optimizer = self.make_optimizer(self._opt_seed(epoch))
            record.restarted = True
        self.detector.reset()
        # Seed the re-armed test with the post-drift measurement so the
        # next boundary has a reference under current conditions.
        self.detector.update(0.0 if failed else value)
        return optimizer, incumbent_value

    # ------------------------------------------------------------------
    # Sidecar checkpointing
    # ------------------------------------------------------------------
    def _write_sidecar(
        self,
        epochs_completed: int,
        incumbent: Mapping[str, object] | None,
        incumbent_value: float,
        result: ContinuousTuningResult,
    ) -> None:
        state_dict = getattr(self.detector, "state_dict", None)
        data = {
            "version": SIDECAR_VERSION,
            "mode": self.mode,
            "strategy": self.strategy_name,
            "seed": self.seed,
            "epochs": self.epochs,
            "epochs_completed": epochs_completed,
            "detector": dict(state_dict()) if callable(state_dict) else None,
            "incumbent_config": None if incumbent is None else dict(incumbent),
            "incumbent_value": (
                None if incumbent is None else float(incumbent_value)
            ),
            "detections": list(result.detections),
            "epoch_records": [
                rec.boundary_as_dict() for rec in result.epochs
            ],
        }
        assert self.store is not None
        self.store.save_state(self.study, self.cell, STATE_NAME, data)

    def _resume(
        self, result: ContinuousTuningResult, optimizer: Optimizer
    ) -> tuple[int, Optimizer, dict[str, object] | None, float]:
        """Restore epoch-level state from the sidecar, if present.

        Returns ``(next_epoch, optimizer, incumbent_config,
        incumbent_value)``.
        Completed epochs reload their observations from the retained
        per-epoch checkpoints; the optimizer is rebuilt from the last
        completed epoch's snapshot (exact resume).  The partially-run
        epoch, if any, is re-entered normally — its inner loop resumes
        from its own checkpoint.
        """
        assert self.store is not None
        data = self.store.load_state(self.study, self.cell, STATE_NAME)
        if data is None:
            return 0, optimizer, None, float("-inf")
        if data.get("version") != SIDECAR_VERSION:
            return 0, optimizer, None, float("-inf")
        if data.get("mode") != self.mode or data.get("seed") != self.seed:
            raise ValueError(
                f"sidecar {self._sidecar_describe()} was written by a run "
                f"with mode={data.get('mode')!r} seed={data.get('seed')!r}; "
                f"this run has mode={self.mode!r} seed={self.seed!r}"
            )
        completed = int(data.get("epochs_completed", 0))
        if completed < 1:
            return 0, optimizer, None, float("-inf")
        load = getattr(self.detector, "load_state_dict", None)
        if callable(load) and data.get("detector") is not None:
            load(data["detector"])
        result.detections.extend(int(e) for e in data.get("detections", []))
        for boundary in data.get("epoch_records", [])[:completed]:
            record = EpochRecord.from_boundary_dict(boundary)
            checkpoint = self.store.load_checkpoint(
                self.study, self.cell, self._epoch_run(record.index)
            )
            if checkpoint is None:
                raise RuntimeError(
                    f"sidecar lists epoch {record.index} as completed but "
                    f"its checkpoint "
                    f"{self._epoch_slot(record.index).describe()} is "
                    "missing or unreadable"
                )
            record.observations = list(checkpoint.observations)
            self._append_epoch(result, record)
        last = self.store.load_checkpoint(
            self.study, self.cell, self._epoch_run(completed - 1)
        )
        if last is not None and last.optimizer_state is not None:
            from_state = getattr(type(optimizer), "from_state_dict", None)
            if callable(from_state):
                optimizer = from_state(last.optimizer_state)
        incumbent = data.get("incumbent_config")
        raw_value = data.get("incumbent_value")
        incumbent_value = float("-inf") if raw_value is None else float(raw_value)
        obs_runtime.current().tracer.event(
            "drift.resume", epochs_completed=completed
        )
        return completed, optimizer, incumbent, incumbent_value

    # ------------------------------------------------------------------
    def _append_epoch(
        self, result: ContinuousTuningResult, record: EpochRecord
    ) -> None:
        result.epochs.append(record)
        base = len(result.observations)
        result.observations.extend(
            dataclasses.replace(obs, step=base + i)
            for i, obs in enumerate(record.observations)
        )

    @staticmethod
    def _epoch_best(
        record: EpochRecord,
    ) -> tuple[float, Mapping[str, object]] | None:
        best: tuple[float, Mapping[str, object]] | None = None
        for obs in record.observations:
            if obs.failed:
                continue
            if best is None or obs.value > best[0]:
                best = (obs.value, obs.config)
        return best

    def run(self) -> ContinuousTuningResult:
        ctx = obs_runtime.current()
        result = ContinuousTuningResult(mode=self.mode, strategy=self.strategy_name)
        optimizer = self.make_optimizer(self._opt_seed(0))
        incumbent: dict[str, object] | None = None
        incumbent_value = float("-inf")
        start_epoch = 0
        if self.store is not None:
            start_epoch, optimizer, incumbent, incumbent_value = self._resume(
                result, optimizer
            )
        for epoch in range(start_epoch, self.epochs):
            t_epoch = self.start_time_s + epoch * self.epoch_duration_s
            with ctx.tracer.span(
                "drift.epoch", epoch=epoch, workload_time_s=t_epoch
            ) as span:
                self._set_workload_time(t_epoch)
                record = EpochRecord(index=epoch, workload_time_s=t_epoch)
                if epoch > 0 and incumbent is not None:
                    optimizer, incumbent_value = self._epoch_boundary(
                        epoch, record, optimizer, incumbent, incumbent_value,
                        result,
                    )
                inner = TuningLoop(
                    self.objective,
                    optimizer,
                    max_steps=(
                        self.initial_steps if epoch == 0 else self.steps_per_epoch
                    ),
                    strategy_name=self.strategy_name,
                    seed=self._epoch_seed(epoch),
                    checkpoint=self._epoch_slot(epoch),
                )
                epoch_result = inner.run()
                # Exact resume may have rebuilt the optimizer object.
                optimizer = inner.optimizer
                record.observations = list(epoch_result.observations)
                self._append_epoch(result, record)
                # The incumbent is *sticky*: it changes only when an
                # epoch produces something measurably better.  The
                # monitor series tracks re-measurements of one fixed
                # configuration, so adopting a new incumbent restarts
                # the series (seeded with the adoption value as its
                # reference) — otherwise the detector would fire on the
                # tuner's own improvements instead of on the workload.
                best = self._epoch_best(record)
                if best is not None and best[0] > incumbent_value:
                    incumbent = dict(best[1])
                    incumbent_value = float(best[0])
                    record.adopted = True
                    self.detector.reset()
                    self.detector.update(incumbent_value)
                span.set_attribute("drift_detected", record.drift_detected)
                span.set_attribute("best_value", record.best_value)
            ctx.metrics.counter("drift.epochs").inc()
            if ctx.enabled:
                # Intermediate snapshot + flush: a long-running campaign's
                # trace always ends (so far) with a current metrics record,
                # which `obs export --format openmetrics` serves to a
                # textfile scraper while the loop is still tuning.
                ctx.emit({"type": "metrics", "snapshot": ctx.metrics.snapshot()})
                for sink in ctx.sinks:
                    flush = getattr(sink, "flush", None)
                    if callable(flush):
                        flush()
            if self.store is not None:
                self._write_sidecar(epoch + 1, incumbent, incumbent_value, result)
        if not result.observations:
            raise RuntimeError("continuous tuning produced no observations")
        result.metadata.update(
            {
                "mode": self.mode,
                "epochs": self.epochs,
                "epoch_duration_s": self.epoch_duration_s,
                "steps_per_epoch": self.steps_per_epoch,
                "initial_steps": self.initial_steps,
                "trust_radius": self.trust_radius,
                "stale_inflation": self.stale_inflation,
                "severe_deviation": self.severe_deviation,
                "start_time_s": self.start_time_s,
                "n_detections": len(result.detections),
                "resumed_epochs": start_epoch,
            }
        )
        return result
