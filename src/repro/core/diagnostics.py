"""Online BO model-quality diagnostics: is the surrogate healthy?

The paper's cost analysis (Figure 7, §IV-B3) answers *where time goes*;
this module answers the companion production question — *can the model
be trusted* — with the standard online checks from the probabilistic-
forecasting literature, computed one step ahead of each ``tell`` so
every score is a genuine out-of-sample test:

* **Standardized residuals** ``z = (y − μ) / σ`` of each measurement
  against the surrogate's pre-tell predictive distribution (noise
  included).  A healthy GP keeps them ~N(0, 1); drifting mean signals
  bias, |z| persistently > 2 signals overconfidence.
* **95% predictive-interval coverage** — the fraction of measurements
  inside ``μ ± 1.96σ``.  Miscalibration here is exactly how a GP
  silently wastes budget on stream-processor response surfaces
  (Jamshidi & Casale, PAPERS.md).
* **NLPD** (negative log predictive density) — the proper scoring rule
  that punishes both bias and bad variance.
* **Acquisition-value decay** — EI's own estimate of remaining
  improvement; a decayed series is the surrogate's convergence claim.
* **Incumbent regret vs the noise-free analytic reference** — for
  objectives backed by the analytic engine, the incumbent is re-scored
  noise-free against a fixed Latin-hypercube reference pool's optimum
  (the same construction :mod:`repro.experiments.drift` judges recovery
  with), giving a ground-truth convergence curve no noisy observation
  can fake.

Pure computation layer: no :mod:`repro.obs` imports.  Emission lives in
:mod:`repro.obs.diagnostics`; :class:`~repro.core.loop.TuningLoop`
instantiates a tracker only when an obs session is active (or the
caller opts in), so the disabled path stays a single ``None`` check.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Mapping

import numpy as np

#: ±zσ bounds of the central 95% interval of a normal distribution.
Z_95 = 1.959964

#: Latin-hypercube pool size for the noise-free reference optimum.
REFERENCE_POOL = 512


@dataclass
class StepDiagnostics:
    """Model-quality scores for one tell (one measured configuration)."""

    step: int
    value: float
    best_value: float
    failed: bool = False
    #: Pre-tell predictive distribution at the measured config
    #: (objective units, observation noise included).  None while the
    #: surrogate is unfitted or the optimizer has no GP.
    predicted_mean: float | None = None
    predicted_std: float | None = None
    residual_z: float | None = None
    in_interval_95: bool | None = None
    nlpd: float | None = None
    #: Running 95%-interval coverage over all scored tells so far.
    coverage_95: float | None = None
    acquisition_value: float | None = None
    #: Noise-free analytic score of the incumbent configuration, and
    #: its relative regret vs the reference-pool optimum.  None when no
    #: analytic reference exists.
    incumbent_noise_free: float | None = None
    reference_optimum: float | None = None
    incumbent_regret: float | None = None

    def as_attrs(self) -> dict[str, object]:
        """Flat attribute dict with None entries dropped (event payload)."""
        return {k: v for k, v in asdict(self).items() if v is not None}


class DiagnosticsTracker:
    """Accumulate per-tell diagnostics over one tuning run.

    Call :meth:`observe` once per completed evaluation, *before* the
    matching ``optimizer.tell`` — the one-step-ahead residual is only
    honest while the measurement is still out of sample.

    Parameters
    ----------
    optimizer:
        Any optimizer.  Model-quality fields light up only when it
        exposes ``predict_config`` (the fitted-GP path of
        :class:`~repro.core.optimizer.BayesianOptimizer`); grid/random
        baselines still get value/best/regret tracking.
    objective:
        When it quacks like :class:`~repro.storm.objective.StormObjective`
        with an analytic engine (``codec`` + ``engine.evaluate_noise_free``),
        the tracker lazily builds the noise-free reference optimum and
        scores the incumbent against it each tell.  Anything else —
        plain callables, DES-backed objectives — degrades to regret-free
        diagnostics.
    """

    def __init__(
        self,
        optimizer: object,
        *,
        objective: object | None = None,
        reference_pool: int = REFERENCE_POOL,
        reference_seed: int = 0,
    ) -> None:
        self.optimizer = optimizer
        self.objective = objective
        self.reference_pool = reference_pool
        self.reference_seed = reference_seed
        self.maximize = bool(getattr(optimizer, "maximize", True))
        self.n_tells = 0
        self.n_scored = 0
        self.n_in_interval = 0
        self._nlpd_sum = 0.0
        self._z_sum = 0.0
        self._z_sq_sum = 0.0
        self._abs_z_sum = 0.0
        self._acq_first: float | None = None
        self._acq_last: float | None = None
        self._best_value = -math.inf if self.maximize else math.inf
        self._best_config: Mapping[str, object] | None = None
        self._reference: float | None = None
        self._reference_built = False
        self._incumbent_score: float | None = None
        self._incumbent_dirty = False
        self._final: StepDiagnostics | None = None

    # ------------------------------------------------------------------
    # Noise-free analytic reference (drift.reference_optima construction)
    # ------------------------------------------------------------------
    def _reference_optimum(self) -> float | None:
        """Reference-pool optimum, built lazily on the first scored tell.

        Evaluated at the objective's *current* workload time; a
        per-epoch drifting reference is the continuous loop's concern
        (:func:`repro.experiments.drift.reference_optima`), not this
        per-run tracker's.
        """
        if self._reference_built:
            return self._reference
        self._reference_built = True
        codec = getattr(self.objective, "codec", None)
        engine = getattr(self.objective, "engine", None)
        batch_eval = getattr(engine, "evaluate_noise_free_batch", None)
        if codec is None or not callable(batch_eval):
            return None
        try:
            rng = np.random.default_rng(self.reference_seed)
            points = codec.space.latin_hypercube(self.reference_pool, rng)
            configs = [
                codec.decode(codec.space.decode(np.asarray(point)))
                for point in codec.space.round_trip_batch(points)
            ]
            runs = batch_eval(
                configs,
                workload_time_s=float(
                    getattr(self.objective, "workload_time_s", 0.0)
                ),
            )
            values = [run.throughput_tps for run in runs if not run.failed]
        except Exception:  # never let diagnostics kill a tuning run
            return None
        if values:
            self._reference = max(values) if self.maximize else min(values)
        return self._reference

    def _incumbent_noise_free(self) -> float | None:
        """Noise-free analytic score of the current incumbent config.

        Cached between tells: the incumbent only moves on improvement
        steps, so most tells reuse the previous score and the analytic
        engine is touched a handful of times per run, not per tell.
        """
        if self._best_config is None:
            return None
        if not self._incumbent_dirty:
            return self._incumbent_score
        self._incumbent_dirty = False
        self._incumbent_score = None
        codec = getattr(self.objective, "codec", None)
        engine = getattr(self.objective, "engine", None)
        evaluate = getattr(engine, "evaluate_noise_free", None)
        if codec is None or not callable(evaluate):
            return None
        try:
            run = evaluate(
                codec.decode(self._best_config),
                workload_time_s=float(
                    getattr(self.objective, "workload_time_s", 0.0)
                ),
            )
        except Exception:
            return None
        if not run.failed:
            self._incumbent_score = float(run.throughput_tps)
        return self._incumbent_score

    # ------------------------------------------------------------------
    # Per-tell scoring
    # ------------------------------------------------------------------
    def observe(
        self,
        *,
        step: int,
        config: Mapping[str, object],
        value: float,
        failed: bool = False,
    ) -> StepDiagnostics:
        """Score one completed evaluation (call *before* the tell)."""
        self.n_tells += 1
        if not failed and math.isfinite(value):
            better = (
                value > self._best_value
                if self.maximize
                else value < self._best_value
            )
            if better:
                self._best_value = value
                self._best_config = dict(config)
                self._incumbent_dirty = True
        best = self._best_value if math.isfinite(self._best_value) else value
        diag = StepDiagnostics(
            step=step, value=value, best_value=best, failed=failed
        )
        predict = getattr(self.optimizer, "predict_config", None)
        prediction = (
            predict(config, include_noise=True)
            if callable(predict) and not failed
            else None
        )
        if prediction is not None:
            mu, sd = prediction
            if sd > 0.0 and math.isfinite(mu) and math.isfinite(sd):
                z = (value - mu) / sd
                diag.predicted_mean = mu
                diag.predicted_std = sd
                diag.residual_z = z
                diag.in_interval_95 = bool(abs(z) <= Z_95)
                diag.nlpd = 0.5 * (math.log(2.0 * math.pi * sd * sd) + z * z)
                self.n_scored += 1
                self.n_in_interval += int(diag.in_interval_95)
                self._nlpd_sum += diag.nlpd
                self._z_sum += z
                self._z_sq_sum += z * z
                self._abs_z_sum += abs(z)
        if self.n_scored:
            diag.coverage_95 = self.n_in_interval / self.n_scored
        acq = getattr(self.optimizer, "last_acquisition_value", None)
        if isinstance(acq, (int, float)) and math.isfinite(acq):
            diag.acquisition_value = float(acq)
            if self._acq_first is None:
                self._acq_first = float(acq)
            self._acq_last = float(acq)
        reference = self._reference_optimum()
        if reference is not None:
            diag.reference_optimum = reference
            incumbent = self._incumbent_noise_free()
            if incumbent is not None:
                diag.incumbent_noise_free = incumbent
                gap = (
                    reference - incumbent
                    if self.maximize
                    else incumbent - reference
                )
                diag.incumbent_regret = (
                    gap / abs(reference) if reference else gap
                )
        self._final = diag
        return diag

    # ------------------------------------------------------------------
    # Run-level summary
    # ------------------------------------------------------------------
    @property
    def coverage_95(self) -> float | None:
        return self.n_in_interval / self.n_scored if self.n_scored else None

    def summary(self) -> dict[str, object]:
        """Run-level aggregate for ``TuningResult.metadata['diagnostics']``."""
        out: dict[str, object] = {
            "n_tells": self.n_tells,
            "n_scored": self.n_scored,
        }
        if self.n_scored:
            n = self.n_scored
            z_mean = self._z_sum / n
            z_var = max(0.0, self._z_sq_sum / n - z_mean * z_mean)
            out.update(
                {
                    "coverage_95": self.n_in_interval / n,
                    "nlpd_mean": self._nlpd_sum / n,
                    "residual_z_mean": z_mean,
                    "residual_z_std": math.sqrt(z_var),
                    "abs_residual_z_mean": self._abs_z_sum / n,
                }
            )
        if self._acq_first is not None:
            out["acquisition_first"] = self._acq_first
            out["acquisition_last"] = self._acq_last
            if self._acq_first > 0:
                out["acquisition_decay"] = 1.0 - (
                    (self._acq_last or 0.0) / self._acq_first
                )
        final = self._final
        if final is not None:
            out["best_value"] = final.best_value
            if final.reference_optimum is not None:
                out["reference_optimum"] = final.reference_optimum
            if final.incumbent_regret is not None:
                out["incumbent_regret"] = final.incumbent_regret
            if final.incumbent_noise_free is not None:
                out["incumbent_noise_free"] = final.incumbent_noise_free
        return out
