"""Typed parameter spaces for black-box optimization.

Parameters declare how configuration values map to and from the unit
hypercube the Gaussian process operates in.  Integer parameters (the
paper's parallelism hints, batch sizes, thread counts) round on decode;
float parameters (the informed variant's base-weight multiplier) map
affinely or logarithmically; categoricals index their choices.
"""

from __future__ import annotations

import abc
import math
from typing import Iterable, Mapping, Sequence

import numpy as np


class Parameter(abc.ABC):
    """One named dimension of a search space."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("parameter name must be non-empty")
        self.name = name

    @abc.abstractmethod
    def to_unit(self, value: object) -> float:
        """Map a parameter value to [0, 1]."""

    @abc.abstractmethod
    def from_unit(self, u: float) -> object:
        """Map a unit-cube coordinate back to a parameter value."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> object:
        """Draw a uniform random value."""

    @abc.abstractmethod
    def contains(self, value: object) -> bool:
        """Whether ``value`` lies in the parameter's domain."""

    #: True when the decoded values live on a discrete grid.
    is_discrete: bool = False

    def round_trip_unit(self, u: np.ndarray) -> np.ndarray:
        """Vectorized ``to_unit(from_unit(u))`` over an array of coords.

        Subclasses override with closed forms; this fallback loops.
        """
        return np.array(
            [self.to_unit(self.from_unit(float(ui))) for ui in np.asarray(u)]
        )

    @abc.abstractmethod
    def as_dict(self) -> dict[str, object]:
        """JSON-serializable description (see :func:`parameter_from_dict`)."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        fields = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"{type(self).__name__}({fields})"


def _clip_unit(u: float) -> float:
    if math.isnan(u):
        raise ValueError("unit coordinate is NaN")
    return min(1.0, max(0.0, float(u)))


class FloatParameter(Parameter):
    """A continuous parameter on ``[low, high]``, optionally log-scaled."""

    is_discrete = False

    def __init__(self, name: str, low: float, high: float, log: bool = False) -> None:
        super().__init__(name)
        if not (math.isfinite(low) and math.isfinite(high)):
            raise ValueError(f"{name}: bounds must be finite")
        if low >= high:
            raise ValueError(f"{name}: low must be < high")
        if log and low <= 0:
            raise ValueError(f"{name}: log scale requires low > 0")
        self.low = float(low)
        self.high = float(high)
        self.log = bool(log)

    def to_unit(self, value: object) -> float:
        v = float(value)  # type: ignore[arg-type]
        if self.log:
            return _clip_unit(
                (math.log(v) - math.log(self.low))
                / (math.log(self.high) - math.log(self.low))
            )
        return _clip_unit((v - self.low) / (self.high - self.low))

    def from_unit(self, u: float) -> float:
        u = _clip_unit(u)
        if self.log:
            return math.exp(
                math.log(self.low) + u * (math.log(self.high) - math.log(self.low))
            )
        return self.low + u * (self.high - self.low)

    def round_trip_unit(self, u: np.ndarray) -> np.ndarray:
        # from_unit and to_unit are exact inverses on [0, 1] (the log
        # transform cancels), so the snap reduces to a clip.
        return np.clip(np.asarray(u, dtype=float), 0.0, 1.0)

    def sample(self, rng: np.random.Generator) -> float:
        return self.from_unit(rng.random())

    def contains(self, value: object) -> bool:
        try:
            v = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
        return self.low - 1e-12 <= v <= self.high + 1e-12

    def as_dict(self) -> dict[str, object]:
        return {
            "type": "float",
            "name": self.name,
            "low": self.low,
            "high": self.high,
            "log": self.log,
        }


class IntParameter(Parameter):
    """An integer parameter on ``{low, ..., high}``, optionally log-scaled.

    The unit-cube embedding treats each integer as the centre of an
    equal-width cell so rounding is unbiased at the boundaries.
    """

    is_discrete = True

    def __init__(self, name: str, low: int, high: int, log: bool = False) -> None:
        super().__init__(name)
        if low >= high:
            raise ValueError(f"{name}: low must be < high")
        if log and low <= 0:
            raise ValueError(f"{name}: log scale requires low > 0")
        self.low = int(low)
        self.high = int(high)
        self.log = bool(log)

    @property
    def n_values(self) -> int:
        return self.high - self.low + 1

    def to_unit(self, value: object) -> float:
        v = int(round(float(value)))  # type: ignore[arg-type]
        if self.log:
            return _clip_unit(
                (math.log(v) - math.log(self.low))
                / (math.log(self.high) - math.log(self.low))
            )
        return _clip_unit((v - self.low + 0.5) / self.n_values)

    def from_unit(self, u: float) -> int:
        u = _clip_unit(u)
        if self.log:
            raw = math.exp(
                math.log(self.low) + u * (math.log(self.high) - math.log(self.low))
            )
            return int(min(self.high, max(self.low, round(raw))))
        idx = int(min(self.n_values - 1, math.floor(u * self.n_values)))
        return self.low + idx

    def round_trip_unit(self, u: np.ndarray) -> np.ndarray:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        if self.log:
            log_lo, log_hi = math.log(self.low), math.log(self.high)
            raw = np.exp(log_lo + u * (log_hi - log_lo))
            v = np.clip(np.round(raw), self.low, self.high)
            return np.clip((np.log(v) - log_lo) / (log_hi - log_lo), 0.0, 1.0)
        idx = np.minimum(self.n_values - 1, np.floor(u * self.n_values))
        return (idx + 0.5) / self.n_values

    def sample(self, rng: np.random.Generator) -> int:
        if self.log:
            return self.from_unit(rng.random())
        return int(rng.integers(self.low, self.high + 1))

    def contains(self, value: object) -> bool:
        try:
            v = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
        return v == int(v) and self.low <= v <= self.high

    def as_dict(self) -> dict[str, object]:
        return {
            "type": "int",
            "name": self.name,
            "low": self.low,
            "high": self.high,
            "log": self.log,
        }


class CategoricalParameter(Parameter):
    """An unordered finite choice, embedded by index.

    A single unit-cube axis is a crude embedding for categoricals but
    matches what Spearmint-era optimizers did for enum parameters.
    """

    is_discrete = True

    def __init__(self, name: str, choices: Sequence[object]) -> None:
        super().__init__(name)
        choices = list(choices)
        if len(choices) < 2:
            raise ValueError(f"{name}: need at least two choices")
        if len(set(map(repr, choices))) != len(choices):
            raise ValueError(f"{name}: choices must be distinct")
        self.choices = choices

    def to_unit(self, value: object) -> float:
        idx = self._index_of(value)
        return _clip_unit((idx + 0.5) / len(self.choices))

    def from_unit(self, u: float) -> object:
        u = _clip_unit(u)
        idx = int(min(len(self.choices) - 1, math.floor(u * len(self.choices))))
        return self.choices[idx]

    def round_trip_unit(self, u: np.ndarray) -> np.ndarray:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        n = len(self.choices)
        idx = np.minimum(n - 1, np.floor(u * n))
        return (idx + 0.5) / n

    def sample(self, rng: np.random.Generator) -> object:
        return self.choices[int(rng.integers(len(self.choices)))]

    def contains(self, value: object) -> bool:
        try:
            self._index_of(value)
            return True
        except ValueError:
            return False

    def _index_of(self, value: object) -> int:
        for i, choice in enumerate(self.choices):
            if choice == value:
                return i
        raise ValueError(f"{value!r} is not a valid choice for {self.name!r}")

    def as_dict(self) -> dict[str, object]:
        return {"type": "categorical", "name": self.name, "choices": self.choices}


def parameter_from_dict(data: Mapping[str, object]) -> Parameter:
    """Inverse of :meth:`Parameter.as_dict`."""
    kind = data["type"]
    if kind == "float":
        return FloatParameter(
            str(data["name"]),
            float(data["low"]),  # type: ignore[arg-type]
            float(data["high"]),  # type: ignore[arg-type]
            bool(data.get("log", False)),
        )
    if kind == "int":
        return IntParameter(
            str(data["name"]),
            int(data["low"]),  # type: ignore[arg-type]
            int(data["high"]),  # type: ignore[arg-type]
            bool(data.get("log", False)),
        )
    if kind == "categorical":
        return CategoricalParameter(str(data["name"]), list(data["choices"]))  # type: ignore[arg-type]
    raise ValueError(f"unknown parameter type {kind!r}")


class ParameterSpace:
    """An ordered collection of parameters defining the search space."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("parameter space must not be empty")
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise ValueError("parameter names must be unique")
        self._by_name = {p.name: p for p in self.parameters}

    @property
    def dim(self) -> int:
        return len(self.parameters)

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.parameters]

    def __len__(self) -> int:
        return len(self.parameters)

    def __getitem__(self, name: str) -> Parameter:
        return self._by_name[name]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, config: Mapping[str, object]) -> np.ndarray:
        """Map a config dict to a unit-cube point."""
        missing = [p.name for p in self.parameters if p.name not in config]
        if missing:
            raise KeyError(f"config missing parameters: {missing}")
        return np.array(
            [p.to_unit(config[p.name]) for p in self.parameters], dtype=float
        )

    def decode(self, x: np.ndarray) -> dict[str, object]:
        """Map a unit-cube point to a config dict."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {x.shape}")
        return {p.name: p.from_unit(float(u)) for p, u in zip(self.parameters, x)}

    def round_trip(self, x: np.ndarray) -> np.ndarray:
        """Snap a unit point onto the grid of representable configs."""
        return self.encode(self.decode(x))

    def round_trip_batch(self, X: np.ndarray) -> np.ndarray:
        """Snap a whole ``(n, dim)`` batch of unit points at once.

        Column-wise vectorized equivalent of calling :meth:`round_trip`
        per row — the acquisition optimizer snaps hundreds of candidate
        points per step, so this must not loop over rows in Python.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.dim:
            raise ValueError(f"expected shape (n, {self.dim}), got {X.shape}")
        out = np.empty_like(X)
        for d, p in enumerate(self.parameters):
            out[:, d] = p.round_trip_unit(X[:, d])
        return out

    def validate(self, config: Mapping[str, object]) -> None:
        for p in self.parameters:
            if p.name not in config:
                raise KeyError(f"config missing parameter {p.name!r}")
            if not p.contains(config[p.name]):
                raise ValueError(
                    f"value {config[p.name]!r} outside domain of {p.name!r}"
                )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> dict[str, object]:
        return {p.name: p.sample(rng) for p in self.parameters}

    def sample_unit(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` uniform unit-cube points snapped to representable configs."""
        raw = rng.random((n, self.dim))
        return self.round_trip_batch(raw)

    def latin_hypercube(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Latin-hypercube sample of ``n`` unit points (snapped to grid).

        Stratifies every axis into ``n`` bins with one sample each — the
        standard space-filling initial design for GP surrogates.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        result = np.empty((n, self.dim))
        for d in range(self.dim):
            perm = rng.permutation(n)
            result[:, d] = (perm + rng.random(n)) / n
        return self.round_trip_batch(result)

    def as_dict(self) -> dict[str, object]:
        return {"parameters": [p.as_dict() for p in self.parameters]}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ParameterSpace":
        params = [parameter_from_dict(d) for d in data["parameters"]]  # type: ignore[union-attr]
        return cls(params)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ParameterSpace(dim={self.dim}, names={self.names})"
