"""Baseline optimizers: parallel linear ascent and random search.

The paper's baseline (§V-A) is a *naive parallel-linear ascent* (pla):
set the same parallelism hint on every operator and raise it step by
step, stopping early "after measuring zero performance in three
consecutive runs".  Its informed variant (ipla) ascends a multiplier on
structural base weights instead.  Both are instances of
:class:`GridAscentOptimizer`; random search is included for ablations.
"""

from __future__ import annotations

import abc
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.parameters import ParameterSpace


class Optimizer(abc.ABC):
    """The ask/tell protocol every strategy implements.

    The core contract is single-point: :meth:`ask` proposes one
    configuration (idempotent until the matching :meth:`tell`),
    :meth:`tell` reports its measured value.  Two batch extensions let
    an evaluation executor keep several proposals in flight at once
    (see :mod:`repro.core.executor`):

    :meth:`ask_batch`
        Propose up to ``n`` configurations for concurrent evaluation.
        The default shim issues ``n`` plain :meth:`ask` calls (marking
        each via :meth:`tell_pending`), so a strategy that implements
        nothing new behaves exactly like ``n x ask()`` — for an
        idempotent single-point optimizer that means ``n`` copies of
        the same proposal, which a memoizing objective deduplicates.
        Strategies with naturally independent probes (grid schedules,
        random search) or pending-aware surrogates (the Bayesian
        optimizer's fantasies) override it to emit distinct points.

    :meth:`tell_pending`
        Mark a proposal as submitted-but-unmeasured.  The default is a
        no-op; pending-aware strategies use it to condition future
        proposals away from in-flight ones.  Every pending proposal
        must eventually be resolved by a matching :meth:`tell`.
    """

    @abc.abstractmethod
    def ask(self) -> dict[str, object]:
        """Propose the next configuration to measure."""

    @abc.abstractmethod
    def tell(self, config: Mapping[str, object], value: float) -> None:
        """Report the measured objective for a proposed configuration."""

    @property
    @abc.abstractmethod
    def done(self) -> bool:
        """True when the strategy has nothing more to propose."""

    @abc.abstractmethod
    def best(self) -> tuple[dict[str, object], float]:
        """Best (config, value) observed so far."""

    # ------------------------------------------------------------------
    # Batch extensions (default shims keep single-point strategies
    # working unchanged; see the class docstring).
    # ------------------------------------------------------------------
    def ask_batch(self, n: int) -> list[dict[str, object]]:
        """Propose up to ``n`` configurations for concurrent evaluation.

        May return fewer than ``n`` (or an empty list) when the
        strategy is exhausted mid-batch.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        batch: list[dict[str, object]] = []
        for _ in range(n):
            if self.done:
                break
            config = self.ask()
            self.tell_pending(config)
            batch.append(config)
        return batch

    def tell_pending(self, config: Mapping[str, object]) -> None:
        """Mark ``config`` as submitted for evaluation (default no-op)."""

    def tell_failure(self, config: Mapping[str, object], reason: str = "") -> None:
        """Report a failed evaluation of a proposed configuration.

        The default records it as a zero measurement — exactly how the
        paper's parallel linear ascent perceives a crashed deployment
        (its three-consecutive-zeros stop rule, §V-A).  Surrogate-based
        strategies override this to keep failures out of their model's
        target statistics (see ``BayesianOptimizer.tell_failure``).
        """
        self.tell(config, 0.0)


class GridAscentOptimizer(Optimizer):
    """Walk a fixed sequence of configurations in order.

    Implements the paper's early-stop rule: after ``stop_after_zeros``
    consecutive zero measurements the ascent gives up (a zero means the
    deployment failed — raising parallelism further cannot help).
    """

    def __init__(
        self,
        configs: Iterable[Mapping[str, object]],
        *,
        stop_after_zeros: int = 3,
    ) -> None:
        self.configs: list[dict[str, object]] = [dict(c) for c in configs]
        if not self.configs:
            raise ValueError("configs must be non-empty")
        if stop_after_zeros < 1:
            raise ValueError("stop_after_zeros must be >= 1")
        self.stop_after_zeros = stop_after_zeros
        self._cursor = 0
        #: Configurations handed out by :meth:`ask_batch` beyond the
        #: cursor, awaiting their :meth:`tell`.  A plain :meth:`ask`
        #: peeks without issuing, staying idempotent.
        self._issued = 0
        self._consecutive_zeros = 0
        self._stopped = False
        self.history: list[tuple[dict[str, object], float]] = []

    def ask(self) -> dict[str, object]:
        if self.done:
            raise RuntimeError("optimizer is exhausted")
        return dict(self.configs[self._cursor + self._issued])

    def ask_batch(self, n: int) -> list[dict[str, object]]:
        """The next ``n`` schedule entries — a grid's probes are fixed
        in advance, so they are naturally independent and can run
        concurrently.  Returns fewer when the schedule runs out."""
        if n < 1:
            raise ValueError("n must be >= 1")
        if self._stopped:
            return []
        start = self._cursor + self._issued
        batch = [dict(c) for c in self.configs[start : start + n]]
        self._issued += len(batch)
        return batch

    def tell(self, config: Mapping[str, object], value: float) -> None:
        self.history.append((dict(config), float(value)))
        self._cursor += 1
        if self._issued > 0:
            self._issued -= 1
        if value <= 0.0:
            self._consecutive_zeros += 1
            if self._consecutive_zeros >= self.stop_after_zeros:
                self._stopped = True
        else:
            self._consecutive_zeros = 0

    @property
    def done(self) -> bool:
        return self._stopped or self._cursor + self._issued >= len(self.configs)

    def best(self) -> tuple[dict[str, object], float]:
        if not self.history:
            raise RuntimeError("no observations yet")
        return max(self.history, key=lambda item: item[1])


class ParallelLinearAscent(GridAscentOptimizer):
    """The paper's pla/ipla baseline as a single-knob ascending grid.

    ``param_name`` is the knob the strategy raises — ``"uniform_hint"``
    for plain pla (the same hint on every operator) or ``"multiplier"``
    for the informed variant — and ``values`` the ascending schedule.
    """

    def __init__(
        self,
        param_name: str,
        values: Sequence[object],
        *,
        stop_after_zeros: int = 3,
        extra: Mapping[str, object] | None = None,
    ) -> None:
        if not values:
            raise ValueError("values must be non-empty")
        extra = dict(extra or {})
        configs = [{param_name: v, **extra} for v in values]
        super().__init__(configs, stop_after_zeros=stop_after_zeros)
        self.param_name = param_name


class RandomSearchOptimizer(Optimizer):
    """Uniform random sampling of a parameter space (ablation baseline)."""

    def __init__(self, space: ParameterSpace, seed: int | None = None) -> None:
        self.space = space
        self._rng = np.random.default_rng(seed)
        self.history: list[tuple[dict[str, object], float]] = []
        self._pending: dict[str, object] | None = None

    def ask(self) -> dict[str, object]:
        if self._pending is None:
            self._pending = self.space.sample(self._rng)
        return dict(self._pending)

    def ask_batch(self, n: int) -> list[dict[str, object]]:
        """``n`` fresh independent draws — random search has no state
        to condition on, so batching is free.  Draws are consumed from
        the seeded stream in submission order, making the batch
        deterministic regardless of evaluation completion order."""
        if n < 1:
            raise ValueError("n must be >= 1")
        self._pending = None
        return [self.space.sample(self._rng) for _ in range(n)]

    def tell(self, config: Mapping[str, object], value: float) -> None:
        self.history.append((dict(config), float(value)))
        self._pending = None

    @property
    def done(self) -> bool:
        return False

    def best(self) -> tuple[dict[str, object], float]:
        if not self.history:
            raise RuntimeError("no observations yet")
        return max(self.history, key=lambda item: item[1])
