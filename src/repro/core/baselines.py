"""Baseline optimizers: parallel linear ascent and random search.

The paper's baseline (§V-A) is a *naive parallel-linear ascent* (pla):
set the same parallelism hint on every operator and raise it step by
step, stopping early "after measuring zero performance in three
consecutive runs".  Its informed variant (ipla) ascends a multiplier on
structural base weights instead.  Both are instances of
:class:`GridAscentOptimizer`; random search is included for ablations.
"""

from __future__ import annotations

import abc
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.parameters import ParameterSpace


class Optimizer(abc.ABC):
    """The ask/tell protocol every strategy implements."""

    @abc.abstractmethod
    def ask(self) -> dict[str, object]:
        """Propose the next configuration to measure."""

    @abc.abstractmethod
    def tell(self, config: Mapping[str, object], value: float) -> None:
        """Report the measured objective for a proposed configuration."""

    @property
    @abc.abstractmethod
    def done(self) -> bool:
        """True when the strategy has nothing more to propose."""

    @abc.abstractmethod
    def best(self) -> tuple[dict[str, object], float]:
        """Best (config, value) observed so far."""


class GridAscentOptimizer(Optimizer):
    """Walk a fixed sequence of configurations in order.

    Implements the paper's early-stop rule: after ``stop_after_zeros``
    consecutive zero measurements the ascent gives up (a zero means the
    deployment failed — raising parallelism further cannot help).
    """

    def __init__(
        self,
        configs: Iterable[Mapping[str, object]],
        *,
        stop_after_zeros: int = 3,
    ) -> None:
        self.configs: list[dict[str, object]] = [dict(c) for c in configs]
        if not self.configs:
            raise ValueError("configs must be non-empty")
        if stop_after_zeros < 1:
            raise ValueError("stop_after_zeros must be >= 1")
        self.stop_after_zeros = stop_after_zeros
        self._cursor = 0
        self._consecutive_zeros = 0
        self._stopped = False
        self.history: list[tuple[dict[str, object], float]] = []

    def ask(self) -> dict[str, object]:
        if self.done:
            raise RuntimeError("optimizer is exhausted")
        return dict(self.configs[self._cursor])

    def tell(self, config: Mapping[str, object], value: float) -> None:
        self.history.append((dict(config), float(value)))
        self._cursor += 1
        if value <= 0.0:
            self._consecutive_zeros += 1
            if self._consecutive_zeros >= self.stop_after_zeros:
                self._stopped = True
        else:
            self._consecutive_zeros = 0

    @property
    def done(self) -> bool:
        return self._stopped or self._cursor >= len(self.configs)

    def best(self) -> tuple[dict[str, object], float]:
        if not self.history:
            raise RuntimeError("no observations yet")
        return max(self.history, key=lambda item: item[1])


class ParallelLinearAscent(GridAscentOptimizer):
    """The paper's pla/ipla baseline as a single-knob ascending grid.

    ``param_name`` is the knob the strategy raises — ``"uniform_hint"``
    for plain pla (the same hint on every operator) or ``"multiplier"``
    for the informed variant — and ``values`` the ascending schedule.
    """

    def __init__(
        self,
        param_name: str,
        values: Sequence[object],
        *,
        stop_after_zeros: int = 3,
        extra: Mapping[str, object] | None = None,
    ) -> None:
        if not values:
            raise ValueError("values must be non-empty")
        extra = dict(extra or {})
        configs = [{param_name: v, **extra} for v in values]
        super().__init__(configs, stop_after_zeros=stop_after_zeros)
        self.param_name = param_name


class RandomSearchOptimizer(Optimizer):
    """Uniform random sampling of a parameter space (ablation baseline)."""

    def __init__(self, space: ParameterSpace, seed: int | None = None) -> None:
        self.space = space
        self._rng = np.random.default_rng(seed)
        self.history: list[tuple[dict[str, object], float]] = []
        self._pending: dict[str, object] | None = None

    def ask(self) -> dict[str, object]:
        if self._pending is None:
            self._pending = self.space.sample(self._rng)
        return dict(self._pending)

    def tell(self, config: Mapping[str, object], value: float) -> None:
        self.history.append((dict(config), float(value)))
        self._pending = None

    @property
    def done(self) -> bool:
        return False

    def best(self) -> tuple[dict[str, object], float]:
        if not self.history:
            raise RuntimeError("no observations yet")
        return max(self.history, key=lambda item: item[1])
