"""Crash-safe tuning-run checkpoints (JSONL, atomic rename).

The paper leaned on Spearmint's pause/resume because cluster-scale
campaigns die mid-run (§III-C); this module gives :class:`~repro.core.
loop.TuningLoop` the same property.  After every ``tell`` the loop
rewrites its checkpoint file — observation history plus, when the
optimizer supports ``state_dict``, a full optimizer snapshot — via the
classic atomic-replace dance (write temp file in the same directory,
fsync, ``os.replace``), so a reader never sees a torn file: after a
``kill -9`` the checkpoint is exactly the state as of some completed
step (docs/ROBUSTNESS.md documents the format).

Checkpoint layout, one JSON record per line::

    {"type": "meta", "version": 1, "strategy": ..., "seed": ...,
     "max_steps": ..., "completed": N}
    {"type": "observation", ...Observation.as_dict()...}   # × N
    {"type": "optimizer_state", "state": {...}}            # optional

Resume semantics: completed observations are replayed into the result
verbatim; the optimizer is restored from its snapshot when one exists
(exact resume — same RNG stream, same GP state), else every completed
observation is re-told into a fresh optimizer (replay resume — exact
for deterministic replay-tolerant strategies like grid ascent).
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Protocol, Sequence

from repro.core.history import Observation

CHECKPOINT_VERSION = 1

#: Wall-clock fields of an observation record.  Excluded from
#: :func:`canonical_history` because no two executions of anything
#: measure identical durations; everything else — steps, configs,
#: values, failure diagnoses — must match bit-for-bit between an
#: uninterrupted run and a kill-and-resume one.
TIMING_FIELDS = ("suggest_seconds", "evaluate_seconds")


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` so readers see old or new, never torn.

    The temp file lives in the destination directory because
    ``os.replace`` is only atomic within one filesystem.  After the
    replace, the *directory* is fsynced too: the rename itself lives in
    directory metadata, and without flushing it a power cut can forget
    the replace even though the file data was synced.  Platforms where
    a directory cannot be opened for reading skip that step.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory's metadata (the rename)."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


@dataclass
class TuningCheckpoint:
    """One tuning run's recoverable state."""

    strategy: str = ""
    seed: int | None = None
    max_steps: int = 0
    observations: list[Observation] = field(default_factory=list)
    optimizer_state: dict[str, object] | None = None

    @property
    def completed(self) -> int:
        return len(self.observations)

    def records(self) -> list[dict[str, object]]:
        out: list[dict[str, object]] = [
            {
                "type": "meta",
                "version": CHECKPOINT_VERSION,
                "strategy": self.strategy,
                "seed": self.seed,
                "max_steps": self.max_steps,
                "completed": self.completed,
            }
        ]
        out.extend(
            {"type": "observation", **obs.as_dict()} for obs in self.observations
        )
        if self.optimizer_state is not None:
            out.append({"type": "optimizer_state", "state": self.optimizer_state})
        return out


def save_checkpoint(path: str | Path, checkpoint: TuningCheckpoint) -> None:
    """Atomically (re)write the whole checkpoint file."""
    lines = [
        json.dumps(record, default=_json_default)
        for record in checkpoint.records()
    ]
    atomic_write_text(path, "\n".join(lines) + "\n")


def _warn_torn(path: Path, line_no: int, kept: int, why: str) -> None:
    """Name the exact record that was rejected, not just that one was.

    A crashed producer legitimately leaves a torn tail, but an operator
    debugging a resume needs to know *where* parsing stopped — which
    file, which line, and how much trusted progress survives before it.
    """
    warnings.warn(
        f"checkpoint {path}: line {line_no} is {why}; keeping the "
        f"{kept} observation(s) before it and discarding the rest",
        RuntimeWarning,
        stacklevel=3,
    )


def load_checkpoint(path: str | Path) -> TuningCheckpoint | None:
    """Read a checkpoint back; None when absent or unreadable.

    Atomic writes make torn files impossible in normal operation, but a
    copied or hand-edited file may still be malformed — parsing stops
    at the first bad line and keeps everything before it, which is the
    most progress that can be trusted.  The rejected line is named
    (path plus 1-based line number) in a :class:`RuntimeWarning` so a
    resume that silently dropped records is diagnosable after the fact.
    """
    path = Path(path)
    if not path.is_file():
        return None
    checkpoint = TuningCheckpoint()
    saw_meta = False
    try:
        text = path.read_text()
    except OSError:
        return None
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            _warn_torn(
                path, line_no, checkpoint.completed, "torn or not valid JSON"
            )
            break
        kind = record.get("type")
        if kind == "meta":
            version = record.get("version")
            if version != CHECKPOINT_VERSION:
                warnings.warn(
                    f"checkpoint {path}: line {line_no} has version "
                    f"{version!r} but this build reads version "
                    f"{CHECKPOINT_VERSION}; ignoring the checkpoint "
                    "(the run will start fresh)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return None
            saw_meta = True
            checkpoint.strategy = str(record.get("strategy", ""))
            seed = record.get("seed")
            checkpoint.seed = None if seed is None else int(seed)
            checkpoint.max_steps = int(record.get("max_steps", 0))
        elif kind == "observation":
            try:
                checkpoint.observations.append(Observation.from_dict(record))
            except (KeyError, TypeError, ValueError) as exc:
                _warn_torn(
                    path,
                    line_no,
                    checkpoint.completed,
                    f"a malformed observation record ({exc})",
                )
                break
        elif kind == "optimizer_state":
            state = record.get("state")
            if isinstance(state, Mapping):
                checkpoint.optimizer_state = dict(state)
    if not saw_meta:
        return None
    return checkpoint


class CheckpointSlot(Protocol):
    """Where one tuning run's checkpoint lives.

    The slot is the seam between :class:`~repro.core.loop.TuningLoop`
    and persistence: the loop saves and loads whole
    :class:`TuningCheckpoint` values and never learns whether they land
    in a standalone JSONL file (:class:`FileCheckpointSlot`, the
    ``checkpoint_path=`` compatibility shim) or in a study store
    backend (:class:`repro.store.base.StoreCheckpointSlot`).
    """

    def load(self) -> TuningCheckpoint | None:
        """The last saved checkpoint, or None when none exists."""
        ...  # pragma: no cover - protocol

    def save(self, checkpoint: TuningCheckpoint) -> None:
        """Atomically replace the stored checkpoint."""
        ...  # pragma: no cover - protocol

    def describe(self) -> str:
        """Human-readable location for events and error messages."""
        ...  # pragma: no cover - protocol


class FileCheckpointSlot:
    """One standalone JSONL checkpoint file (the pre-store format)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def load(self) -> TuningCheckpoint | None:
        return load_checkpoint(self.path)

    def save(self, checkpoint: TuningCheckpoint) -> None:
        save_checkpoint(self.path, checkpoint)

    def describe(self) -> str:
        return str(self.path)


def canonical_history(
    observations: Iterable[Observation | Mapping[str, object]],
) -> bytes:
    """Byte-exact encoding of a history, wall-clock timings excluded.

    This is the comparison key of the resume acceptance criterion: a
    killed-and-resumed campaign must reproduce the uninterrupted run's
    observations *byte-identically* — same steps, configs, values, and
    failure diagnoses.  Timing fields are measurements of the host, not
    of the optimization, and are stripped.
    """
    canon: list[dict[str, object]] = []
    for obs in observations:
        data = obs.as_dict() if isinstance(obs, Observation) else dict(obs)
        data.pop("type", None)
        for fieldname in TIMING_FIELDS:
            data.pop(fieldname, None)
        canon.append(data)
    return json.dumps(canon, sort_keys=True, default=_json_default).encode()


def histories_match(
    a: Sequence[Observation | Mapping[str, object]],
    b: Sequence[Observation | Mapping[str, object]],
) -> bool:
    return canonical_history(a) == canonical_history(b)


def _json_default(obj: object) -> object:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dep here
        raise TypeError(f"not JSON serializable: {type(obj)!r}") from None
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj)!r}")
