"""Pluggable evaluation executors: run objective evaluations in flight.

The tuning loop (:class:`~repro.core.loop.TuningLoop`) is an ask /
evaluate / tell cycle; this module decouples *where* the evaluate phase
runs from the loop's control flow.  An executor is bound to one
objective at construction and exposes a submit/collect interface:

``submit(eval_id, config, seed)``
    Queue one evaluation.  ``seed``, when given, selects an independent
    observation-noise stream for exactly this evaluation (derive it
    with :func:`repro.core.seeding.derive_seed` from the run seed and
    the evaluation index), which makes a concurrent run's observations
    a *set-equal, bitwise-identical* replay of the serial run — values
    depend only on (config, seed), never on completion order.

``wait_one()``
    Block until some submitted evaluation finishes and return its
    :class:`EvaluationOutcome`.  Completion order is unspecified for
    the concurrent executors.

Three interchangeable backends:

:class:`SerialExecutor`
    FIFO, runs each evaluation inline inside ``wait_one`` on the
    calling thread.  The zero-dependency default — a loop using it is
    step-for-step identical to the classic serial loop.

:class:`ThreadPoolExecutor`
    Worker threads.  Right whenever evaluations spend wall-clock time
    off the GIL — real cluster runs, simulated measurement windows,
    NumPy-heavy engines — which is precisely the paper's regime of
    multi-minute cluster evaluations.

:class:`ProcessPoolExecutor`
    Worker processes; the objective is pickled once into each worker
    (observability is disabled there — worker metrics come home inside
    the returned outcomes, see docs/OBSERVABILITY.md).  Right for
    CPU-bound evaluation engines such as the discrete-event simulator.

Objectives are called through one duck-typed contract: objects with a
``measure(params, seed=...)`` method (e.g. :class:`~repro.storm.
objective.StormObjective`) return their full measurement record, which
the loop uses for failure diagnosis; plain callables are invoked as
``objective(config)`` and yield only the scalar.
"""

from __future__ import annotations

import abc
import inspect
import pickle
import threading
import time
from collections import deque
from concurrent import futures as _futures
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.obs import runtime as obs_runtime

Objective = Callable[[Mapping[str, object]], float]

#: Executor kinds accepted by :func:`make_executor`.
EXECUTOR_KINDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class EvaluationOutcome:
    """One finished evaluation, as returned by ``wait_one``."""

    eval_id: int
    config: dict[str, object]
    value: float
    #: The objective's full measurement record (a ``MeasuredRun`` for
    #: Storm objectives), or None for plain-callable objectives.
    run: object | None
    #: In-worker evaluation wall time.
    seconds: float
    #: Submit-to-collect wall time on the caller's clock (includes
    #: queueing); the queue wait is approximately ``turnaround_seconds
    #: - seconds``.
    turnaround_seconds: float
    seed: int | None = None


@dataclass
class _Ticket:
    """Book-keeping for one submitted evaluation."""

    eval_id: int
    config: dict[str, object]
    seed: int | None
    submitted_at: float = field(default_factory=time.perf_counter)


def _accepts_seed(fn: object) -> bool:
    try:
        return "seed" in inspect.signature(fn).parameters  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return False


def call_objective(
    objective: Objective, config: Mapping[str, object], seed: int | None
) -> tuple[float, object | None, float]:
    """Evaluate ``config``, returning (value, measurement record, seconds).

    Prefers ``objective.measure(config, seed=...)`` when available so
    the full measurement record (failure reason, bottleneck detail)
    travels back with the scalar; falls back to plain ``__call__`` —
    in which case ``seed`` is ignored, because a bare callable offers
    nowhere to thread it.
    """
    t0 = time.perf_counter()
    measure = getattr(objective, "measure", None)
    if callable(measure):
        if seed is not None and _accepts_seed(measure):
            run = measure(config, seed=seed)
        else:
            run = measure(config)
        value = float(run.throughput_tps)
    else:
        run = None
        value = float(objective(config))
    return value, run, time.perf_counter() - t0


def supports_batch_measurement(objective: object) -> bool:
    """Whether ``objective`` advertises a vectorized ``measure_batch``.

    The executor fast paths only engage when the objective both has the
    method *and* declares it a true fast path
    (``supports_batch_fast_path``) — a DES objective could implement
    ``measure_batch`` as a loop, where batching would only serialize
    work a pool should overlap.
    """
    return bool(getattr(objective, "supports_batch_fast_path", False)) and callable(
        getattr(objective, "measure_batch", None)
    )


def _batch_outcomes(
    tickets: Sequence[_Ticket], runs: Sequence[object], seconds: float
) -> list[EvaluationOutcome]:
    """Zip a batch's runs back onto their tickets.

    The batch's wall time is amortized evenly across its outcomes so
    aggregate ``seconds`` telemetry stays comparable with the scalar
    path.
    """
    per_eval = seconds / len(tickets)
    now = time.perf_counter()
    return [
        EvaluationOutcome(
            eval_id=ticket.eval_id,
            config=ticket.config,
            value=float(run.throughput_tps),  # type: ignore[attr-defined]
            run=run,
            seconds=per_eval,
            turnaround_seconds=now - ticket.submitted_at,
            seed=ticket.seed,
        )
        for ticket, run in zip(tickets, runs)
    ]


class EvaluationExecutor(abc.ABC):
    """Submit/collect interface over one objective.

    Context-manager use closes the backend (and cancels anything still
    queued) on exit.
    """

    #: Backend name ("serial" / "thread" / "process"), for telemetry.
    kind: str = "serial"

    def __init__(self, objective: Objective, *, max_workers: int = 1) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.objective = objective
        self.max_workers = max_workers

    @abc.abstractmethod
    def submit(
        self,
        eval_id: int,
        config: Mapping[str, object],
        seed: int | None = None,
    ) -> None:
        """Queue one evaluation of ``config``."""

    @abc.abstractmethod
    def wait_one(self) -> EvaluationOutcome:
        """Block until some submitted evaluation finishes; return it.

        Raises ``RuntimeError`` if nothing is pending; re-raises the
        objective's exception if the evaluation failed with one.  A
        re-raised worker exception carries its submission on a
        ``_repro_ticket`` attribute (a :class:`_Ticket`) so wrappers
        like :class:`~repro.core.resilience.ResilientExecutor` can tell
        *which* evaluation died.
        """

    def try_wait_one(self, timeout: float | None = None) -> EvaluationOutcome | None:
        """``wait_one`` with a deadline; None when nothing finished.

        The default implementation blocks: inline backends (serial)
        cannot observe an evaluation mid-flight, so their timeouts are
        necessarily post-hoc — the resilience layer compares the
        outcome's in-worker seconds against the budget after the fact.
        """
        return self.wait_one()

    def abandon(self, eval_id: int) -> bool:
        """Detach a submitted evaluation; its result is discarded.

        Returns whether the evaluation was found and detached.  The
        backend reclaims the worker if it can (a process backend kills
        and respawns a hung worker; a thread backend can only orphan
        the running thread).
        """
        return False

    @property
    @abc.abstractmethod
    def n_pending(self) -> int:
        """Evaluations submitted but not yet collected."""

    def cancel_pending(self) -> int:
        """Cancel not-yet-started evaluations; returns how many."""
        return 0

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def __enter__(self) -> "EvaluationExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cancel_pending()
        self.close()


class SerialExecutor(EvaluationExecutor):
    """FIFO inline execution on the calling thread.

    ``submit`` only queues; the evaluation runs inside ``wait_one``, so
    a loop driving this executor is operation-for-operation identical
    to the classic serial ask/evaluate/tell cycle (same objective call
    order, same shared-RNG draw order, same tracer span nesting).

    **Batch fast path** — when the objective advertises a vectorized
    ``measure_batch`` (see :func:`supports_batch_measurement`) and more
    than one evaluation is queued, ``wait_one`` drains the whole queue
    through a single batch call and serves the outcomes FIFO.  Values
    are bit-identical to the scalar path (the batch engine's
    equivalence contract), so this is purely a throughput win for
    batch-emitting optimizers (grid/random/pla ``ask_batch``).  If a
    batch call raises, the queue is restored, batching is disabled for
    this executor, and evaluation falls back to the scalar path so the
    exception is re-raised with its precise ticket attribution.
    """

    kind = "serial"

    def __init__(self, objective: Objective, *, max_workers: int = 1) -> None:
        super().__init__(objective, max_workers=1)
        self._queue: list[_Ticket] = []
        self._completed: deque[EvaluationOutcome] = deque()
        self._batch_disabled = False

    def submit(
        self,
        eval_id: int,
        config: Mapping[str, object],
        seed: int | None = None,
    ) -> None:
        self._queue.append(_Ticket(eval_id, dict(config), seed))

    def wait_one(self) -> EvaluationOutcome:
        if self._completed:
            return self._completed.popleft()
        if not self._queue:
            raise RuntimeError("no pending evaluations")
        if (
            len(self._queue) > 1
            and not self._batch_disabled
            and supports_batch_measurement(self.objective)
        ):
            tickets = list(self._queue)
            t0 = time.perf_counter()
            try:
                runs = self.objective.measure_batch(  # type: ignore[attr-defined]
                    [t.config for t in tickets], seeds=[t.seed for t in tickets]
                )
            except Exception:
                # Replay serially below for exact ticket attribution.
                self._batch_disabled = True
            else:
                self._queue.clear()
                self._completed.extend(
                    _batch_outcomes(tickets, runs, time.perf_counter() - t0)
                )
                return self._completed.popleft()
        ticket = self._queue.pop(0)
        try:
            value, run, seconds = call_objective(
                self.objective, ticket.config, ticket.seed
            )
        except Exception as exc:
            try:
                exc._repro_ticket = ticket  # let wrappers identify the victim
            except AttributeError:  # pragma: no cover - exotic exceptions
                pass
            raise
        return EvaluationOutcome(
            eval_id=ticket.eval_id,
            config=ticket.config,
            value=value,
            run=run,
            seconds=seconds,
            turnaround_seconds=time.perf_counter() - ticket.submitted_at,
            seed=ticket.seed,
        )

    @property
    def n_pending(self) -> int:
        return len(self._queue) + len(self._completed)

    def abandon(self, eval_id: int) -> bool:
        for i, ticket in enumerate(self._queue):
            if ticket.eval_id == eval_id:
                del self._queue[i]
                return True
        for i, outcome in enumerate(self._completed):
            if outcome.eval_id == eval_id:
                del self._completed[i]
                return True
        return False

    def cancel_pending(self) -> int:
        cancelled = len(self._queue)
        self._queue.clear()
        return cancelled


class _PoolExecutor(EvaluationExecutor):
    """Shared future-juggling for the thread and process backends."""

    def __init__(self, objective: Objective, *, max_workers: int = 4) -> None:
        super().__init__(objective, max_workers=max_workers)
        self._pool = self._make_pool(max_workers)
        self._tickets: dict[_futures.Future, _Ticket] = {}

    @abc.abstractmethod
    def _make_pool(self, max_workers: int) -> _futures.Executor: ...

    @abc.abstractmethod
    def _submit_to_pool(
        self, config: Mapping[str, object], seed: int | None
    ) -> _futures.Future: ...

    def submit(
        self,
        eval_id: int,
        config: Mapping[str, object],
        seed: int | None = None,
    ) -> None:
        config = dict(config)
        future = self._submit_to_pool(config, seed)
        self._tickets[future] = _Ticket(eval_id, config, seed)

    def wait_one(self) -> EvaluationOutcome:
        outcome = self.try_wait_one(None)
        assert outcome is not None  # timeout=None blocks until done
        return outcome

    def try_wait_one(self, timeout: float | None = None) -> EvaluationOutcome | None:
        if not self._tickets:
            raise RuntimeError("no pending evaluations")
        done, _ = _futures.wait(
            self._tickets, timeout=timeout, return_when=_futures.FIRST_COMPLETED
        )
        if not done:
            return None
        # Among simultaneously-finished futures, collect the earliest
        # submission — a stable choice that keeps replay drift small.
        future = min(done, key=lambda f: self._tickets[f].eval_id)
        ticket = self._tickets.pop(future)
        try:
            value, run, seconds = future.result()  # re-raises worker errors
        except Exception as exc:
            try:
                exc._repro_ticket = ticket  # let wrappers identify the victim
            except AttributeError:  # pragma: no cover - exotic exceptions
                pass
            raise
        return EvaluationOutcome(
            eval_id=ticket.eval_id,
            config=ticket.config,
            value=value,
            run=run,
            seconds=seconds,
            turnaround_seconds=time.perf_counter() - ticket.submitted_at,
            seed=ticket.seed,
        )

    @property
    def n_pending(self) -> int:
        return len(self._tickets)

    def abandon(self, eval_id: int) -> bool:
        """Detach one evaluation; cancel it if it has not started.

        A running evaluation cannot be interrupted at this layer: its
        ticket is dropped so the result (whenever it arrives) is
        discarded.  The process backend overrides this to also reclaim
        the hung worker.
        """
        for future, ticket in list(self._tickets.items()):
            if ticket.eval_id == eval_id:
                future.cancel()
                del self._tickets[future]
                return True
        return False

    def cancel_pending(self) -> int:
        cancelled = 0
        for future in list(self._tickets):
            if future.cancel():
                del self._tickets[future]
                cancelled += 1
        return cancelled

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


def _evaluate_task(
    objective: Objective, config: dict[str, object], seed: int | None
) -> tuple[float, object | None, float]:
    """Thread-pool task body (module level for symmetry and testing)."""
    return call_objective(objective, config, seed)


def _evaluate_batch_task(
    objective: Objective,
    configs: list[dict[str, object]],
    seeds: list[int | None],
) -> tuple[list[object], float]:
    """Thread-pool task body for one homogeneous analytic batch."""
    t0 = time.perf_counter()
    runs = objective.measure_batch(configs, seeds=seeds)  # type: ignore[attr-defined]
    return runs, time.perf_counter() - t0


class ThreadPoolExecutor(_PoolExecutor):
    """Evaluations on worker threads sharing the objective object.

    The objective must be concurrency-safe under threading (Storm
    objectives lock their memo cache and counters).  Worker threads
    share the process-wide observability context, so per-evaluation
    spans from inside the engines may interleave in the trace; the
    loop-level span tree stays correct because the loop itself always
    runs on one thread (see docs/OBSERVABILITY.md).

    **Batch fast path** — for objectives advertising a vectorized
    ``measure_batch``, submissions are buffered instead of dispatched
    one future per evaluation; the first collect flushes the buffer as
    a *single* pool task that evaluates the whole batch in one
    vectorized pass.  With per-evaluation seeds the values are a pure
    function of (config, seed), so outcomes are bit-identical to the
    one-future-per-eval path — there are just N-1 fewer task hops.  A
    failed batch disables the fast path and resubmits its tickets as
    singles, preserving per-ticket exception attribution.
    """

    kind = "thread"

    def __init__(self, objective: Objective, *, max_workers: int = 4) -> None:
        super().__init__(objective, max_workers=max_workers)
        self._buffer: list[_Ticket] = []
        self._ready: deque[EvaluationOutcome] = deque()
        self._batch_tickets: dict[_futures.Future, list[_Ticket]] = {}
        self._abandoned: set[int] = set()
        self._batch_disabled = False

    def _make_pool(self, max_workers: int) -> _futures.Executor:
        return _futures.ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-eval"
        )

    def _submit_to_pool(
        self, config: Mapping[str, object], seed: int | None
    ) -> _futures.Future:
        return self._pool.submit(_evaluate_task, self.objective, dict(config), seed)

    def submit(
        self,
        eval_id: int,
        config: Mapping[str, object],
        seed: int | None = None,
    ) -> None:
        if not self._batch_disabled and supports_batch_measurement(self.objective):
            self._buffer.append(_Ticket(eval_id, dict(config), seed))
        else:
            super().submit(eval_id, config, seed)

    def _flush_buffer(self) -> None:
        if not self._buffer:
            return
        tickets, self._buffer = self._buffer, []
        if len(tickets) == 1:
            ticket = tickets[0]
            future = self._submit_to_pool(ticket.config, ticket.seed)
            self._tickets[future] = ticket
            return
        future = self._pool.submit(
            _evaluate_batch_task,
            self.objective,
            [t.config for t in tickets],
            [t.seed for t in tickets],
        )
        self._batch_tickets[future] = tickets

    def _collect_batch(self, future: _futures.Future) -> None:
        tickets = self._batch_tickets.pop(future)
        try:
            runs, seconds = future.result()
        except Exception:
            # Disable batching and replay the batch as singles so the
            # failing evaluation re-raises with its own ticket attached.
            self._batch_disabled = True
            for ticket in tickets:
                new_future = self._submit_to_pool(ticket.config, ticket.seed)
                self._tickets[new_future] = ticket
            return
        for outcome in _batch_outcomes(tickets, runs, seconds):
            if outcome.eval_id in self._abandoned:
                self._abandoned.discard(outcome.eval_id)
                continue
            self._ready.append(outcome)

    def try_wait_one(self, timeout: float | None = None) -> EvaluationOutcome | None:
        if self._ready:
            return self._ready.popleft()
        self._flush_buffer()
        if not self._tickets and not self._batch_tickets:
            raise RuntimeError("no pending evaluations")
        while True:
            pending = list(self._tickets) + list(self._batch_tickets)
            done, _ = _futures.wait(
                pending, timeout=timeout, return_when=_futures.FIRST_COMPLETED
            )
            if not done:
                return None
            batch_done = [f for f in done if f in self._batch_tickets]
            for future in batch_done:
                self._collect_batch(future)
            if self._ready:
                return self._ready.popleft()
            singles = [f for f in done if f in self._tickets]
            if singles:
                return self._collect_single(
                    min(singles, key=lambda f: self._tickets[f].eval_id)
                )
            if not self._tickets and not self._batch_tickets:
                raise RuntimeError("no pending evaluations")
            # A batch completed but every outcome was abandoned (or it
            # failed and was resubmitted as singles) — wait again.

    def _collect_single(self, future: _futures.Future) -> EvaluationOutcome:
        ticket = self._tickets.pop(future)
        try:
            value, run, seconds = future.result()  # re-raises worker errors
        except Exception as exc:
            try:
                exc._repro_ticket = ticket  # let wrappers identify the victim
            except AttributeError:  # pragma: no cover - exotic exceptions
                pass
            raise
        return EvaluationOutcome(
            eval_id=ticket.eval_id,
            config=ticket.config,
            value=value,
            run=run,
            seconds=seconds,
            turnaround_seconds=time.perf_counter() - ticket.submitted_at,
            seed=ticket.seed,
        )

    @property
    def n_pending(self) -> int:
        in_batches = sum(len(t) for t in self._batch_tickets.values())
        return (
            len(self._tickets)
            + len(self._buffer)
            + in_batches
            + len(self._ready)
        )

    def abandon(self, eval_id: int) -> bool:
        for i, ticket in enumerate(self._buffer):
            if ticket.eval_id == eval_id:
                del self._buffer[i]
                return True
        for i, outcome in enumerate(self._ready):
            if outcome.eval_id == eval_id:
                del self._ready[i]
                return True
        for tickets in self._batch_tickets.values():
            for ticket in tickets:
                if ticket.eval_id == eval_id:
                    # The batch cannot be interrupted mid-flight; its
                    # outcome for this id is discarded on arrival.
                    self._abandoned.add(eval_id)
                    return True
        return super().abandon(eval_id)

    def cancel_pending(self) -> int:
        cancelled = len(self._buffer)
        self._buffer.clear()
        for future in list(self._batch_tickets):
            if future.cancel():
                cancelled += len(self._batch_tickets.pop(future))
        return cancelled + super().cancel_pending()


#: Per-process objective installed by the process-pool initializer.
_WORKER_OBJECTIVE: Objective | None = None


def _process_worker_init(objective_bytes: bytes) -> None:
    """Unpickle the objective once per worker and disable obs there.

    Under the fork start method a worker would inherit the parent's
    live observability context — including any JSONL sink file handle,
    whose shared offset makes concurrent writes interleave.  Workers
    run with obs disabled and report timings home through their
    :class:`EvaluationOutcome`.
    """
    global _WORKER_OBJECTIVE
    from repro.obs import runtime as obs_runtime

    obs_runtime.deactivate()
    _WORKER_OBJECTIVE = pickle.loads(objective_bytes)


def _process_evaluate(
    config: dict[str, object], seed: int | None
) -> tuple[float, object | None, float]:
    assert _WORKER_OBJECTIVE is not None, "worker initializer did not run"
    return call_objective(_WORKER_OBJECTIVE, config, seed)


class ProcessPoolExecutor(_PoolExecutor):
    """Evaluations in worker processes (objective pickled once each).

    Each worker holds its own copy of the objective, so per-objective
    state (memo cache, evaluation counters) is per-worker and does not
    aggregate back — values and measurement records do.
    """

    kind = "process"

    def _make_pool(self, max_workers: int) -> _futures.Executor:
        return _futures.ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_process_worker_init,
            initargs=(pickle.dumps(self.objective),),
        )

    def _submit_to_pool(
        self, config: Mapping[str, object], seed: int | None
    ) -> _futures.Future:
        return self._pool.submit(_process_evaluate, dict(config), seed)

    def abandon(self, eval_id: int) -> bool:
        """Detach one evaluation, killing its worker if it is running.

        A hung worker process holds a pool slot forever; the only way
        to reclaim it is to kill the worker.  ``ProcessPoolExecutor``
        offers no per-worker surgery, so the whole pool is torn down
        (already-finished results are kept — they survive shutdown) and
        rebuilt, with every other in-flight evaluation resubmitted to
        the fresh pool under its original ticket.
        """
        target = None
        for future, ticket in self._tickets.items():
            if ticket.eval_id == eval_id:
                target = future
                break
        if target is None:
            return False
        del self._tickets[target]
        if target.cancel() or target.done():
            return True  # never started, or finished while we looked
        self._kill_and_respawn()
        return True

    def _kill_and_respawn(self) -> None:
        resubmit: list[_Ticket] = []
        for future, ticket in list(self._tickets.items()):
            if future.done():
                continue  # results of finished futures survive shutdown
            del self._tickets[future]
            resubmit.append(ticket)
        processes = getattr(self._pool, "_processes", None) or {}
        for proc in list(processes.values()):
            proc.kill()
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = self._make_pool(self.max_workers)
        # Original tickets (ids, seeds, submit times) ride along, so a
        # respawn is invisible to the caller beyond the added latency.
        for ticket in resubmit:
            future = self._submit_to_pool(ticket.config, ticket.seed)
            self._tickets[future] = ticket


# ----------------------------------------------------------------------
# Cross-cell batch broker
# ----------------------------------------------------------------------
class CrossCellBroker:
    """Fuse pending evaluations from many concurrent tuning loops.

    A campaign runs one tuning loop per (topology, condition) cell; each
    loop's evaluations are tiny analytic passes, so per-cell batching
    (the :class:`SerialExecutor` fast path) still pays one NumPy
    dispatch per cell per round.  The broker hands every cell a
    :class:`BrokerExecutor`; submissions queue per cell, and when every
    cell with queued work is blocked in ``wait_one`` (or a waiter's
    linger expires), the broker evaluates *all* queued rows in one
    packed dispatch (:meth:`repro.storm.packed.PackedBatchModel.
    evaluate_cells`) and routes each run back to its submitting cell
    with exact ticket attribution.

    Correctness does not depend on how rows co-batch: packed mechanics
    are bit-identical to each cell's own engine, and faults/noise are
    replayed per evaluation from (config, seed) inside the cell's own
    ``measure_batch`` — so any flush partitioning yields the same
    values.  Drive broker-backed loops with per-evaluation seeds (the
    runner does this automatically whenever an executor is present);
    unseeded noisy objectives would tie draws to flush order.

    Cells whose objective is not packable (no analytic engine) still
    work: their rows are served through their own ``measure_batch`` or
    serial calls, just without the fused mechanics pass.  If a cell's
    batch call fails, that cell's tickets are replayed serially so the
    failing submission is re-raised with its precise ``_repro_ticket``.
    """

    def __init__(
        self, *, engine: str | None = None, linger_s: float = 0.005
    ) -> None:
        self._cond = threading.Condition()
        self._members: list[BrokerExecutor] = []
        self._pack_cache: dict[int, object] = {}
        self._model: object | None = None
        self._stale = True
        self._engine = engine
        self._linger_s = linger_s

    # -- membership ----------------------------------------------------
    def executor(
        self, objective: Objective, *, max_workers: int = 1
    ) -> "BrokerExecutor":
        """Register a cell and return its executor (close() deregisters)."""
        member = BrokerExecutor(self, objective, max_workers=max_workers)
        with self._cond:
            self._members.append(member)
            self._stale = True
            self._cond.notify_all()
        return member

    def _deregister(self, member: "BrokerExecutor") -> None:
        with self._cond:
            if member in self._members:
                self._members.remove(member)
                self._pack_cache.pop(id(member.objective), None)
                self._stale = True
            self._cond.notify_all()

    @staticmethod
    def _packable(objective: object) -> bool:
        if not supports_batch_measurement(objective):
            return False
        engine = getattr(objective, "engine", None)
        if engine is None or not callable(
            getattr(engine, "evaluate_batch", None)
        ):
            return False
        return all(
            hasattr(engine, attr)
            for attr in ("topology", "cluster", "calibration", "schedule")
        )

    def _ensure_model_locked(self) -> None:
        if not self._stale:
            return
        from repro.storm.packed import CellPack, PackedBatchModel, PackedTopologySet

        packs = []
        for member in self._members:
            member._cell_index = None
            objective = member.objective
            if not self._packable(objective):
                continue
            pack = self._pack_cache.get(id(objective))
            if pack is None:
                engine = objective.engine  # type: ignore[attr-defined]
                pack = CellPack(
                    engine.topology,
                    engine.cluster,
                    engine.calibration,
                    engine.schedule,
                )
                self._pack_cache[id(objective)] = pack
            member._cell_index = len(packs)
            packs.append(pack)
        if packs:
            self._model = PackedBatchModel(
                PackedTopologySet(packs), engine=self._engine
            )
        else:
            self._model = None
        self._stale = False

    # -- wait / flush protocol -----------------------------------------
    def _wait_for(
        self, member: "BrokerExecutor", timeout: float | None = None
    ) -> EvaluationOutcome | None:
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        linger_until: float | None = None
        with self._cond:
            while True:
                if member._errors:
                    raise member._errors.popleft()
                if member._ready:
                    return member._ready.popleft()
                if not member._queue:
                    raise RuntimeError("no pending evaluations")
                member._waiting = True
                try:
                    now = time.monotonic()
                    if linger_until is None:
                        linger_until = now + self._linger_s
                    if self._should_flush_locked() or now >= linger_until:
                        self._flush_locked()
                        continue
                    if deadline is not None and now >= deadline:
                        return None
                    wait_s = linger_until - now
                    if deadline is not None:
                        wait_s = min(wait_s, deadline - now)
                    self._cond.wait(min(wait_s, 0.05))
                finally:
                    member._waiting = False

    def _should_flush_locked(self) -> bool:
        """Flush once every cell with queued work is blocked waiting."""
        any_queued = False
        for member in self._members:
            if member._queue:
                any_queued = True
                if not member._waiting:
                    return False
        return any_queued

    def _flush_locked(self) -> None:
        batches = [(m, list(m._queue)) for m in self._members if m._queue]
        for member, _ in batches:
            member._queue.clear()
        if not batches:
            return
        self._ensure_model_locked()

        # Fused packed mechanics for every packable row, one dispatch.
        mechanics: dict[int, list[object]] = {}
        packed_rows: list[tuple["BrokerExecutor", list[_Ticket], list[object]]] = []
        if self._model is not None:
            for member, tickets in batches:
                if member._cell_index is None:
                    continue
                try:
                    configs = [
                        member.objective.codec.decode(t.config)  # type: ignore[attr-defined]
                        for t in tickets
                    ]
                except Exception:
                    continue  # measure_batch will re-raise with attribution
                packed_rows.append((member, tickets, configs))
        if packed_rows:
            cell_indices: list[int] = []
            configs_flat: list[object] = []
            times: list[float] = []
            for member, tickets, configs in packed_rows:
                assert member._cell_index is not None
                cell_indices.extend([member._cell_index] * len(configs))
                configs_flat.extend(configs)
                times.extend(
                    [float(getattr(member.objective, "workload_time_s", 0.0))]
                    * len(configs)
                )
            try:
                evaluation = self._model.evaluate_cells(  # type: ignore[attr-defined]
                    cell_indices, configs_flat, workload_times_s=times
                )
                runs = evaluation.runs()
            except Exception:
                runs = None  # degrade: per-cell measure_batch recomputes
            if runs is not None:
                offset = 0
                for member, tickets, configs in packed_rows:
                    mechanics[id(member)] = runs[offset : offset + len(configs)]
                    offset += len(configs)

        ctx = obs_runtime.current()
        ctx.metrics.counter("dispatch.flushes").inc()
        ctx.metrics.histogram("dispatch.rows").record(
            float(sum(len(t) for _, t in batches))
        )
        ctx.metrics.histogram("dispatch.cells").record(float(len(batches)))
        for member, tickets in batches:
            self._serve_member(member, tickets, mechanics.get(id(member)))
        self._cond.notify_all()

    def _serve_member(
        self,
        member: "BrokerExecutor",
        tickets: list[_Ticket],
        mechanics_runs: list[object] | None,
    ) -> None:
        objective = member.objective
        if supports_batch_measurement(objective):
            t0 = time.perf_counter()
            try:
                kwargs: dict[str, object] = {
                    "seeds": [t.seed for t in tickets]
                }
                if mechanics_runs is not None:
                    kwargs["mechanics_runs"] = mechanics_runs
                runs = objective.measure_batch(  # type: ignore[attr-defined]
                    [t.config for t in tickets], **kwargs
                )
            except Exception:
                pass  # replay serially below for exact attribution
            else:
                member._ready.extend(
                    _batch_outcomes(tickets, runs, time.perf_counter() - t0)
                )
                return
            obs_runtime.current().metrics.counter("dispatch.serial_replays").inc()
        for ticket in tickets:
            try:
                value, run, seconds = call_objective(
                    objective, ticket.config, ticket.seed
                )
            except Exception as exc:
                try:
                    exc._repro_ticket = ticket  # type: ignore[attr-defined]
                except AttributeError:  # pragma: no cover - exotic exceptions
                    pass
                member._errors.append(exc)
            else:
                member._ready.append(
                    EvaluationOutcome(
                        eval_id=ticket.eval_id,
                        config=ticket.config,
                        value=value,
                        run=run,
                        seconds=seconds,
                        turnaround_seconds=time.perf_counter()
                        - ticket.submitted_at,
                        seed=ticket.seed,
                    )
                )


class BrokerExecutor(EvaluationExecutor):
    """One cell's handle on a :class:`CrossCellBroker`.

    Implements the standard submit/collect contract; the broker decides
    when submissions actually run (fused with other cells' work).
    Obtain instances via :meth:`CrossCellBroker.executor`.
    """

    kind = "broker"

    def __init__(
        self,
        broker: CrossCellBroker,
        objective: Objective,
        *,
        max_workers: int = 1,
    ) -> None:
        super().__init__(objective, max_workers=max_workers)
        self._broker = broker
        self._queue: list[_Ticket] = []
        self._ready: deque[EvaluationOutcome] = deque()
        self._errors: deque[Exception] = deque()
        self._waiting = False
        self._closed = False
        self._cell_index: int | None = None

    def submit(
        self,
        eval_id: int,
        config: Mapping[str, object],
        seed: int | None = None,
    ) -> None:
        with self._broker._cond:
            if self._closed:
                raise RuntimeError("executor is closed")
            self._queue.append(_Ticket(eval_id, dict(config), seed))
            self._broker._cond.notify_all()

    def wait_one(self) -> EvaluationOutcome:
        outcome = self._broker._wait_for(self, None)
        assert outcome is not None
        return outcome

    def try_wait_one(self, timeout: float | None = None) -> EvaluationOutcome | None:
        return self._broker._wait_for(self, timeout)

    @property
    def n_pending(self) -> int:
        with self._broker._cond:
            return len(self._queue) + len(self._ready) + len(self._errors)

    def abandon(self, eval_id: int) -> bool:
        with self._broker._cond:
            for i, ticket in enumerate(self._queue):
                if ticket.eval_id == eval_id:
                    del self._queue[i]
                    return True
            for i, outcome in enumerate(self._ready):
                if outcome.eval_id == eval_id:
                    del self._ready[i]
                    return True
        return False

    def cancel_pending(self) -> int:
        with self._broker._cond:
            cancelled = len(self._queue)
            self._queue.clear()
        return cancelled

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._broker._deregister(self)


def make_executor(
    kind: str, objective: Objective, *, max_workers: int = 1
) -> EvaluationExecutor:
    """Factory over the three backends ("serial" | "thread" | "process")."""
    if kind == "serial":
        return SerialExecutor(objective)
    if kind == "thread":
        return ThreadPoolExecutor(objective, max_workers=max_workers)
    if kind == "process":
        return ProcessPoolExecutor(objective, max_workers=max_workers)
    raise ValueError(f"unknown executor kind {kind!r}; use one of {EXECUTOR_KINDS}")
