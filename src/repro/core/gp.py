"""Gaussian-process regression with ML-II hyperparameter fitting.

The surrogate model at the heart of Bayesian Optimization (paper
§III-C): a GP prior ``f ~ GP(m, k)`` is conditioned on the observed
(configuration, throughput) pairs, giving a posterior mean and variance
at unseen configurations.  Hyperparameters (signal variance,
lengthscales, observation noise) are chosen by maximizing the log
marginal likelihood with multi-start L-BFGS-B on analytic gradients.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import linalg as sla
from scipy import optimize as sopt

from repro.core.kernels import Kernel, make_kernel

#: Diagonal jitter added to every training covariance for stability.
JITTER = 1e-8


@dataclass
class _Posterior:
    """Cached factorization of the training covariance."""

    X: np.ndarray
    y: np.ndarray  # standardized targets
    L: np.ndarray  # Cholesky factor of K + noise*I
    alpha: np.ndarray  # (K + noise*I)^{-1} y


class GaussianProcess:
    """GP regressor on the unit hypercube.

    Parameters
    ----------
    kernel:
        Covariance function; a fresh Matérn-5/2 is created when a name
        is given.
    noise:
        Initial observation-noise variance (of standardized targets).
        Fitted jointly with the kernel hyperparameters unless
        ``fit_noise=False``.
    normalize_y:
        Standardize targets to zero mean / unit variance internally.
    """

    def __init__(
        self,
        kernel: Kernel | str = "matern52",
        dim: int | None = None,
        *,
        ard: bool = True,
        noise: float = 1e-2,
        fit_noise: bool = True,
        normalize_y: bool = True,
    ) -> None:
        if isinstance(kernel, str):
            if dim is None:
                raise ValueError("dim is required when kernel is given by name")
            kernel = make_kernel(kernel, dim, ard=ard)
        self.kernel = kernel
        if noise <= 0:
            raise ValueError("noise must be > 0")
        self._log_noise = math.log(noise)
        self.fit_noise = fit_noise
        self.normalize_y = normalize_y
        self._posterior: _Posterior | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        #: Optional per-point *extra* observation variance (standardized
        #: units) added to the homoscedastic noise diagonal — how the
        #: continuous-tuning loop down-weights stale pre-drift
        #: observations (docs/DRIFT.md).  ``None`` keeps the classic
        #: homoscedastic path bit-for-bit.
        self._y_err: np.ndarray | None = None
        #: Telemetry: how the posterior has been maintained so far.
        self.n_full_fits = 0
        self.n_incremental_updates = 0

    # ------------------------------------------------------------------
    @property
    def noise(self) -> float:
        return math.exp(self._log_noise)

    @property
    def observation_noise_std(self) -> float:
        """Fitted observation-noise standard deviation in y units."""
        return math.sqrt(self.noise) * self._y_std

    @property
    def is_fitted(self) -> bool:
        return self._posterior is not None

    @property
    def n_observations(self) -> int:
        return 0 if self._posterior is None else len(self._posterior.y)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        optimize_hyperparams: bool = True,
        n_restarts: int = 2,
        rng: np.random.Generator | None = None,
        y_err: np.ndarray | None = None,
    ) -> "GaussianProcess":
        """Condition the GP on observations (and optionally refit
        hyperparameters by multi-start ML-II).  Returns self.

        ``y_err`` gives each observation *extra* variance (standardized
        units) on top of the fitted homoscedastic noise — points with
        large entries are down-weighted in the posterior.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have matching first dimension")
        if X.shape[0] == 0:
            raise ValueError("need at least one observation")
        if X.shape[1] != self.kernel.dim:
            raise ValueError(
                f"X has dim {X.shape[1]}, kernel expects {self.kernel.dim}"
            )
        if y_err is not None:
            y_err = np.asarray(y_err, dtype=float).ravel()
            if y_err.shape[0] != y.shape[0]:
                raise ValueError("y_err must match y in length")
            if np.any(y_err < 0):
                raise ValueError("y_err entries must be >= 0")
        self._y_err = y_err

        if self.normalize_y:
            self._y_mean = float(np.mean(y))
            std = float(np.std(y))
            self._y_std = std if std > 1e-12 else 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        z = (y - self._y_mean) / self._y_std

        if optimize_hyperparams and X.shape[0] >= 3:
            self._optimize_hyperparams(X, z, n_restarts=n_restarts, rng=rng)
        self._refresh_posterior(X, z)
        self.n_full_fits += 1
        return self

    def update(self, x: np.ndarray, y: float) -> "GaussianProcess":
        """Condition on one more observation in O(n²) (rank-1 update).

        Extends the cached Cholesky factor with one row instead of
        refactoring the full covariance: with ``w = L⁻¹ k(X, x)`` and
        ``d = sqrt(k(x, x) + noise - w·w)`` the factor of the grown
        covariance is ``[[L, 0], [wᵀ, d]]``.  Hyperparameters and the
        target normalization stay frozen until the next full
        :meth:`fit` — the refit schedule is the caller's business
        (:class:`~repro.core.optimizer.BayesianOptimizer.refit_every`).

        Falls back to a full O(n³) refactorization when the new point is
        numerically degenerate (e.g. a near-duplicate of an existing row
        at tiny noise).
        """
        x = np.asarray(x, dtype=float).ravel()
        if x.shape[0] != self.kernel.dim:
            raise ValueError(f"x has dim {x.shape[0]}, kernel expects {self.kernel.dim}")
        if self._posterior is None:
            return self.fit(x[None, :], [float(y)], optimize_hyperparams=False)
        post = self._posterior
        if self._y_err is not None:
            # The fresh observation carries no staleness variance; the
            # cached factor already encodes the old points' extra diag.
            self._y_err = np.append(self._y_err, 0.0)
        z_new = (float(y) - self._y_mean) / self._y_std
        X_new = np.vstack([post.X, x[None, :]])
        z = np.append(post.y, z_new)
        k_vec = self.kernel(x[None, :], post.X).ravel()
        k_self = float(self.kernel.diag(x[None, :])[0]) + self.noise + JITTER
        w = sla.solve_triangular(post.L, k_vec, lower=True)
        d_sq = k_self - float(w @ w)
        if d_sq <= JITTER:
            # Degenerate extension: refactor from scratch (rare).
            self._refresh_posterior(X_new, z)
            self.n_incremental_updates += 1
            return self
        d = math.sqrt(d_sq)
        n = post.L.shape[0]
        L = np.zeros((n + 1, n + 1))
        L[:n, :n] = post.L
        L[n, :n] = w
        L[n, n] = d
        # alpha = (K + noise I)^{-1} z via the two triangular solves; the
        # forward solve's first n entries are unchanged (u = Lᵀ alpha).
        u_old = post.L.T @ post.alpha
        u = np.append(u_old, (z_new - float(w @ u_old)) / d)
        alpha = sla.solve_triangular(L.T, u, lower=False)
        self._posterior = _Posterior(X=X_new, y=z, L=L, alpha=alpha)
        self.n_incremental_updates += 1
        return self

    def _pack_theta(self) -> np.ndarray:
        theta = self.kernel.theta
        if self.fit_noise:
            theta = np.concatenate((theta, [self._log_noise]))
        return theta

    def _unpack_theta(self, theta: np.ndarray) -> None:
        if self.fit_noise:
            self.kernel.theta = theta[:-1]
            self._log_noise = float(theta[-1])
        else:
            self.kernel.theta = theta

    def _theta_bounds(self) -> list[tuple[float, float]]:
        bounds = self.kernel.theta_bounds()
        if self.fit_noise:
            bounds.append((math.log(1e-8), math.log(1.0)))
        return bounds

    def _neg_lml_and_grad(
        self, theta: np.ndarray, X: np.ndarray, z: np.ndarray
    ) -> tuple[float, np.ndarray]:
        self._unpack_theta(theta)
        n = X.shape[0]
        K = self.kernel(X)
        Kn = K + (self.noise + JITTER) * np.eye(n)
        if self._y_err is not None:
            Kn = Kn + np.diag(self._y_err)
        try:
            L = sla.cholesky(Kn, lower=True)
        except sla.LinAlgError:
            return 1e25, np.zeros_like(theta)
        alpha = sla.cho_solve((L, True), z)
        lml = (
            -0.5 * float(z @ alpha)
            - float(np.sum(np.log(np.diag(L))))
            - 0.5 * n * math.log(2.0 * math.pi)
        )
        # dLML/dtheta_j = 0.5 tr((alpha alpha' - K^-1) dK/dtheta_j),
        # with the trace inner products delegated to the kernel's
        # vectorized fast path (no per-dimension dK matrices).
        Kinv = sla.cho_solve((L, True), np.eye(n))
        W = np.outer(alpha, alpha) - Kinv
        grad = 0.5 * self.kernel.grad_dot(X, W)
        if self.fit_noise:
            grad_noise = 0.5 * float(np.trace(W)) * self.noise
            grad = np.concatenate((grad, [grad_noise]))
        return -lml, -grad

    def _optimize_hyperparams(
        self,
        X: np.ndarray,
        z: np.ndarray,
        *,
        n_restarts: int,
        rng: np.random.Generator | None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        bounds = self._theta_bounds()
        lo = np.array([b[0] for b in bounds])
        hi = np.array([b[1] for b in bounds])
        starts = [self._pack_theta()]
        for _ in range(max(0, n_restarts)):
            starts.append(lo + rng.random(len(bounds)) * (hi - lo))
        best_theta, best_val = None, math.inf
        for start in starts:
            start = np.clip(start, lo, hi)
            result = sopt.minimize(
                self._neg_lml_and_grad,
                start,
                args=(X, z),
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": 80},
            )
            if result.fun < best_val:
                best_val = float(result.fun)
                best_theta = np.asarray(result.x)
        if best_theta is not None:
            self._unpack_theta(best_theta)

    def _refresh_posterior(self, X: np.ndarray, z: np.ndarray) -> None:
        n = X.shape[0]
        K = self.kernel(X)
        Kn = K + (self.noise + JITTER) * np.eye(n)
        if self._y_err is not None and self._y_err.shape[0] == n:
            Kn = Kn + np.diag(self._y_err)
        try:
            L = sla.cholesky(Kn, lower=True)
        except sla.LinAlgError:
            # Inflate the diagonal until the factorization succeeds.
            bump = 1e-6
            while bump < 1.0:
                try:
                    L = sla.cholesky(Kn + bump * np.eye(n), lower=True)
                    break
                except sla.LinAlgError:
                    bump *= 10.0
            else:  # pragma: no cover - pathological
                raise
        alpha = sla.cho_solve((L, True), z)
        self._posterior = _Posterior(X=X.copy(), y=z.copy(), L=L, alpha=alpha)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(
        self, X: np.ndarray, *, return_std: bool = True
    ) -> tuple[np.ndarray, np.ndarray] | np.ndarray:
        """Posterior mean and standard deviation in the original y units.

        With ``return_std=False`` only the mean array is returned (the
        variance solve is skipped entirely).  With no observations,
        returns the prior (mean 0, std from the kernel variance).
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.kernel.dim:
            raise ValueError("input dimensionality mismatch")
        if self._posterior is None:
            mean = np.zeros(X.shape[0]) + self._y_mean
            if not return_std:
                return mean
            std = np.sqrt(self.kernel.diag(X)) * self._y_std
            return mean, std
        post = self._posterior
        Ks = self.kernel(X, post.X)
        mean_z = Ks @ post.alpha
        mean = mean_z * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = sla.solve_triangular(post.L, Ks.T, lower=True)
        var_z = self.kernel.diag(X) - np.sum(v**2, axis=0)
        var_z = np.maximum(var_z, 1e-12)
        std = np.sqrt(var_z) * self._y_std
        return mean, std

    def log_predictive_density(
        self, X: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Per-point log density of ``y`` under the posterior at ``X``.

        The Gaussian predictive includes the fitted observation noise
        (the density of a *measurement*, not of the latent function), in
        original y units.  The negated mean of these values over held-out
        or one-step-ahead points is the NLPD calibration score the
        diagnostics layer tracks (docs/OBSERVABILITY.md §diagnostics).
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have matching first dimension")
        mean, std = self.predict(X)
        var = std**2 + self.noise * self._y_std**2
        return -0.5 * (
            np.log(2.0 * math.pi * var) + (y - mean) ** 2 / var
        )

    def log_marginal_likelihood(self) -> float:
        """LML of the standardized targets under current hyperparameters."""
        if self._posterior is None:
            raise RuntimeError("fit() must be called first")
        post = self._posterior
        n = len(post.y)
        return (
            -0.5 * float(post.y @ post.alpha)
            - float(np.sum(np.log(np.diag(post.L))))
            - 0.5 * n * math.log(2.0 * math.pi)
        )

    def sample_posterior(
        self, X: np.ndarray, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw joint posterior samples at ``X`` (original y units).

        The conditional covariance ``K(X, X) - vᵀv`` can pick up small
        negative eigenmass in floating point (near-duplicate inputs,
        tight posteriors), so the factorization clamps it: Cholesky with
        jitter first, eigendecomposition with negative eigenvalues
        zeroed as the fallback.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        mean = self.predict(X, return_std=False)
        if self._posterior is None:
            cov = self.kernel(X)
        else:
            post = self._posterior
            Ks = self.kernel(X, post.X)
            v = sla.solve_triangular(post.L, Ks.T, lower=True)
            cov = self.kernel(X) - v.T @ v
        cov = cov * self._y_std**2
        cov = 0.5 * (cov + cov.T)
        normals = rng.standard_normal((n_samples, X.shape[0]))
        try:
            factor = np.linalg.cholesky(cov + JITTER * np.eye(X.shape[0]))
        except np.linalg.LinAlgError:
            eigvals, eigvecs = np.linalg.eigh(cov)
            factor = eigvecs * np.sqrt(np.clip(eigvals, 0.0, None))
        return mean + normals @ factor.T
