"""Workload-drift detection over incumbent re-measurements.

The paper tunes against a *stationary* workload: one Bayesian
optimization pass, one incumbent, done.  Real stream workloads drift —
diurnal load cycles, flash crowds, hot-key migration — and a
configuration tuned for the old conditions quietly degrades.  This
module supplies the detection half of the continuous-tuning story
(docs/DRIFT.md): a Page-Hinkley test over the relative deviations of
periodic incumbent re-measurements.

Page-Hinkley is the sequential-analysis cousin of CUSUM: it accumulates
the deviation of each sample from the running mean (minus a slack
``delta``) and signals when the accumulated sum departs from its
historical extremum by more than ``threshold``.  We run it two-sided —
a workload change can *raise* measured throughput (load trough) as well
as crater it (flash crowd, skew) — and normalize each deviation by the
running mean magnitude so thresholds are scale-free: the same detector
settings work for a 100-tuple/s topology and a 100k-tuple/s one.

The detector is deliberately pure state + arithmetic: no I/O, no
observability calls.  :class:`~repro.core.continuous.
ContinuousTuningLoop` owns the ``drift.*`` spans and events, and
serializes detector state into its sidecar checkpoint via
:meth:`PageHinkleyDetector.state_dict` so a killed-and-resumed run
re-arms the test exactly where it left off.
"""

from __future__ import annotations

import math
from typing import Mapping


class PageHinkleyDetector:
    """Two-sided Page-Hinkley test over relative deviations.

    ``update(value)`` feeds one incumbent re-measurement and returns
    True when a change point is detected.  ``delta`` is the slack per
    sample (tolerated relative wobble — measurement noise should live
    comfortably below it), ``threshold`` the accumulated relative
    deviation that triggers, and ``min_samples`` the number of samples
    required before the test may fire (the running mean needs a little
    history to be a meaningful reference).
    """

    def __init__(
        self,
        *,
        delta: float = 0.02,
        threshold: float = 0.25,
        min_samples: int = 2,
    ) -> None:
        if delta < 0.0:
            raise ValueError("delta must be >= 0")
        if threshold <= 0.0:
            raise ValueError("threshold must be > 0")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self.n_detections = 0
        self.reset()

    def reset(self) -> None:
        """Re-arm the test (called after each handled detection)."""
        self._n = 0
        self._mean = 0.0
        self._cum_up = 0.0  # accumulates rel - delta; upward shifts
        self._min_up = 0.0
        self._cum_down = 0.0  # accumulates rel + delta; downward shifts
        self._max_down = 0.0
        self.statistic = 0.0
        #: Relative deviation of the most recent sample from the prior
        #: mean — negative for drops.  Callers use it to grade how
        #: severe the detected change is.
        self.last_deviation = 0.0

    @property
    def n_samples(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean

    def update(self, value: float) -> bool:
        """Feed one measurement; True when drift is detected.

        Non-finite measurements are rejected — the caller decides what
        a failed incumbent measurement means (the continuous loop feeds
        0.0, which reads as a collapse and trips the test immediately).
        """
        v = float(value)
        if not math.isfinite(v):
            raise ValueError(f"measurement must be finite, got {v!r}")
        # Deviation against the mean of *prior* samples: with only a
        # handful of monitor points per drift event, folding the new
        # sample into the reference first would dilute exactly the
        # excursion the test exists to catch.
        if self._n == 0:
            rel = 0.0
        else:
            denom = abs(self._mean)
            rel = (v - self._mean) / denom if denom > 0.0 else v - self._mean
        self.last_deviation = rel
        self._n += 1
        self._mean += (v - self._mean) / self._n
        self._cum_up += rel - self.delta
        self._min_up = min(self._min_up, self._cum_up)
        self._cum_down += rel + self.delta
        self._max_down = max(self._max_down, self._cum_down)
        self.statistic = max(
            self._cum_up - self._min_up, self._max_down - self._cum_down
        )
        if self._n < self.min_samples:
            return False
        drifted = self.statistic > self.threshold
        if drifted:
            self.n_detections += 1
        return drifted

    # ------------------------------------------------------------------
    # Checkpointing (pure-JSON state, docs/ROBUSTNESS.md)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        return {
            "delta": self.delta,
            "threshold": self.threshold,
            "min_samples": self.min_samples,
            "n": self._n,
            "mean": self._mean,
            "cum_up": self._cum_up,
            "min_up": self._min_up,
            "cum_down": self._cum_down,
            "max_down": self._max_down,
            "statistic": self.statistic,
            "last_deviation": self.last_deviation,
            "n_detections": self.n_detections,
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self.delta = float(state["delta"])  # type: ignore[arg-type]
        self.threshold = float(state["threshold"])  # type: ignore[arg-type]
        self.min_samples = int(state["min_samples"])  # type: ignore[arg-type]
        self._n = int(state["n"])  # type: ignore[arg-type]
        self._mean = float(state["mean"])  # type: ignore[arg-type]
        self._cum_up = float(state["cum_up"])  # type: ignore[arg-type]
        self._min_up = float(state["min_up"])  # type: ignore[arg-type]
        self._cum_down = float(state["cum_down"])  # type: ignore[arg-type]
        self._max_down = float(state["max_down"])  # type: ignore[arg-type]
        self.statistic = float(state["statistic"])  # type: ignore[arg-type]
        self.last_deviation = float(state.get("last_deviation", 0.0))  # type: ignore[arg-type]
        self.n_detections = int(state.get("n_detections", 0))  # type: ignore[arg-type]

    @classmethod
    def from_state_dict(cls, state: Mapping[str, object]) -> "PageHinkleyDetector":
        detector = cls()
        detector.load_state_dict(state)
        return detector
