"""The Bayesian optimizer: Spearmint's loop, from scratch.

An *ask/tell* interface: :meth:`BayesianOptimizer.ask` proposes the next
configuration (initial design first, then acquisition maximization over
the GP posterior), :meth:`~BayesianOptimizer.tell` feeds back the
measured objective.  State serializes to JSON so an optimization can be
paused and resumed across processes — the Spearmint feature the paper
calls out as important for its cluster-scale evaluations (§III-C).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro.core.acquisition import AcquisitionOptimizer
from repro.core.baselines import Optimizer
from repro.core.gp import GaussianProcess
from repro.core.parameters import ParameterSpace
from repro.obs import runtime as obs_runtime


class BayesianOptimizer(Optimizer):
    """GP + acquisition-function optimizer over a :class:`ParameterSpace`.

    Parameters
    ----------
    space:
        The search space.
    acquisition:
        'ei' (the paper's choice), 'pi', or 'ucb'.
    kernel:
        'matern52' (Spearmint's default), 'matern32', or 'rbf'.
    ard:
        Per-dimension lengthscales.  Defaults to isotropic for spaces
        above ``ard_max_dim`` dimensions, where 60 samples cannot
        identify 100 lengthscales.
    init_points:
        Size of the Latin-hypercube initial design.  Defaults to
        ``max(4, min(dim + 1, 10))``.
    initial_configs:
        Known configurations evaluated before the random design (e.g.
        the deployment's current defaults) — standard practice when
        tuning a production system from a known-good starting point.
    refit_every:
        Full ML-II refit schedule: every this many ``tell`` steps the
        hyperparameters are re-optimized and the posterior refactored
        from scratch (O(n³)); in between, each observation is folded in
        with an O(n²) rank-1 Cholesky update under frozen
        hyperparameters.  During the warm-up phase (seeded configs +
        initial design) every step refits, since small-n refits are
        cheap and early hyperparameter adaptation matters most.
        ``refit_every=1`` recovers the refit-everything-always
        behaviour.
    maximize:
        True for throughput-style objectives.
    liar:
        Fantasy strategy for pending (submitted-but-unmeasured)
        proposals, used by :meth:`ask_batch` to emit ``q > 1`` diverse
        suggestions per batch.  ``"constant"`` (the constant liar of
        Ginsbourger et al.): pending points are imputed the *worst*
        observed value, deterring the acquisition from re-proposing
        nearby while keeping it honest about unexplored regions.
        ``"mean"`` (the kriging believer): pending points are imputed
        the GP posterior mean, which collapses predictive variance at
        the pending point without biasing the mean surface.  Either
        way the surrogate is reconditioned (hyperparameters frozen) so
        the next proposal steers away from in-flight configurations —
        the Spearmint pending-job machinery the paper leaned on for
        cluster-scale evaluations (§III-C).
    hyper_inference:
        ``"ml2"`` (default): point-estimate hyperparameters by marginal
        likelihood.  ``"mcmc"``: slice-sample the hyperparameter
        posterior and average the acquisition over ``mcmc_samples``
        draws — Spearmint's integrated acquisition (§III-C's toolkit).
    screener:
        Optional candidate feasibility screen forwarded to the
        acquisition optimizer: a callable mapping the ``(M, dim)``
        unit-cube candidate pool to a boolean keep-mask, applied after
        acquisition scoring and *before* ranking/refinement.  Use
        :func:`repro.storm.analytic_batch.make_analytic_screener` to
        drop configurations the batch analytic model proves infeasible
        (executor capacity, batch timeout, memory) without spending GP
        refinement on them.  Opt-in and deliberately not serialized:
        :meth:`state_dict` round-trips produce an unscreened optimizer
        (reattach via ``optimizer.acq.screen = ...`` after
        :meth:`from_state_dict`), so checkpoint/resume behaviour of
        existing studies is unchanged.
    """

    def __init__(
        self,
        space: ParameterSpace,
        *,
        acquisition: str = "ei",
        kernel: str = "matern52",
        ard: bool | None = None,
        ard_max_dim: int = 25,
        init_points: int | None = None,
        initial_configs: list[Mapping[str, object]] | None = None,
        refit_every: int = 5,
        n_restarts: int = 2,
        maximize: bool = True,
        liar: str = "constant",
        seed: int | None = None,
        acq_candidates: int = 1024,
        hyper_inference: str = "ml2",
        mcmc_samples: int = 5,
        mcmc_burn_in: int = 10,
        screener: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> None:
        self.space = space
        if ard is None:
            ard = space.dim <= ard_max_dim
        self._kernel_name = kernel
        self._ard = ard
        self.gp = GaussianProcess(kernel, space.dim, ard=ard)
        if hyper_inference not in ("ml2", "mcmc"):
            raise ValueError(
                f"unknown hyper_inference {hyper_inference!r}; use 'ml2' or 'mcmc'"
            )
        self.hyper_inference = hyper_inference
        self.mcmc_samples = mcmc_samples
        self.mcmc_burn_in = mcmc_burn_in
        if hyper_inference == "mcmc":
            from repro.core.mcmc import IntegratedAcquisitionOptimizer

            self.acq: AcquisitionOptimizer = IntegratedAcquisitionOptimizer(
                acquisition=acquisition,
                n_candidates=acq_candidates,
                screen=screener,
            )
        else:
            self.acq = AcquisitionOptimizer(
                acquisition=acquisition,
                n_candidates=acq_candidates,
                screen=screener,
            )
        self.init_points = (
            init_points
            if init_points is not None
            else max(4, min(space.dim + 1, 10))
        )
        if self.init_points < 1:
            raise ValueError("init_points must be >= 1")
        if refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        self.refit_every = refit_every
        self.n_restarts = n_restarts
        self.maximize = maximize
        if liar not in ("constant", "mean"):
            raise ValueError(f"unknown liar {liar!r}; use 'constant' or 'mean'")
        self.liar = liar
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self.X: list[np.ndarray] = []
        self.y: list[float] = []
        #: Aligned with ``y``: True where the target is a penalized
        #: imputation of a failed evaluation rather than a measurement.
        #: Imputations condition the GP (EI steers away from crash-prone
        #: regions) but are excluded from the statistics future
        #: imputations derive from — otherwise each failure would drag
        #: the "worst seen" down and spiral.
        self._failure_mask: list[bool] = []
        self._last_failure_reason = ""
        #: Aligned with ``y``: extra GP variance (standardized units)
        #: assigned to each observation.  Zero for fresh measurements;
        #: :meth:`retune_from_incumbent` inflates the entries of
        #: pre-drift observations so they inform without anchoring the
        #: posterior (docs/DRIFT.md).
        self._stale_var: list[float] = []
        self._trust_center: np.ndarray | None = None
        self._trust_radius: float | None = None
        self._initial_configs: list[np.ndarray] = []
        for config in initial_configs or []:
            space.validate(config)
            self._initial_configs.append(space.encode(config))
        self._init_design: list[np.ndarray] = []
        self._pending: np.ndarray | None = None
        #: In-flight proposals and their imputed (fantasy) values, in
        #: raw objective units.  Transient batch state — not serialized
        #: by :meth:`state_dict`, since the evaluations they stand in
        #: for cannot survive a pause/resume anyway.
        self._pending_X: list[np.ndarray] = []
        self._pending_y: list[float] = []
        self._n_fantasies_total = 0
        self._steps_since_refit = 0
        self._fit_seconds_total = 0.0
        self._last_pool_size = 0
        self._pool_size_total = 0
        self._n_proposals = 0
        self._refined_total = 0
        self._refine_iterations_total = 0
        self._last_acq_value: float | None = None

    # ------------------------------------------------------------------
    # Ask / tell
    # ------------------------------------------------------------------
    @property
    def n_observed(self) -> int:
        return len(self.y)

    def ask(self) -> dict[str, object]:
        """Propose the next configuration (idempotent until ``tell``).

        Order: seeded ``initial_configs``, then the Latin-hypercube
        design, then acquisition maximization over the GP posterior.
        In-flight proposals registered via :meth:`tell_pending` count
        toward the warm-up budget, so a batch drawn during warm-up
        hands out *distinct* design points rather than one point ``q``
        times.
        """
        if self._pending is not None:
            return self.space.decode(self._pending)
        n_seeded = len(self._initial_configs)
        n_known = len(self.X) + len(self._pending_X)
        if n_known < n_seeded:
            x = self._initial_configs[n_known]
        elif n_known < n_seeded + self.init_points:
            if not self._init_design:
                design = self.space.latin_hypercube(self.init_points, self._rng)
                self._init_design = [row for row in design]
            x = self._init_design[n_known - n_seeded]
        elif not self.gp.is_fitted:
            # Whole warm-up still in flight (large batch, no tells yet):
            # explore randomly rather than consult an unfitted surrogate.
            x = self.space.round_trip(self._rng.random(self.space.dim))
        else:
            x = self._propose()
        self._pending = np.asarray(x, dtype=float)
        return self.space.decode(self._pending)

    def ask_batch(self, n: int) -> list[dict[str, object]]:
        """Propose ``n`` diverse configurations for concurrent evaluation.

        Each proposal is conditioned on the previous ones through the
        ``liar`` fantasy strategy, so one batch spreads across the
        acquisition landscape instead of piling onto its argmax.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        batch: list[dict[str, object]] = []
        for _ in range(n):
            config = self.ask()
            self.tell_pending(config)
            batch.append(config)
        return batch

    def tell_pending(self, config: Mapping[str, object]) -> None:
        """Register an in-flight proposal with a fantasized value.

        The surrogate is reconditioned on observations + fantasies
        (hyperparameters frozen) whenever it is past warm-up, so the
        next :meth:`ask` proposes away from pending points.  The
        fantasy is retired by the matching :meth:`tell`.
        """
        self.space.validate(config)
        x = np.asarray(self.space.encode(config), dtype=float)
        self._pending_X.append(x)
        self._pending_y.append(self._fantasy_value(x))
        self._n_fantasies_total += 1
        self._pending = None
        past_warmup = len(self.X) >= len(self._initial_configs) + self.init_points
        if past_warmup and len(self.X) >= 2:
            with obs_runtime.current().tracer.span(
                "gp.fantasy_condition", n_pending=len(self._pending_X)
            ):
                self._fit_gp(optimize_hyperparams=False)

    def _fantasy_value(self, x: np.ndarray) -> float:
        """Imputed objective value for a pending point (raw units)."""
        if not self.y:
            return 0.0
        if self.liar == "mean" and self.gp.is_fitted:
            mean = float(self.gp.predict(x[None, :], return_std=False)[0])
            return mean if self.maximize else -mean
        # Constant liar: the worst observed value (also the "mean"
        # fallback while the GP is unfitted).
        return min(self.y) if self.maximize else max(self.y)

    def _remove_pending(self, x: np.ndarray) -> bool:
        """Retire the fantasy matching ``x``, if one is in flight."""
        for i, pending in enumerate(self._pending_X):
            if np.allclose(pending, x):
                del self._pending_X[i]
                del self._pending_y[i]
                return True
        return False

    def tell(self, config: Mapping[str, object], value: float) -> None:
        """Record a measurement and refresh the GP.

        Full ML-II refits follow the ``refit_every`` schedule; other
        steps fold the new observation into the cached Cholesky factor
        in O(n²) (:meth:`GaussianProcess.update`).  While fantasies are
        active the posterior mixes real and imputed targets, so those
        steps recondition on everything instead of rank-1 updating.

        A non-finite ``value`` is never fed to the GP — NaNs poison the
        whole posterior through the normalization statistics — and is
        rerouted to :meth:`tell_failure` instead.
        """
        if not np.isfinite(value):
            self.tell_failure(
                config, reason=f"non_finite: objective returned {value!r}"
            )
            return
        self._record(config, float(value), failed=False)

    def tell_failure(self, config: Mapping[str, object], reason: str = "") -> None:
        """Record a failed evaluation as a penalized imputation.

        The config enters the GP with the worst *real* observation
        minus a margin (plus, for minimization) — a finite, smooth
        penalty that steers EI away from crash-prone regions without
        the pathologies of the alternatives: dropping failures leaves
        the optimizer re-proposing them forever, and telling a literal
        0.0 wrecks the target normalization when real throughputs live
        in the millions (ContTune-style failures-as-signals treatment).
        """
        self._last_failure_reason = str(reason)
        self._record(config, self._failure_imputation(), failed=True)

    def _failure_imputation(self) -> float:
        """Penalized target for a failed evaluation (raw units)."""
        real = [v for v, bad in zip(self.y, self._failure_mask) if not bad]
        if not real:
            # Nothing measured yet: no scale to impute from.  Zero is
            # the natural floor for throughput-style objectives.
            return 0.0
        worst = min(real) if self.maximize else max(real)
        spread = max(real) - min(real)
        margin = 0.1 * spread if spread > 0 else max(1.0, 0.1 * abs(worst))
        return worst - margin if self.maximize else worst + margin

    def _record(
        self, config: Mapping[str, object], value: float, *, failed: bool
    ) -> None:
        self.space.validate(config)
        x = self.space.encode(config)
        self._remove_pending(np.asarray(x, dtype=float))
        self.X.append(x)
        self.y.append(float(value))
        self._failure_mask.append(failed)
        self._stale_var.append(0.0)
        self._pending = None
        if len(self.X) < 2:
            return
        tracer = obs_runtime.current().tracer
        t0 = time.perf_counter()
        self._steps_since_refit += 1
        in_warmup = len(self.X) <= len(self._initial_configs) + self.init_points + 1
        refit = (
            in_warmup
            or self._steps_since_refit >= self.refit_every
            or self.gp.n_observations == 0
        )
        if refit:
            self._steps_since_refit = 0
            with tracer.span("gp.refit", n_obs=len(self.X), warmup=in_warmup):
                self._fit_gp(optimize_hyperparams=True)
        elif not self._pending_X and self.gp.n_observations == len(self.X) - 1:
            with tracer.span("gp.rank1_update", n_obs=len(self.X)):
                self.gp.update(x, float(value) if self.maximize else -float(value))
        else:
            # Posterior covers fantasies, or history and posterior are
            # out of sync (manual surgery on X/y): recondition on
            # everything without touching hyperparameters.
            with tracer.span("gp.recondition", n_obs=len(self.X)):
                self._fit_gp(optimize_hyperparams=False)
        self._fit_seconds_total += time.perf_counter() - t0

    @property
    def done(self) -> bool:
        return False  # BO never exhausts its space

    @property
    def telemetry(self) -> dict[str, object]:
        """Per-run counters for the suggest fast path (Figure 7 style).

        Threaded into :class:`~repro.core.history.TuningResult.metadata`
        by :class:`~repro.core.loop.TuningLoop`.
        """
        return {
            "gp_fit_seconds_total": self._fit_seconds_total,
            "gp_full_refits": self.gp.n_full_fits,
            "gp_incremental_updates": self.gp.n_incremental_updates,
            "refit_every": self.refit_every,
            "acq_pool_size_last": self._last_pool_size,
            "acq_pool_size_mean": (
                self._pool_size_total / self._n_proposals
                if self._n_proposals
                else 0.0
            ),
            "n_proposals": self._n_proposals,
            "acq_refined_total": self._refined_total,
            "acq_refine_iterations_total": self._refine_iterations_total,
            "liar": self.liar,
            "fantasies_active": len(self._pending_X),
            "fantasies_total": self._n_fantasies_total,
            "failed_observations": sum(self._failure_mask),
            "last_failure_reason": self._last_failure_reason,
            "stale_observations": sum(1 for v in self._stale_var if v > 0.0),
            "trust_radius": self._trust_radius,
            "last_acquisition_value": self._last_acq_value,
        }

    @property
    def last_acquisition_value(self) -> float | None:
        """Acquisition value of the most recent model-driven proposal.

        ``None`` until the first post-warm-up :meth:`ask`.  A decaying
        series signals convergence (the surrogate sees no remaining
        expected improvement); :mod:`repro.core.diagnostics` tracks it
        per tell.
        """
        return self._last_acq_value

    def predict_config(
        self, config: Mapping[str, object], *, include_noise: bool = False
    ) -> tuple[float, float] | None:
        """Posterior predictive ``(mean, std)`` for one raw config.

        Values are in objective units with the ``maximize`` sign undone,
        so callers compare directly against measured values.  With
        ``include_noise`` the std covers the fitted observation noise —
        the right predictive interval for a *measurement* rather than
        the latent function.  Returns ``None`` while the surrogate is
        unfitted (warm-up), or when the config fails validation.
        """
        if not self.gp.is_fitted:
            return None
        try:
            self.space.validate(config)
        except (KeyError, ValueError):
            return None
        x = np.asarray(self.space.encode(config), dtype=float)[None, :]
        mean, std = self.gp.predict(x)
        sd = float(std[0])
        if include_noise:
            sd = float(np.hypot(sd, self.gp.observation_noise_std))
        mu = float(mean[0])
        return (mu if self.maximize else -mu, sd)

    def best(self) -> tuple[dict[str, object], float]:
        if not self.y:
            raise RuntimeError("no observations yet")
        idx = int(np.argmax(self.y) if self.maximize else np.argmin(self.y))
        return self.space.decode(self.X[idx]), self.y[idx]

    # ------------------------------------------------------------------
    # Continuous tuning (docs/DRIFT.md)
    # ------------------------------------------------------------------
    def retune_from_incumbent(
        self,
        config: Mapping[str, object],
        *,
        trust_radius: float | None = 0.15,
        stale_inflation: float = 4.0,
    ) -> None:
        """Prepare a conservative re-tune around ``config`` after drift.

        Every existing observation was measured under the *pre-drift*
        workload, so it is kept — the response surface moved, it did not
        vanish — but down-weighted by adding ``stale_inflation``
        standardized variance units to its GP noise term.  New proposals
        are confined to a unit-cube box of half-width ``trust_radius``
        around the (encoded) incumbent, so the loop keeps serving close
        to the last known-good configuration while it re-explores.
        ``trust_radius=None`` skips the box entirely — stale observations
        are still down-weighted, but proposals roam the full space; the
        right response when the shift is mild and the surface mostly
        intact.

        Repeated drift events compound: each call adds another
        ``stale_inflation`` to observations that were already stale.
        Call :meth:`clear_trust_region` to return to global search.
        """
        if trust_radius is not None and trust_radius <= 0.0:
            raise ValueError("trust_radius must be > 0")
        if stale_inflation < 0.0:
            raise ValueError("stale_inflation must be >= 0")
        center = np.asarray(self.space.encode(config), dtype=float)
        self._stale_var = [v + stale_inflation for v in self._stale_var]
        if trust_radius is None:
            self.clear_trust_region()
        else:
            self._trust_center = center
            self._trust_radius = float(trust_radius)
            self.acq.trust_region = (center, float(trust_radius))
        if self.X:
            self._fit_gp(optimize_hyperparams=len(self.X) >= 3)
            self._steps_since_refit = 0

    def clear_trust_region(self) -> None:
        """Drop the trust region; proposals roam the full space again."""
        self._trust_center = None
        self._trust_radius = None
        self.acq.trust_region = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _signed_y(self) -> np.ndarray:
        y = np.asarray(self.y, dtype=float)
        return y if self.maximize else -y

    def _signed_pending_y(self) -> np.ndarray:
        y = np.asarray(self._pending_y, dtype=float)
        return y if self.maximize else -y

    def _stale_y_err(self, n_pending: int) -> np.ndarray | None:
        """Per-point extra GP variance, or ``None`` when all fresh."""
        if not any(v > 0.0 for v in self._stale_var):
            return None
        return np.asarray(
            self._stale_var + [0.0] * n_pending, dtype=float
        )

    def _fit_gp(self, *, optimize_hyperparams: bool) -> None:
        """Condition the GP on real observations plus active fantasies."""
        X = np.vstack(self.X + self._pending_X)
        y = np.concatenate([self._signed_y(), self._signed_pending_y()])
        self.gp.fit(
            X,
            y,
            optimize_hyperparams=optimize_hyperparams,
            n_restarts=self.n_restarts,
            rng=self._rng,
            y_err=self._stale_y_err(len(self._pending_X)),
        )
        if self.hyper_inference == "mcmc" and optimize_hyperparams:
            from repro.core.mcmc import (
                IntegratedAcquisitionOptimizer,
                sample_gp_hyperparameters,
            )

            assert isinstance(self.acq, IntegratedAcquisitionOptimizer)
            post = self.gp._posterior
            if post is not None and len(post.y) >= 3:
                thetas = sample_gp_hyperparameters(
                    self.gp,
                    post.X,
                    post.y,
                    self.mcmc_samples,
                    burn_in=self.mcmc_burn_in,
                    rng=self._rng,
                )
                self.acq.set_theta_samples(thetas)

    def _propose(self) -> np.ndarray:
        y = self._signed_y()
        # EI's incumbent must be *achievable*: after a drift re-tune the
        # stale pre-drift maximum may sit far above anything the new
        # conditions allow, flattening the acquisition surface.  Rank
        # only fresh observations when any are stale (falling back to
        # the global best while none have been re-measured yet).
        fresh = np.flatnonzero(
            np.asarray([v == 0.0 for v in self._stale_var], dtype=bool)
        )
        if 0 < fresh.size < y.size:
            best_idx = int(fresh[np.argmax(y[fresh])])
        else:
            best_idx = int(np.argmax(y))
        with obs_runtime.current().tracer.span(
            "acq.propose", n_obs=len(self.X)
        ) as span:
            proposal = self.acq.propose(
                self.gp,
                self.space,
                best_x=self.X[best_idx],
                best_y=float(y[best_idx]),
                rng=self._rng,
            )
            span.set_attribute("n_candidates", proposal.n_candidates)
            span.set_attribute("n_refined", proposal.n_refined)
            span.set_attribute("refine_iterations", proposal.refine_iterations)
        self._last_pool_size = proposal.n_candidates
        self._pool_size_total += proposal.n_candidates
        self._n_proposals += 1
        self._refined_total += proposal.n_refined
        self._refine_iterations_total += proposal.refine_iterations
        self._last_acq_value = float(proposal.acquisition_value)
        x = proposal.x
        # Avoid re-sampling an already-measured grid point (or one
        # already in flight) exactly: perturb if the proposal
        # duplicates history or the pending set.
        seen_points = self.X + self._pending_X
        if any(np.allclose(x, seen) for seen in seen_points):
            for _ in range(16):
                jittered = np.clip(
                    x + self._rng.normal(0.0, 0.1, size=self.space.dim), 0.0, 1.0
                )
                jittered = self.space.round_trip(jittered)
                if not any(np.allclose(jittered, seen) for seen in seen_points):
                    return jittered
            return self.space.round_trip(self._rng.random(self.space.dim))
        return x

    # ------------------------------------------------------------------
    # Pause / resume (Spearmint feature, §III-C)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """Full serializable optimizer state (see ``from_state_dict``)."""
        return {
            "space": self.space.as_dict(),
            "acquisition": self.acq.acquisition,
            "kernel": self._kernel_name,
            "ard": self._ard,
            "init_points": self.init_points,
            "refit_every": self.refit_every,
            "n_restarts": self.n_restarts,
            "maximize": self.maximize,
            "liar": self.liar,
            "seed": self._seed,
            "acq_candidates": self.acq.n_candidates,
            "hyper_inference": self.hyper_inference,
            "mcmc_samples": self.mcmc_samples,
            "mcmc_burn_in": self.mcmc_burn_in,
            "X": [list(map(float, x)) for x in self.X],
            "y": list(map(float, self.y)),
            "failure_mask": [bool(b) for b in self._failure_mask],
            "initial_configs": [list(map(float, x)) for x in self._initial_configs],
            "init_design": [list(map(float, x)) for x in self._init_design],
            "rng_state": self._rng.bit_generator.state,
            "kernel_theta": list(map(float, self.gp.kernel.theta)),
            "log_noise": self.gp._log_noise,
            "steps_since_refit": self._steps_since_refit,
            "y_mean": self.gp._y_mean,
            "y_std": self.gp._y_std,
            "stale_variance": list(map(float, self._stale_var)),
            "trust_center": (
                None
                if self._trust_center is None
                else list(map(float, self._trust_center))
            ),
            "trust_radius": self._trust_radius,
        }

    @classmethod
    def from_state_dict(cls, state: Mapping[str, object]) -> "BayesianOptimizer":
        space = ParameterSpace.from_dict(state["space"])  # type: ignore[arg-type]
        optimizer = cls(
            space,
            acquisition=str(state["acquisition"]),
            kernel=str(state["kernel"]),
            ard=bool(state["ard"]),
            init_points=int(state["init_points"]),  # type: ignore[arg-type]
            refit_every=int(state["refit_every"]),  # type: ignore[arg-type]
            n_restarts=int(state["n_restarts"]),  # type: ignore[arg-type]
            maximize=bool(state["maximize"]),
            liar=str(state.get("liar", "constant")),
            seed=state["seed"],  # type: ignore[arg-type]
            acq_candidates=int(state["acq_candidates"]),  # type: ignore[arg-type]
            hyper_inference=str(state.get("hyper_inference", "ml2")),
            mcmc_samples=int(state.get("mcmc_samples", 5)),  # type: ignore[arg-type]
            mcmc_burn_in=int(state.get("mcmc_burn_in", 10)),  # type: ignore[arg-type]
        )
        optimizer.X = [np.asarray(x, dtype=float) for x in state["X"]]  # type: ignore[union-attr]
        optimizer.y = [float(v) for v in state["y"]]  # type: ignore[union-attr]
        optimizer._failure_mask = [
            bool(b)
            for b in state.get("failure_mask", [False] * len(optimizer.y))  # type: ignore[arg-type]
        ]
        optimizer._initial_configs = [
            np.asarray(x, dtype=float) for x in state.get("initial_configs", [])  # type: ignore[union-attr]
        ]
        optimizer._init_design = [
            np.asarray(x, dtype=float) for x in state["init_design"]  # type: ignore[union-attr]
        ]
        optimizer._rng.bit_generator.state = state["rng_state"]
        optimizer.gp.kernel.theta = np.asarray(state["kernel_theta"], dtype=float)
        optimizer.gp._log_noise = float(state["log_noise"])  # type: ignore[arg-type]
        optimizer._steps_since_refit = int(state.get("steps_since_refit", 0))  # type: ignore[arg-type]
        optimizer._stale_var = [
            float(v)
            for v in state.get("stale_variance", [0.0] * len(optimizer.y))  # type: ignore[arg-type]
        ]
        trust_center = state.get("trust_center")
        if trust_center is not None:
            optimizer._trust_center = np.asarray(trust_center, dtype=float)
            optimizer._trust_radius = float(state["trust_radius"])  # type: ignore[arg-type]
            optimizer.acq.trust_region = (
                optimizer._trust_center,
                optimizer._trust_radius,
            )
        if optimizer.X:
            if "y_mean" in state:
                # Recondition under the exact normalization the paused
                # run was using (it may be frozen mid-refit-cycle), so
                # resumed trajectories match the uninterrupted ones.
                gp = optimizer.gp
                gp._y_mean = float(state["y_mean"])  # type: ignore[arg-type]
                gp._y_std = float(state["y_std"])  # type: ignore[arg-type]
                gp._y_err = optimizer._stale_y_err(0)
                z = (optimizer._signed_y() - gp._y_mean) / gp._y_std
                gp._refresh_posterior(np.vstack(optimizer.X), z)
            else:  # states saved before normalization was serialized
                optimizer._fit_gp(optimize_hyperparams=False)
        return optimizer

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.state_dict(), default=_json_default))

    @classmethod
    def load(cls, path: str | Path) -> "BayesianOptimizer":
        return cls.from_state_dict(json.loads(Path(path).read_text()))


def _json_default(obj: object) -> object:
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj)!r}")
