"""repro — reproduction of Fischer, Gao & Bernstein (CLUSTER 2015),
"Machines Tuning Machines: Configuring Distributed Stream Processors
with Bayesian Optimization".

Subpackages
-----------
``repro.core``
    The paper's contribution: a Spearmint-style Bayesian optimizer
    (GP + Expected Improvement) with the parallel-linear-ascent
    baseline and the informed (base-parallelism-weight) variants.
``repro.storm``
    The substrate: a simulated Storm/Trident cluster — topology model,
    Table I configuration surface, even scheduler, discrete-event and
    analytic execution engines.
``repro.topology_gen``
    GGen-style layer-by-layer synthetic topologies and the paper's
    workload perturbations (Table II, §IV-B).
``repro.sundog``
    The Sundog entity-ranking topology and its synthetic common-crawl
    workload (Figure 2, §IV-A).
``repro.stats``
    LOESS smoothing, Welch t-tests, and summary helpers (§V analyses).
``repro.experiments``
    Runners and figure/table builders regenerating every table and
    figure of the evaluation (see DESIGN.md and EXPERIMENTS.md).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
