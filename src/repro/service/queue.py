"""Lease-based cell work queue: crash-safe multi-worker campaigns.

This module turns the :class:`~repro.store.base.StudyStore` lease
primitives (owner id, monotonic fencing token, heartbeat deadline) into
the worker fleet the campaign layer runs on: N independent
:func:`run_worker` processes pointed at one store execute one campaign
concurrently, and any of them can be SIGKILLed at any moment without
losing or duplicating observations (docs/ROBUSTNESS.md):

* **claim** — :class:`CellQueue` scans the campaign's cells and
  acquires the first free one; expired leases (a dead worker's
  heartbeat deadline passed) are reclaimed with a bumped fencing token,
  and the cell's per-observation checkpoints mean the next claimant
  resumes mid-cell instead of starting over;
* **heartbeat** — a daemon thread renews the lease every
  ``ttl / 3`` so a *live* worker is never reclaimed; a renewal that
  raises :class:`~repro.store.base.StaleLeaseError` marks the worker
  stale and its results are dropped (the new owner re-derives them
  deterministically);
* **commit** — the cell function writes its results under the fencing
  token (:meth:`~repro.store.base.StudyStore.save_results_fenced`),
  then the worker commits the lease.  A crash between those two phases
  leaves a *torn commit*: results present, lease uncommitted — the next
  claimant sees the results and re-commits without re-running, which
  keeps commits idempotent and byte-identical;
* **quarantine** — a cell whose claims keep dying (``attempts`` above
  the policy bound) or whose execution raises a *persistent* failure
  (:func:`~repro.core.resilience.classify_failure`) is parked
  terminally with the recorded reason instead of crash-looping the
  fleet.

``benchmarks/bench_fleet.py`` is the seed-deterministic kill-fuzzer
that SIGKILLs workers at randomized store operations and asserts the
finished study is byte-identical to a serial unkilled run.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.core.history import TuningResult
from repro.core.resilience import classify_failure
from repro.obs import runtime as obs_runtime
from repro.store import open_store
from repro.store.base import (
    TERMINAL_LEASE_STATUSES,
    Lease,
    LeaseError,
    StaleLeaseError,
    StudyStore,
)


def default_owner() -> str:
    """``<host>-<pid>``: unique per worker process on one machine."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _count(name: str, n: int = 1) -> None:
    obs_runtime.current().metrics.counter(name).inc(n)


@dataclass(frozen=True)
class QueuePolicy:
    """Lease timing and poisoned-cell bounds for one worker fleet.

    ``ttl_seconds`` is the heartbeat timeout: a lease not renewed for
    this long is considered dead and reclaimable.  The heartbeat
    interval defaults to a third of it (two missed beats of slack) and
    the idle poll to a quarter (so an expired lease is reclaimed within
    one heartbeat timeout).  ``max_claim_attempts`` bounds total
    acquisitions per cell before the next claimant quarantines it — the
    crash-loop breaker for cells that kill their workers.
    """

    ttl_seconds: float = 30.0
    heartbeat_seconds: float | None = None
    poll_seconds: float | None = None
    max_claim_attempts: int = 5

    def __post_init__(self) -> None:
        if self.ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be > 0")
        if self.heartbeat_seconds is not None and not (
            0 < self.heartbeat_seconds < self.ttl_seconds
        ):
            raise ValueError("heartbeat_seconds must be in (0, ttl_seconds)")
        if self.poll_seconds is not None and self.poll_seconds <= 0:
            raise ValueError("poll_seconds must be > 0")
        if self.max_claim_attempts < 1:
            raise ValueError("max_claim_attempts must be >= 1")

    def heartbeat_interval(self) -> float:
        if self.heartbeat_seconds is not None:
            return self.heartbeat_seconds
        return max(0.02, self.ttl_seconds / 3.0)

    def poll_interval(self) -> float:
        if self.poll_seconds is not None:
            return self.poll_seconds
        return min(1.0, max(0.02, self.ttl_seconds / 4.0))

    def as_dict(self) -> dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "QueuePolicy":
        return cls(**dict(data))  # type: ignore[arg-type]


class CellQueue:
    """Claim/inspect one campaign's cells through the store's leases."""

    def __init__(
        self,
        store: StudyStore,
        study: str,
        labels: Sequence[str],
        policy: QueuePolicy | None = None,
    ) -> None:
        self.store = store
        self.study = study
        self.labels = list(labels)
        self.policy = policy or QueuePolicy()

    def claim_next(self, owner: str) -> Lease | None:
        """Acquire the first claimable cell (``None``: nothing free).

        Emits a ``lease.expired_reclaim`` event when the claim takes
        over a dead worker's expired lease.
        """
        tracer = obs_runtime.current().tracer
        now = time.time()
        for label in self.labels:
            lease = self.store.read_lease(self.study, label)
            expired_from = None
            if lease is not None:
                if lease.status in TERMINAL_LEASE_STATUSES:
                    continue
                if lease.status == "leased":
                    if not lease.expired(now):
                        continue
                    expired_from = lease
            claimed = self.store.acquire_lease(
                self.study, label, owner, self.policy.ttl_seconds
            )
            if claimed is None:
                continue  # lost the race; try the next cell
            if expired_from is not None:
                _count("lease.expired_reclaims")
                tracer.event(
                    "lease.expired_reclaim",
                    study=self.study,
                    cell=label,
                    dead_owner=expired_from.owner,
                    dead_token=expired_from.token,
                    token=claimed.token,
                    overdue_seconds=now - expired_from.deadline,
                )
            tracer.event(
                "lease.claim",
                study=self.study,
                cell=label,
                worker=owner,
                token=claimed.token,
                attempts=claimed.attempts,
            )
            return claimed
        return None

    def pending_labels(self) -> list[str]:
        """Cells not yet terminal (committed or quarantined)."""
        pending = []
        for label in self.labels:
            lease = self.store.read_lease(self.study, label)
            if lease is None or lease.status not in TERMINAL_LEASE_STATUSES:
                pending.append(label)
        return pending

    def rows(self) -> list[dict[str, object]]:
        """One status row per cell (the ``campaign status`` table)."""
        out = []
        now = time.time()
        for label in self.labels:
            lease = self.store.read_lease(self.study, label)
            if lease is None:
                status = "free"
                detail: dict[str, object] = {}
            else:
                status = lease.status
                if lease.status == "leased" and lease.expired(now):
                    status = "expired"
                detail = {
                    "owner": lease.owner,
                    "token": lease.token,
                    "attempts": lease.attempts,
                    "reason": lease.reason,
                }
            out.append(
                {
                    "cell": label,
                    "status": status,
                    "observations": self.store.observation_count(
                        self.study, label
                    ),
                    "results": self.store.has_results(self.study, label),
                    **detail,
                }
            )
        return out


class _Heartbeat(threading.Thread):
    """Renew one lease every heartbeat interval until stopped.

    Opens its *own* store handle inside the thread — SQLite connections
    are bound to their creating thread, so renewing through a handle
    the worker opened would raise on every beat and the lease would
    silently expire under a live worker.  A stale renewal stops the
    beat and flags the worker; transient store errors (including a
    failed open) are retried on the next beat — the deadline has two
    missed beats of slack by construction.
    """

    def __init__(
        self, store_spec: str, lease: Lease, policy: QueuePolicy
    ) -> None:
        super().__init__(
            name=f"lease-heartbeat-{lease.cell or 'root'}", daemon=True
        )
        self._store_spec = store_spec
        self._policy = policy
        # Not named _stop: threading.Thread owns a private _stop method
        # and shadowing it breaks join() on CPython.
        self._halt = threading.Event()
        self.lease = lease
        self.stale = False

    def run(self) -> None:
        interval = self._policy.heartbeat_interval()
        store: StudyStore | None = None
        try:
            while not self._halt.wait(interval):
                try:
                    if store is None:
                        store = open_store(self._store_spec)
                    self.lease = store.renew_lease(
                        self.lease, self._policy.ttl_seconds
                    )
                except StaleLeaseError:
                    self.stale = True
                    obs_runtime.current().tracer.event(
                        "lease.heartbeat_stale",
                        cell=self.lease.cell,
                        worker=self.lease.owner,
                        token=self.lease.token,
                    )
                    return
                except Exception:  # noqa: BLE001 - retried next beat
                    _count("lease.heartbeat_errors")
        finally:
            if store is not None:
                try:
                    store.close()
                except Exception:  # noqa: BLE001 - daemon-thread exit
                    pass

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=max(5.0, 2 * self._policy.heartbeat_interval()))


@dataclass
class WorkerReport:
    """What one :func:`run_worker` invocation did, cell by cell."""

    owner: str
    committed: list[str] = field(default_factory=list)
    repaired: list[str] = field(default_factory=list)
    released: list[tuple[str, str]] = field(default_factory=list)
    quarantined: list[tuple[str, str]] = field(default_factory=list)
    stale_drops: list[str] = field(default_factory=list)
    drained: bool = False

    @property
    def clean(self) -> bool:
        """True when no cell failed or was quarantined by this worker."""
        return not self.released and not self.quarantined


def run_worker(
    spec: "CampaignSpec",  # noqa: F821 - forward ref, see import below
    owner: str | None = None,
    *,
    policy: QueuePolicy | None = None,
    stop: threading.Event | None = None,
    install_sigterm: bool = False,
    cells: tuple[Sequence[object], Sequence[str], Callable[..., list[TuningResult]], str]
    | None = None,
) -> WorkerReport:
    """One worker process's whole life: claim → heartbeat → commit.

    Loops until every cell of the campaign is terminal (committed or
    quarantined) or ``stop`` is set (SIGTERM drain when
    ``install_sigterm``: finish the current cell, commit it, exit
    cleanly).  ``cells`` overrides the campaign grid with an explicit
    ``(specs, labels, cell_fn, study)`` tuple — the unit-test hook for
    poisoned-cell scenarios.
    """
    from repro.service.campaign import CampaignSpec  # circular at import

    assert isinstance(spec, CampaignSpec)
    if not spec.store:
        raise ValueError("a worker fleet needs a shared store")
    policy = policy or QueuePolicy(
        ttl_seconds=spec.lease_ttl_seconds,
        max_claim_attempts=spec.max_claim_attempts,
    )
    owner = owner or default_owner()
    stop = stop or threading.Event()
    if install_sigterm:
        signal.signal(signal.SIGTERM, lambda *_args: stop.set())
    if cells is None:
        from repro.service.campaign import CampaignRunner, store_cell_label

        specs, labels, cell_fn = CampaignRunner(spec).cell_specs()
        # Leases key on *store* cell labels so the fenced result write
        # and the lease land on the same cell (sundog labels differ).
        labels = [store_cell_label(spec.study, label) for label in labels]
        study = spec.study
    else:
        specs, labels, cell_fn, study = cells
    by_label = dict(zip(labels, specs))
    store = open_store(spec.store)
    queue = CellQueue(store, study, labels, policy)
    report = WorkerReport(owner=owner)
    ctx = obs_runtime.current()
    ctx.tracer.event(
        "worker.start", worker=owner, study=study, n_cells=len(labels)
    )
    _count("worker.starts")

    while not stop.is_set():
        lease = queue.claim_next(owner)
        if lease is None:
            if not queue.pending_labels():
                break  # campaign fully terminal
            # Everything left is leased to live workers; wait for
            # progress (or for an expired lease to become reclaimable).
            stop.wait(policy.poll_interval())
            continue
        label = lease.cell
        if lease.attempts > policy.max_claim_attempts:
            reason = (
                f"poisoned cell: claim attempt {lease.attempts} exceeds "
                f"the bound of {policy.max_claim_attempts}"
            )
            if lease.reason:
                reason += f" (last failure: {lease.reason})"
            _quarantine(store, lease, reason, report)
            continue
        if store.has_results(study, label):
            # Torn commit: results landed, the lease never committed
            # (a worker died between the two phases).  Re-commit
            # without re-running — the results bytes are untouched.
            try:
                store.commit_lease(lease)
            except StaleLeaseError:
                continue
            report.repaired.append(label)
            _count("worker.commits_repaired")
            ctx.tracer.event(
                "worker.cell_repair", worker=owner, cell=label,
                token=lease.token,
            )
            continue
        heartbeat = _Heartbeat(spec.store, lease, policy)
        heartbeat.start()
        ctx.tracer.event(
            "worker.cell_start",
            worker=owner,
            cell=label,
            token=lease.token,
            attempts=lease.attempts,
        )
        try:
            cell_spec = dataclasses.replace(
                by_label[label], lease=(owner, lease.token)
            )
            cell_fn(cell_spec)
        except (KeyboardInterrupt, SystemExit):
            heartbeat.stop()
            raise
        except StaleLeaseError:
            heartbeat.stop()
            report.stale_drops.append(label)
            _count("worker.stale_drops")
            continue
        except Exception as exc:  # noqa: BLE001 - classified below
            heartbeat.stop()
            reason = f"{type(exc).__name__}: {exc}"
            # Classify on the bare message: the transient markers are
            # failure-reason prefixes, not exception-type prefixes.
            if classify_failure(str(exc)) == "persistent":
                # No retry can fix a deterministic failure: quarantine
                # now instead of burning the remaining claim attempts.
                _quarantine(store, heartbeat.lease, reason, report)
            else:
                try:
                    store.release_lease(heartbeat.lease, reason=reason)
                except LeaseError:
                    pass
                report.released.append((label, reason))
                _count("worker.cells_released")
                ctx.tracer.event(
                    "worker.cell_release",
                    worker=owner,
                    cell=label,
                    error=reason,
                )
            continue
        heartbeat.stop()
        if heartbeat.stale:
            # Reclaimed mid-run: the new owner's work is authoritative.
            report.stale_drops.append(label)
            _count("worker.stale_drops")
            continue
        try:
            store.commit_lease(heartbeat.lease)
        except StaleLeaseError:
            report.stale_drops.append(label)
            _count("worker.stale_drops")
            continue
        report.committed.append(label)
        _count("worker.cells_committed")
        ctx.tracer.event(
            "worker.cell_commit",
            worker=owner,
            cell=label,
            token=heartbeat.lease.token,
        )

    report.drained = stop.is_set()
    if report.drained:
        _count("worker.drains")
    ctx.tracer.event(
        "worker.exit",
        worker=owner,
        committed=len(report.committed),
        repaired=len(report.repaired),
        released=len(report.released),
        quarantined=len(report.quarantined),
        drained=report.drained,
    )
    store.close()
    return report


def _quarantine(
    store: StudyStore, lease: Lease, reason: str, report: WorkerReport
) -> None:
    try:
        store.quarantine_lease(lease, reason)
    except StaleLeaseError:
        return
    report.quarantined.append((lease.cell, reason))
    _count("worker.quarantines")
    obs_runtime.current().tracer.event(
        "worker.quarantine",
        worker=lease.owner,
        cell=lease.cell,
        token=lease.token,
        reason=reason,
    )
