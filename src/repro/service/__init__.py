"""Campaign service layer: run serializable study grids over a store.

Sits between :mod:`repro.experiments` (the paper's concrete grids) and
:mod:`repro.core` (the tuning loop): a
:class:`~repro.service.campaign.CampaignSpec` describes *what* to run
as plain data, and a :class:`~repro.service.campaign.CampaignRunner`
executes it — cell-level process parallelism, per-cell obs events, and
store-backed resume — without knowing which figure the grid belongs to.
"""

from repro.service.campaign import (
    CampaignRunner,
    CampaignSpec,
    StudyError,
    run_cells,
    split_worker_budget,
)

__all__ = [
    "CampaignRunner",
    "CampaignSpec",
    "StudyError",
    "run_cells",
    "split_worker_budget",
]
