"""Campaign service layer: run serializable study grids over a store.

Sits between :mod:`repro.experiments` (the paper's concrete grids) and
:mod:`repro.core` (the tuning loop): a
:class:`~repro.service.campaign.CampaignSpec` describes *what* to run
as plain data, and a :class:`~repro.service.campaign.CampaignRunner`
executes it — cell-level process parallelism, per-cell obs events, and
store-backed resume — without knowing which figure the grid belongs to.

Fleet mode layers :mod:`repro.service.queue` on top: N independent
worker processes share one campaign through lease-based claims on the
study store, surviving worker crashes (docs/ROBUSTNESS.md).
"""

from repro.service.campaign import (
    CAMPAIGN_MODES,
    CAMPAIGN_STATE_NAME,
    CampaignRunner,
    CampaignSpec,
    StudyError,
    run_cells,
    split_worker_budget,
)
from repro.service.queue import (
    CellQueue,
    QueuePolicy,
    WorkerReport,
    default_owner,
    run_worker,
)

__all__ = [
    "CAMPAIGN_MODES",
    "CAMPAIGN_STATE_NAME",
    "CampaignRunner",
    "CampaignSpec",
    "CellQueue",
    "QueuePolicy",
    "StudyError",
    "WorkerReport",
    "default_owner",
    "run_cells",
    "run_worker",
    "split_worker_budget",
]
