"""``repro-experiments campaign ...`` — crash-safe fleet campaigns.

Three subcommands drive :mod:`repro.service.queue` over a shared study
store (docs/ROBUSTNESS.md):

* ``campaign run STORE`` — publish a :class:`CampaignSpec` into the
  store and supervise a worker fleet until every cell is terminal;
* ``campaign workers STORE`` — attach N more workers to a published
  campaign from any process or machine that can reach the store
  (SIGTERM drains gracefully: finish the current cell, commit, exit);
* ``campaign status STORE`` — one status row per cell (lease state,
  owner, fencing token, attempts, observation counts).

Exit codes follow the ``store``/``obs perf-compare`` convention: 0 on
success (including a clean SIGTERM drain), 1 on ordinary failures
(quarantined cells, missing store, dirty worker exit), and 2 when the
store schema is newer than this build
(:class:`~repro.store.base.SchemaVersionError`).
"""

from __future__ import annotations

import argparse
import dataclasses
import threading

from repro import obs
from repro.store.base import SchemaVersionError, StoreError, StudyStore


def _load_fleet_spec(store: StudyStore, store_spec: str):
    """The campaign spec published in ``store`` (re-pointed at it)."""
    from repro.service.campaign import (
        CAMPAIGN_KINDS,
        CAMPAIGN_STATE_NAME,
        CampaignSpec,
    )

    for kind in CAMPAIGN_KINDS:
        doc = store.load_state(kind, "", CAMPAIGN_STATE_NAME)
        if doc and isinstance(doc.get("spec"), dict):
            spec = CampaignSpec.from_dict(doc["spec"])  # type: ignore[arg-type]
            # The publishing process may know the store under another
            # path; workers trust the one they were pointed at.
            return dataclasses.replace(spec, store=store_spec)
    raise StoreError(
        f"no campaign spec published in {store_spec!r}; "
        "start one with 'campaign run' first"
    )


def _smoke_overrides() -> dict[str, object]:
    """Tiny axes/budget: exercise the fleet wiring, not the science."""
    from repro.experiments.presets import Budget
    from repro.topology_gen.suite import CONDITIONS

    return {
        "budget": Budget(
            steps=4, steps_extended=5, baseline_steps=6,
            passes=1, repeat_best=2,
        ),
        "conditions": CONDITIONS[:1],
        "sizes": ("small",),
        "strategies": ("pla", "bo"),
        "arms": (("pla", "h"), ("bo", "h")),
    }


def _run(args: argparse.Namespace, sink: obs.ProgressSink) -> int:
    from repro.experiments.presets import SIZES, SYNTHETIC_STRATEGIES
    from repro.experiments.runner import SUNDOG_ARMS
    from repro.service.campaign import CampaignRunner, CampaignSpec, StudyError
    from repro.topology_gen.suite import CONDITIONS

    axes: dict[str, object] = {
        "conditions": CONDITIONS,
        "sizes": SIZES,
        "strategies": SYNTHETIC_STRATEGIES,
        "arms": SUNDOG_ARMS,
    }
    if args.smoke:
        axes.update(_smoke_overrides())
    if args.study == "sundog":
        for key in ("conditions", "sizes", "strategies"):
            axes.pop(key)
    else:
        axes.pop("arms")
    spec = CampaignSpec(
        study=args.study,
        seed=args.seed,
        workers=args.workers,
        store=args.store,
        mode=args.mode,
        lease_ttl_seconds=args.ttl,
        max_claim_attempts=args.max_claim_attempts,
        **axes,  # type: ignore[arg-type]
    )
    runner = CampaignRunner(spec)
    with obs.session(
        jsonl_path=args.trace,
        progress=sink,
        manifest={"command": "campaign run", "argv": [args.store]},
    ):
        sink.info(
            f"(campaign {spec.study}: {spec.n_cells} cell(s), "
            f"mode {spec.mode}, {runner.n_jobs} worker(s))"
        )
        try:
            results = runner.run()
        except StudyError as exc:
            for label, reason in exc.failures:
                sink.result(f"  FAILED {label}: {reason}")
            sink.result(f"campaign failed: {exc}")
            return 1
    sink.result(
        f"campaign {spec.study} complete: {len(results)} cell(s) committed"
    )
    return 0


def _workers(args: argparse.Namespace, sink: obs.ProgressSink) -> int:
    import multiprocessing

    from repro.service.campaign import _fleet_worker_main
    from repro.service.queue import QueuePolicy, default_owner, run_worker
    from repro.store import open_store

    with open_store(args.store) as store:
        spec = _load_fleet_spec(store, args.store)
    if args.ttl is not None:
        spec = dataclasses.replace(spec, lease_ttl_seconds=args.ttl)
    policy = QueuePolicy(
        ttl_seconds=spec.lease_ttl_seconds,
        max_claim_attempts=spec.max_claim_attempts,
    )
    owner = args.owner or default_owner()
    if args.n <= 1:
        with obs.session(
            jsonl_path=args.trace,
            progress=sink,
            manifest={"command": "campaign workers", "argv": [args.store]},
        ):
            report = run_worker(
                spec, owner, policy=policy,
                stop=threading.Event(), install_sigterm=True,
            )
        verdict = "drained" if report.drained else "done"
        sink.result(
            f"worker {owner} {verdict}: {len(report.committed)} committed, "
            f"{len(report.repaired)} repaired, "
            f"{len(report.released)} released, "
            f"{len(report.quarantined)} quarantined"
        )
        return 0 if report.clean or report.drained else 1
    procs = []
    for i in range(args.n):
        proc = multiprocessing.Process(
            target=_fleet_worker_main,
            args=(spec.as_dict(), f"{owner}-w{i}", policy.as_dict()),
            name=f"{owner}-w{i}",
        )
        proc.start()
        procs.append(proc)
    failed = 0
    for proc in procs:
        proc.join()
        if proc.exitcode:
            failed += 1
            sink.result(f"  worker {proc.name} exited {proc.exitcode}")
    sink.result(f"{args.n} worker(s) finished, {failed} failed")
    return 1 if failed else 0


def _status(args: argparse.Namespace, sink: obs.ProgressSink) -> int:
    from repro.service.campaign import store_cell_label
    from repro.service.queue import CellQueue
    from repro.store import open_store

    with open_store(args.store) as store:
        spec = _load_fleet_spec(store, args.store)
        from repro.service.campaign import CampaignRunner

        _specs, labels, _fn = CampaignRunner(spec).cell_specs()
        cells = [store_cell_label(spec.study, label) for label in labels]
        queue = CellQueue(store, spec.study, cells)
        rows = queue.rows()
    sink.result(
        f"campaign {spec.study} in {args.store} "
        f"({len(rows)} cell(s), mode {spec.mode})"
    )
    terminal = 0
    for label, row in zip(labels, rows):
        status = str(row["status"])
        if status in ("committed", "quarantined"):
            terminal += 1
        detail = ""
        if row.get("owner"):
            detail = (
                f" owner={row['owner']} token={row['token']}"
                f" attempts={row['attempts']}"
            )
        if row.get("reason"):
            detail += f" reason={row['reason']}"
        sink.result(
            f"  {status:<11} {label}  obs={row['observations']}"
            f" results={'yes' if row['results'] else 'no'}{detail}"
        )
    sink.result(f"{terminal}/{len(rows)} cell(s) terminal")
    return 0


def campaign_main(argv: list[str]) -> int:
    """``repro-experiments campaign ...`` entry; returns exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments campaign",
        description="Run crash-safe multi-worker campaigns over a "
        "shared study store (docs/ROBUSTNESS.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="publish a campaign spec and supervise a worker fleet"
    )
    run.add_argument("store", help="shared store (directory or *.db file)")
    run.add_argument(
        "--study", choices=["synthetic", "sundog"], default="synthetic"
    )
    run.add_argument(
        "--mode", choices=["fleet", "pool"], default="fleet",
        help="fleet: crash-safe leased workers; pool: plain process pool",
    )
    run.add_argument("--workers", type=int, default=2)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--ttl", type=float, default=30.0, metavar="SECONDS",
        help="lease heartbeat timeout (dead workers reclaimed after this)",
    )
    run.add_argument(
        "--max-claim-attempts", type=int, default=5,
        help="claims per cell before it is quarantined as poisoned",
    )
    run.add_argument(
        "--smoke", action="store_true",
        help="tiny axes and budget: exercise the fleet, not the science",
    )
    run.add_argument("--trace", default=None, metavar="RUN.jsonl")

    workers = sub.add_parser(
        "workers",
        help="attach N workers to the campaign published in the store",
    )
    workers.add_argument("store", help="shared store of a published campaign")
    workers.add_argument("-n", type=int, default=1, metavar="N")
    workers.add_argument(
        "--owner", default=None,
        help="worker id for leases (default: <host>-<pid>)",
    )
    workers.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="override the published lease TTL",
    )
    workers.add_argument("--trace", default=None, metavar="RUN.jsonl")

    status = sub.add_parser(
        "status", help="one row per cell: lease state, owner, progress"
    )
    status.add_argument("store", help="shared store of a published campaign")

    args = parser.parse_args(argv)
    sink = obs.ProgressSink()
    try:
        if args.command == "run":
            return _run(args, sink)
        if args.command == "workers":
            return _workers(args, sink)
        if args.command == "status":
            return _status(args, sink)
    except SchemaVersionError as exc:
        sink.result(f"SCHEMA VERSION MISMATCH: {exc}")
        return 2
    except (StoreError, OSError) as exc:
        sink.result(f"error: {exc}")
        return 1
    return 1  # pragma: no cover - argparse enforces a command
