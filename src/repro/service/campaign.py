"""Campaign orchestration: serializable study grids, leased cells.

The experiment runner used to own all of this inline — worker-budget
splitting, the process-pool fan-out with obs events, per-cell result
caching on the filesystem.  This module extracts it into a service
layer the runner (and anything else — the CLI, a future tuning daemon)
drives through two types:

* :class:`CampaignSpec` — a *data* description of one study campaign:
  which grid (``synthetic`` or ``sundog``), its axes, budget, seeds,
  worker budget, resilience policy, and the study store that holds its
  persistent state.  ``as_dict``/``from_dict`` round-trip it through
  JSON, so a campaign can be submitted, queued, or resumed by a process
  that never constructed the original Python objects.
* :class:`CampaignRunner` — executes a spec: builds the cell specs,
  splits the worker budget between cell processes and in-loop
  evaluation concurrency (:func:`split_worker_budget`), and leases each
  cell to :func:`run_cells`, which fans out over a process pool,
  reports through the active obs context, and aggregates failures into
  one :class:`StudyError` after every cell has been attempted.

Cells persist through :mod:`repro.store` (results cache + per-pass
checkpoints), so a killed campaign resumes from whatever completed —
see docs/STORE.md for the resume guarantees.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from typing import Callable, Mapping, Sequence

from repro.core.history import TuningResult
from repro.core.resilience import RetryPolicy
from repro.experiments.presets import (
    SIZES,
    SYNTHETIC_STRATEGIES,
    Budget,
    default_budget,
)
from repro.obs import runtime as obs_runtime
from repro.topology_gen.suite import CONDITIONS, TopologyCondition

CAMPAIGN_KINDS = ("synthetic", "sundog")
CAMPAIGN_MODES = ("pool", "fleet", "packed")

#: Store state-document name under which a fleet campaign publishes its
#: spec (cell ``""``), so `campaign workers` can attach by store alone.
CAMPAIGN_STATE_NAME = "campaign"


def store_cell_label(study: str, label: str) -> str:
    """The store cell a campaign cell persists under.

    Synthetic cells persist under their campaign label verbatim; sundog
    arms carry a ``sundog_`` prefix in the store (the experiment runner
    predates the campaign layer).  Fleet leases key on *store* labels so
    the fenced result write and the lease land on the same cell.
    """
    if study == "sundog":
        return f"sundog_{label}"
    return label


def split_worker_budget(workers: int, n_cells: int) -> tuple[int, int]:
    """Split one worker budget between cell processes and loop threads.

    Returns ``(n_jobs, loop_workers)``: cells are fully independent, so
    the budget goes to cell-level process parallelism first; whatever
    head-room remains (budget beyond the cell count) is spent *inside*
    each cell as concurrent in-loop evaluations.  ``workers=8`` over 24
    cells → 8 cell processes, serial loops; over 2 cells → 2 processes
    with 4 in-flight evaluations each.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    n_jobs = min(workers, max(1, n_cells))
    return n_jobs, max(1, workers // n_jobs)


class StudyError(RuntimeError):
    """One or more study cells raised instead of returning results.

    Raised by :func:`run_cells` *after* every cell has been attempted,
    so a single bad cell cannot waste the others' compute.  ``failures``
    is a list of ``(cell_label, error_description)`` pairs the CLI
    renders as a table before exiting nonzero.
    """

    def __init__(self, study: str, failures: Sequence[tuple[str, str]]) -> None:
        self.study = study
        self.failures = list(failures)
        cells = ", ".join(label for label, _ in self.failures)
        super().__init__(
            f"{len(self.failures)} {study} cell(s) failed: {cells}"
        )


def _result_label(key: object) -> str:
    if isinstance(key, tuple):
        return "/".join(
            getattr(part, "label", None) or str(part) for part in key
        )
    return getattr(key, "label", None) or str(key)


def evaluation_failure_rows(study: object) -> list[dict[str, object]]:
    """Runs whose evaluations *all* failed, as CLI-table rows.

    A run that never produced a single successful measurement has no
    best configuration worth reporting — the paper's procedure (graph
    the best pass, re-measure the winner) is meaningless for it.  The
    CLI prints these rows and exits nonzero so automation notices.
    """
    rows: list[dict[str, object]] = []
    results_by_key = getattr(study, "results", {})
    for key, results in results_by_key.items():
        label = _result_label(key)
        for result in results:
            obs = result.observations
            if not obs or not all(o.failed for o in obs):
                continue
            rows.append(
                {
                    "cell": label,
                    "pass": result.metadata.get("pass", ""),
                    "failed_steps": len(obs),
                    "last_reason": obs[-1].failure_reason or "unknown",
                }
            )
    return rows


def _worker_obs_off() -> None:
    """Disable obs in pool workers (module-level for picklability).

    Under the fork start method a worker inherits the parent's live
    context — including the JSONL sink's file handle, whose shared
    offset makes concurrent writes from several processes interleave.
    Workers run disabled instead and report home through the metrics
    snapshot in ``TuningResult.metadata["obs_metrics"]``.
    """
    obs_runtime.deactivate()


def _cell_seconds(results: list[TuningResult], fallback: float) -> float:
    """Per-cell wall time, preferring the cell's own in-process stamp."""
    stamped = [
        float(r.metadata["cell_seconds"])  # type: ignore[arg-type]
        for r in results
        if "cell_seconds" in r.metadata
    ]
    return sum(stamped) if stamped else fallback


def run_cells(
    study_name: str,
    specs: Sequence[object],
    labels: Sequence[str],
    cell_fn: Callable[..., list[TuningResult]],
    n_jobs: int,
    budget: Budget,
) -> list[list[TuningResult]]:
    """Run every study cell, reporting through the active obs context.

    Emits ``study_start`` / ``cell_start`` / ``cell_finish`` /
    ``study_finish`` events (the progress sink renders them with a
    per-cell ETA) and, for process-parallel execution, merges each
    worker cell's metrics snapshot back into the session registry —
    worker processes carry their own (disabled) obs state, so their
    per-run registries come home inside ``TuningResult.metadata``.

    A cell that raises is recorded (``cell_error`` event) while the
    remaining cells keep running; once every cell has been attempted a
    :class:`StudyError` aggregating the failures is raised.
    """
    ctx = obs_runtime.current()
    ctx.tracer.event(
        "study_start",
        study=study_name,
        n_cells=len(specs),
        budget=asdict(budget),
    )
    outcomes: list[list[TuningResult]] = [[] for _ in specs]
    failures: list[tuple[str, str]] = []

    def cell_failed(i: int, exc: Exception) -> None:
        detail = f"{type(exc).__name__}: {exc}"
        failures.append((labels[i], detail))
        ctx.tracer.event(
            "cell_error", study=study_name, cell=labels[i], error=detail
        )

    if n_jobs > 1:
        submitted = time.perf_counter()
        with ProcessPoolExecutor(
            max_workers=n_jobs, initializer=_worker_obs_off
        ) as pool:
            futures = {}
            for i, spec in enumerate(specs):
                ctx.tracer.event(
                    "cell_start",
                    study=study_name,
                    cell=labels[i],
                    seed=getattr(spec, "seed", None),
                )
                futures[pool.submit(cell_fn, spec)] = i
            for future in as_completed(futures):
                i = futures[future]
                try:
                    outcomes[i] = future.result()
                except Exception as exc:
                    cell_failed(i, exc)
                    continue
                seconds = _cell_seconds(outcomes[i], time.perf_counter() - submitted)
                for result in outcomes[i]:
                    snap = result.metadata.get("obs_metrics")
                    if snap is not None:
                        ctx.metrics.merge_snapshot(snap)  # type: ignore[arg-type]
                ctx.tracer.event(
                    "cell_finish",
                    study=study_name,
                    cell=labels[i],
                    seconds=seconds,
                    best=max(r.best_value for r in outcomes[i]),
                )
    else:
        for i, spec in enumerate(specs):
            ctx.tracer.event(
                "cell_start",
                study=study_name,
                cell=labels[i],
                seed=getattr(spec, "seed", None),
            )
            t0 = time.perf_counter()
            try:
                outcomes[i] = cell_fn(spec)
            except Exception as exc:
                cell_failed(i, exc)
                continue
            ctx.tracer.event(
                "cell_finish",
                study=study_name,
                cell=labels[i],
                seconds=time.perf_counter() - t0,
                best=max(r.best_value for r in outcomes[i]),
            )
    ctx.tracer.event(
        "study_finish",
        study=study_name,
        n_cells=len(specs),
        n_failed_cells=len(failures),
    )
    if failures:
        raise StudyError(study_name, failures)
    return outcomes


# ----------------------------------------------------------------------
# Serializable campaign descriptions
# ----------------------------------------------------------------------
def _budget_as_dict(budget: Budget) -> dict[str, int]:
    return {k: int(v) for k, v in asdict(budget).items()}


def _budget_from_dict(data: Mapping[str, object]) -> Budget:
    return Budget(**{k: int(v) for k, v in data.items()})  # type: ignore[arg-type]


@dataclass(frozen=True)
class CampaignSpec:
    """One study campaign as plain data.

    ``study`` selects the grid family (``synthetic``: conditions ×
    sizes × strategies; ``sundog``: the Figure 8 arms).  ``store`` is an
    :func:`repro.store.open_store` spec — a checkpoint directory or a
    ``*.db`` file — or ``None`` for a purely in-memory campaign.
    ``workers`` is a total concurrency budget split by
    :func:`split_worker_budget`; ``n_jobs`` sets cell processes directly
    when no budget is given.  ``resilience`` applies one
    :class:`~repro.core.resilience.RetryPolicy` to every cell's
    evaluations.
    """

    study: str
    budget: Budget = field(default_factory=default_budget)
    seed: int = 0
    fidelity: str = "analytic"
    workers: int | None = None
    n_jobs: int = 1
    batch_size: int | None = None
    store: str | None = None
    loop_executor: str = "thread"
    resilience: RetryPolicy | None = None
    #: ``pool``: one coordinator fans cells over a process pool.
    #: ``fleet``: ``workers`` independent, crash-safe worker processes
    #: lease cells through the store (requires ``store``); see
    #: :mod:`repro.service.queue` and docs/ROBUSTNESS.md.
    #: ``packed``: every cell runs concurrently as a thread in this
    #: process and evaluates through one
    #: :class:`~repro.core.executor.CrossCellBroker`, which fuses the
    #: whole grid's pending candidates into a handful of packed tensor
    #: dispatches (requires ``fidelity="analytic"``); see
    #: docs/PERFORMANCE.md.
    mode: str = "pool"
    #: Fleet lease heartbeat timeout and poisoned-cell claim bound.
    lease_ttl_seconds: float = 30.0
    max_claim_attempts: int = 5
    #: Synthetic axes (ignored for sundog).
    conditions: tuple[TopologyCondition, ...] = ()
    sizes: tuple[str, ...] = ()
    strategies: tuple[str, ...] = ()
    #: Sundog arms as (strategy, param_set) pairs (ignored for synthetic).
    arms: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.study not in CAMPAIGN_KINDS:
            raise ValueError(
                f"study must be one of {CAMPAIGN_KINDS}, got {self.study!r}"
            )
        if self.mode not in CAMPAIGN_MODES:
            raise ValueError(
                f"mode must be one of {CAMPAIGN_MODES}, got {self.mode!r}"
            )
        if self.mode == "fleet" and not self.store:
            raise ValueError("fleet mode needs a store the workers share")
        if self.mode == "packed" and self.fidelity != "analytic":
            raise ValueError(
                "packed mode fuses analytic mechanics across cells; "
                f"it requires fidelity 'analytic', got {self.fidelity!r}"
            )
        if self.lease_ttl_seconds <= 0:
            raise ValueError("lease_ttl_seconds must be > 0")
        if self.max_claim_attempts < 1:
            raise ValueError("max_claim_attempts must be >= 1")

    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        if self.study == "synthetic":
            return (
                len(self.conditions) * len(self.sizes) * len(self.strategies)
            )
        return len(self.arms)

    def worker_split(self) -> tuple[int, int]:
        """``(n_jobs, loop_workers)`` for this campaign."""
        if self.mode == "fleet":
            # Fleet workers are whole processes; each runs its cells
            # with a serial loop so any worker's cell is byte-identical
            # to a serial run of the same cell.
            return max(1, self.workers or self.n_jobs), 1
        if self.mode == "packed":
            # Every cell is a thread on the shared broker; in-cell
            # concurrency comes from ``batch_size`` (the broker
            # executor's in-flight bound), not from loop workers.
            return 1, 1
        if self.workers is not None:
            return split_worker_budget(self.workers, self.n_cells)
        return max(1, self.n_jobs), 1

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        return {
            "study": self.study,
            "budget": _budget_as_dict(self.budget),
            "seed": self.seed,
            "fidelity": self.fidelity,
            "workers": self.workers,
            "n_jobs": self.n_jobs,
            "batch_size": self.batch_size,
            "store": self.store,
            "loop_executor": self.loop_executor,
            "resilience": (
                None if self.resilience is None else self.resilience.as_dict()
            ),
            "mode": self.mode,
            "lease_ttl_seconds": self.lease_ttl_seconds,
            "max_claim_attempts": self.max_claim_attempts,
            "conditions": [
                {
                    "time_imbalance": c.time_imbalance,
                    "contentious_share": c.contentious_share,
                }
                for c in self.conditions
            ],
            "sizes": list(self.sizes),
            "strategies": list(self.strategies),
            "arms": [list(arm) for arm in self.arms],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        resilience = data.get("resilience")
        workers = data.get("workers")
        batch_size = data.get("batch_size")
        return cls(
            study=str(data["study"]),
            budget=_budget_from_dict(data.get("budget") or _budget_as_dict(default_budget())),  # type: ignore[arg-type]
            seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
            fidelity=str(data.get("fidelity", "analytic")),
            workers=None if workers is None else int(workers),  # type: ignore[arg-type]
            n_jobs=int(data.get("n_jobs", 1)),  # type: ignore[arg-type]
            batch_size=None if batch_size is None else int(batch_size),  # type: ignore[arg-type]
            store=None if data.get("store") is None else str(data["store"]),
            loop_executor=str(data.get("loop_executor", "thread")),
            resilience=(
                None
                if resilience is None
                else RetryPolicy.from_dict(resilience)  # type: ignore[arg-type]
            ),
            mode=str(data.get("mode", "pool")),
            lease_ttl_seconds=float(data.get("lease_ttl_seconds", 30.0)),  # type: ignore[arg-type]
            max_claim_attempts=int(data.get("max_claim_attempts", 5)),  # type: ignore[arg-type]
            conditions=tuple(
                TopologyCondition(
                    time_imbalance=float(c["time_imbalance"]),
                    contentious_share=float(c["contentious_share"]),
                )
                for c in data.get("conditions", ())  # type: ignore[union-attr]
            ),
            sizes=tuple(str(s) for s in data.get("sizes", ())),  # type: ignore[union-attr]
            strategies=tuple(str(s) for s in data.get("strategies", ())),  # type: ignore[union-attr]
            arms=tuple(
                (str(a[0]), str(a[1])) for a in data.get("arms", ())  # type: ignore[union-attr]
            ),
        )

    @classmethod
    def synthetic(cls, **kwargs: object) -> "CampaignSpec":
        """A synthetic-grid spec with the paper's default axes."""
        kwargs.setdefault("conditions", CONDITIONS)
        kwargs.setdefault("sizes", SIZES)
        kwargs.setdefault("strategies", SYNTHETIC_STRATEGIES)
        return cls(study="synthetic", **kwargs)  # type: ignore[arg-type]

    @classmethod
    def sundog(cls, **kwargs: object) -> "CampaignSpec":
        """A sundog spec with the paper's Figure 8 arms."""
        if "arms" not in kwargs:
            from repro.experiments.runner import SUNDOG_ARMS

            kwargs["arms"] = SUNDOG_ARMS
        return cls(study="sundog", **kwargs)  # type: ignore[arg-type]


class CampaignRunner:
    """Execute one :class:`CampaignSpec` over the store-backed cells.

    The runner is the *strategy-free* half of a study: it turns the
    spec into cell specs (lazily importing the experiment runner, which
    owns optimizer construction), leases them through
    :func:`run_cells`, and returns outcomes keyed by cell label.  The
    classic study classes (:class:`~repro.experiments.runner.
    SyntheticStudy`, :class:`~repro.experiments.runner.SundogStudy`)
    are thin facades over this.
    """

    def __init__(self, spec: CampaignSpec) -> None:
        self.spec = spec
        self.n_jobs, self.loop_workers = spec.worker_split()
        #: Cell outcomes keyed by label, populated by :meth:`run`.
        self.results: dict[str, list[TuningResult]] = {}

    # ------------------------------------------------------------------
    def cell_specs(self) -> tuple[list[object], list[str], Callable[..., list[TuningResult]]]:
        """``(specs, labels, cell_fn)`` for this campaign's grid.

        The experiment runner is imported here, not at module level:
        it re-exports campaign names for backward compatibility, so a
        top-level import would be circular.
        """
        from repro.experiments import runner

        spec = self.spec
        if spec.study == "synthetic":
            specs: list[object] = [
                runner.SyntheticCellSpec(
                    size=size,
                    condition=condition,
                    strategy=strategy,
                    budget=spec.budget,
                    seed=spec.seed,
                    fidelity=spec.fidelity,
                    loop_workers=self.loop_workers,
                    loop_executor=spec.loop_executor,
                    batch_size=spec.batch_size,
                    checkpoint_dir=spec.store,
                    resilience=spec.resilience,
                )
                for condition in spec.conditions
                for size in spec.sizes
                for strategy in spec.strategies
            ]
            labels = [
                f"{s.condition.label}/{s.size}/{s.strategy}" for s in specs  # type: ignore[attr-defined]
            ]
            return specs, labels, runner.run_synthetic_cell
        specs = [
            runner.SundogArmSpec(
                strategy=strategy,
                param_set=param_set,
                budget=spec.budget,
                seed=spec.seed,
                fidelity=spec.fidelity,
                loop_workers=self.loop_workers,
                loop_executor=spec.loop_executor,
                batch_size=spec.batch_size,
                checkpoint_dir=spec.store,
                resilience=spec.resilience,
            )
            for strategy, param_set in spec.arms
        ]
        labels = [s.label for s in specs]  # type: ignore[attr-defined]
        return specs, labels, runner.run_sundog_arm

    def run(self) -> dict[str, list[TuningResult]]:
        if self.spec.mode == "fleet":
            return self._run_fleet()
        if self.spec.mode == "packed":
            return self._run_packed()
        specs, labels, cell_fn = self.cell_specs()
        outcomes = run_cells(
            self.spec.study, specs, labels, cell_fn, self.n_jobs, self.spec.budget
        )
        self.results = dict(zip(labels, outcomes))
        return self.results

    # ------------------------------------------------------------------
    # Packed mode (repro.core.executor.CrossCellBroker)
    # ------------------------------------------------------------------
    def _run_packed(self) -> dict[str, list[TuningResult]]:
        """Run every cell concurrently over one cross-cell broker.

        One thread per cell; each cell's tuning loop evaluates through
        a :class:`~repro.core.executor.BrokerExecutor`, so whenever the
        loops block on results the broker fuses every queued candidate
        — heterogeneous topologies, conditions, and memory caps — into
        a single packed tensor dispatch
        (:meth:`repro.storm.packed.PackedBatchModel.evaluate_cells`).

        Values match a pool run of the same spec: packed mechanics are
        bit-identical to each cell's own analytic engine, and
        faults/noise replay per evaluation from ``(config, seed)``
        inside the cell's objective, independent of how rows co-batch.
        """
        import threading

        from repro.core.executor import CrossCellBroker

        spec = self.spec
        specs, labels, cell_fn = self.cell_specs()
        broker = CrossCellBroker()
        in_flight = spec.batch_size or 1

        def factory(objective: object) -> object:
            return broker.executor(objective, max_workers=in_flight)

        ctx = obs_runtime.current()
        ctx.tracer.event(
            "study_start",
            study=spec.study,
            n_cells=len(specs),
            budget=asdict(spec.budget),
            mode="packed",
        )
        outcomes: list[list[TuningResult]] = [[] for _ in specs]
        failures: list[tuple[str, str]] = []
        failures_lock = threading.Lock()

        def run_cell(i: int, cell_spec: object) -> None:
            ctx.tracer.event(
                "cell_start",
                study=spec.study,
                cell=labels[i],
                seed=getattr(cell_spec, "seed", None),
            )
            t0 = time.perf_counter()
            try:
                outcomes[i] = cell_fn(cell_spec, executor_factory=factory)
            except Exception as exc:
                detail = f"{type(exc).__name__}: {exc}"
                with failures_lock:
                    failures.append((labels[i], detail))
                ctx.tracer.event(
                    "cell_error",
                    study=spec.study,
                    cell=labels[i],
                    error=detail,
                )
                return
            ctx.tracer.event(
                "cell_finish",
                study=spec.study,
                cell=labels[i],
                seconds=time.perf_counter() - t0,
                best=max(r.best_value for r in outcomes[i]),
            )

        threads = [
            threading.Thread(
                target=run_cell, args=(i, s), name=f"packed-cell-{i}"
            )
            for i, s in enumerate(specs)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ctx.tracer.event(
            "study_finish",
            study=spec.study,
            n_cells=len(specs),
            n_failed_cells=len(failures),
        )
        if failures:
            raise StudyError(spec.study, failures)
        self.results = dict(zip(labels, outcomes))
        return self.results

    # ------------------------------------------------------------------
    # Fleet mode (repro.service.queue)
    # ------------------------------------------------------------------
    def _run_fleet(self) -> dict[str, list[TuningResult]]:
        """Supervise a crash-safe worker fleet over the shared store.

        Publishes the spec as the store's ``campaign`` state document
        (so detached ``campaign workers`` processes can join), spawns
        ``n_jobs`` worker processes, and respawns any that die while
        non-terminal cells remain — a worker loss costs at most one
        lease TTL of progress, never the campaign.  Quarantined cells
        surface as a :class:`StudyError` after everything else ran.
        """
        import multiprocessing

        from repro.service.queue import CellQueue, QueuePolicy
        from repro.store import open_store

        spec = self.spec
        _specs, labels, _cell_fn = self.cell_specs()
        cells = [store_cell_label(spec.study, label) for label in labels]
        ctx = obs_runtime.current()
        with open_store(spec.store) as store:
            store.save_state(
                spec.study, "", CAMPAIGN_STATE_NAME,
                {"version": 1, "spec": spec.as_dict()},
            )
            policy = QueuePolicy(
                ttl_seconds=spec.lease_ttl_seconds,
                max_claim_attempts=spec.max_claim_attempts,
            )
            queue = CellQueue(store, spec.study, cells, policy)
            ctx.tracer.event(
                "study_start",
                study=spec.study,
                n_cells=len(labels),
                budget=asdict(spec.budget),
                mode="fleet",
                workers=self.n_jobs,
            )
            procs: dict[str, multiprocessing.Process] = {}
            spawned = 0
            # Every respawn means a worker died mid-campaign; the
            # quarantine bound guarantees per-cell progress, so this
            # cap only stops a systemically broken fleet.
            max_spawns = self.n_jobs + 4 * len(labels)
            t0 = time.perf_counter()
            while True:
                pending = queue.pending_labels()
                if not pending:
                    break
                for owner, proc in list(procs.items()):
                    if proc.is_alive():
                        continue
                    proc.join()
                    del procs[owner]
                    ctx.tracer.event(
                        "worker.lost" if proc.exitcode else "worker.done",
                        worker=owner,
                        exitcode=proc.exitcode,
                    )
                while len(procs) < min(self.n_jobs, len(pending)):
                    if spawned >= max_spawns:
                        # Tear the fleet down before reporting failure:
                        # orphaned children would keep claiming cells
                        # and writing to the store after the supervisor
                        # declared the campaign dead.
                        for proc in procs.values():
                            proc.terminate()
                        for proc in procs.values():
                            proc.join(timeout=5.0)
                            if proc.is_alive():
                                proc.kill()
                                proc.join()
                        raise StudyError(
                            spec.study,
                            [
                                (label, "fleet stalled: worker respawn "
                                 f"budget ({max_spawns}) exhausted")
                                for label in pending
                            ],
                        )
                    owner = f"fleet-{spawned}"
                    spawned += 1
                    proc = multiprocessing.Process(
                        target=_fleet_worker_main,
                        args=(spec.as_dict(), owner, policy.as_dict()),
                        name=owner,
                    )
                    proc.start()
                    procs[owner] = proc
                    ctx.tracer.event("worker.spawn", worker=owner)
                time.sleep(min(0.2, policy.poll_interval()))
            for proc in procs.values():
                proc.join()
            seconds = time.perf_counter() - t0
            failures: list[tuple[str, str]] = []
            results: dict[str, list[TuningResult]] = {}
            for label, cell in zip(labels, cells):
                lease = store.read_lease(spec.study, cell)
                if lease is not None and lease.status == "quarantined":
                    failures.append((label, lease.reason or "quarantined"))
                    continue
                cell_results = store.load_results(spec.study, cell)
                if not cell_results:
                    failures.append((label, "no results in the store"))
                    continue
                for result in cell_results:
                    snap = result.metadata.get("obs_metrics")
                    if isinstance(snap, dict):
                        ctx.metrics.merge_snapshot(snap)  # type: ignore[arg-type]
                results[label] = cell_results
            ctx.tracer.event(
                "study_finish",
                study=spec.study,
                n_cells=len(labels),
                n_failed_cells=len(failures),
                seconds=seconds,
            )
            if failures:
                raise StudyError(spec.study, failures)
        self.results = results
        return results


def _fleet_worker_main(
    spec_dict: dict[str, object],
    owner: str,
    policy_dict: dict[str, object],
) -> None:
    """Fleet worker process entry (module-level for picklability).

    Workers deactivate obs for the same reason pool workers do (the
    inherited JSONL sink handle is not multi-process safe) and report
    home through the store.
    """
    from repro.service.queue import QueuePolicy, run_worker

    obs_runtime.deactivate()
    run_worker(
        CampaignSpec.from_dict(spec_dict),
        owner,
        policy=QueuePolicy.from_dict(policy_dict),
    )
