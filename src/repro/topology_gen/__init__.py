"""Synthetic topology generation (paper §IV-B).

Reimplements the GGen *layer-by-layer* random DAG method the paper uses
(:mod:`repro.topology_gen.ggen`), the workload perturbations — time
complexity imbalance, resource contention, selectivity
(:mod:`repro.topology_gen.modifications`) — and the paper's three
benchmark presets of Table II (:mod:`repro.topology_gen.suite`).
"""

from repro.topology_gen.ggen import LayerByLayerGenerator, layer_by_layer
from repro.topology_gen.modifications import (
    apply_resource_contention,
    apply_selectivity,
    apply_time_imbalance,
)
from repro.topology_gen.properties import table2_stats
from repro.topology_gen.suite import (
    PRESETS,
    TopologyCondition,
    TopologyPreset,
    make_topology,
)

__all__ = [
    "LayerByLayerGenerator",
    "PRESETS",
    "TopologyCondition",
    "TopologyPreset",
    "apply_resource_contention",
    "apply_selectivity",
    "apply_time_imbalance",
    "layer_by_layer",
    "make_topology",
    "table2_stats",
]
