"""The paper's benchmark suite: Table II presets and Figure 4 conditions.

Three generator presets — Small (10 vertices, 4 layers, p=0.40),
Medium (50, 5, 0.08), Large (100, 10, 0.04) — crossed with the 2×2
experimental conditions of Figure 4: time-complexity imbalance
(0% / 100%) × resource contention (0% / 25% of compute units).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storm.topology import Topology
from repro.topology_gen.ggen import LayerByLayerGenerator, LayerByLayerParams
from repro.topology_gen.modifications import (
    apply_resource_contention,
    apply_time_imbalance,
)


@dataclass(frozen=True)
class TopologyPreset:
    """Generator inputs for one Table II row."""

    name: str
    n_vertices: int
    n_layers: int
    edge_probability: float
    #: Per-tuple compute units in the balanced configuration (§IV-B1).
    base_cost: float = 20.0
    #: Effective on-wire bytes per tuple including framing/heartbeat
    #: overhead, calibrated so per-worker network load lands in
    #: Figure 3's low-single-digit MB/s band at the measured rates.
    tuple_bytes: int = 16384

    def params(self) -> LayerByLayerParams:
        return LayerByLayerParams(
            n_vertices=self.n_vertices,
            n_layers=self.n_layers,
            edge_probability=self.edge_probability,
        )


#: Base-graph seeds chosen (by exhaustive search over the generator's
#: seed space) so the default graphs reproduce the paper's Table II
#: statistics: small E=17/Src=3/Snk=4/AOD=1.70 (paper: Snk=3; the
#: closest graph that also has the balanced tuple volumes the paper's
#: small-topology parity result implies), medium E=88/17/17/1.76,
#: large E=166/29/27/1.66 (paper: 170/29/27/1.65).
PINNED_SEEDS: dict[str, int] = {"small": 1873, "medium": 55, "large": 3237}

#: The paper's three presets (Table II inputs).
PRESETS: dict[str, TopologyPreset] = {
    "small": TopologyPreset("small", n_vertices=10, n_layers=4, edge_probability=0.40),
    "medium": TopologyPreset(
        "medium", n_vertices=50, n_layers=5, edge_probability=0.08
    ),
    "large": TopologyPreset(
        "large", n_vertices=100, n_layers=10, edge_probability=0.04
    ),
}


@dataclass(frozen=True)
class TopologyCondition:
    """One cell of the Figure 4 grid."""

    time_imbalance: float  # 0.0 ("0% TiIm") or 1.0 ("100% TiIm")
    contentious_share: float  # 0.0 or 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.time_imbalance <= 1.0:
            raise ValueError("time_imbalance must be in [0, 1]")
        if not 0.0 <= self.contentious_share <= 1.0:
            raise ValueError("contentious_share must be in [0, 1]")

    @property
    def label(self) -> str:
        tiim = f"{round(self.time_imbalance * 100)}% TiIm"
        cont = f"{round(self.contentious_share * 100)}% Contentious"
        return f"{tiim} / {cont}"


#: The four Figure 4 panels in the paper's reading order.
CONDITIONS: tuple[TopologyCondition, ...] = (
    TopologyCondition(time_imbalance=0.0, contentious_share=0.0),
    TopologyCondition(time_imbalance=0.0, contentious_share=0.25),
    TopologyCondition(time_imbalance=1.0, contentious_share=0.0),
    TopologyCondition(time_imbalance=1.0, contentious_share=0.25),
)


def base_topology(size: str, *, seed: int = 0) -> Topology:
    """Generate the balanced base graph for a preset (seeded)."""
    try:
        preset = PRESETS[size]
    except KeyError:
        raise ValueError(
            f"unknown preset {size!r}; available: {sorted(PRESETS)}"
        ) from None
    generator = LayerByLayerGenerator(preset.params())
    rng = np.random.default_rng(_preset_seed(size, seed))
    return generator.generate_topology(
        preset.name,
        rng,
        cost=preset.base_cost,
        tuple_bytes=preset.tuple_bytes,
    )


def make_topology(
    size: str,
    condition: TopologyCondition | None = None,
    *,
    seed: int = 0,
) -> Topology:
    """Generate a preset topology under a Figure 4 condition.

    The base graph depends only on (size, seed); the condition's
    modifications are applied with a derived seed so the same graph
    yields all four experimental variants (the paper modifies multiple
    graphs from one base graph, §IV-B).
    """
    topo = base_topology(size, seed=seed)
    if condition is None:
        return topo
    preset = PRESETS[size]
    mod_rng = np.random.default_rng(_preset_seed(size, seed) + 7919)
    topo = apply_time_imbalance(
        topo,
        mod_rng,
        mean_cost=preset.base_cost,
        imbalance=condition.time_imbalance,
    )
    topo = apply_resource_contention(
        topo, mod_rng, contentious_share=condition.contentious_share
    )
    label = condition.label.replace(" ", "").replace("/", ",")
    return topo.renamed(f"{preset.name}[{label}]")


def _preset_seed(size: str, seed: int) -> int:
    """Stable per-preset seed derivation.

    ``seed=0`` selects the pinned base graph matching Table II; other
    seeds generate independent graphs from the same presets (used by
    the property tests and for fresh-graph studies).
    """
    pinned = PINNED_SEEDS.get(size, 0)
    if seed == 0:
        return pinned
    return seed * 1_000_003 + pinned + sum(ord(c) for c in size)
