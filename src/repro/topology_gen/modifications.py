"""Workload perturbations for synthetic topologies (paper §IV-B1..3).

Starting from a *balanced* base graph (every operator costs the same 20
compute units per tuple), the paper derives imbalanced variants:

* **time complexity imbalance** — per-operator costs drawn uniformly
  between 0 and 40 units (mean 20, matching the balanced average);
* **resource contention** — a target *share of total compute units*
  (not of node count) is flagged contentious; a contentious operator's
  effective cost is multiplied by its own task count;
* **selectivity** — emitted tuples per consumed tuple; the paper folds
  selectivity into downstream time values and omits a special flag, but
  the mechanism is implemented for completeness and used by Sundog.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.storm.topology import Topology


def apply_time_imbalance(
    topology: Topology,
    rng: np.random.Generator,
    *,
    mean_cost: float = 20.0,
    imbalance: float = 1.0,
) -> Topology:
    """Draw per-operator costs from U(mean·(1-i), mean·(1+i)).

    ``imbalance=1`` reproduces the paper's U(0, 40) with mean 20
    ("100% TiIm"); ``imbalance=0`` leaves the topology balanced at
    ``mean_cost`` ("0% TiIm").
    """
    if mean_cost <= 0:
        raise ValueError("mean_cost must be > 0")
    if not 0.0 <= imbalance <= 1.0:
        raise ValueError("imbalance must be in [0, 1]")
    low = mean_cost * (1.0 - imbalance)
    high = mean_cost * (1.0 + imbalance)
    updates: dict[str, dict[str, object]] = {}
    for name in topology.topological_order():
        cost = float(rng.uniform(low, high)) if imbalance > 0 else float(mean_cost)
        updates[name] = {"cost": cost}
    return topology.with_operator_updates(updates)


def apply_resource_contention(
    topology: Topology,
    rng: np.random.Generator,
    *,
    contentious_share: float = 0.25,
) -> Topology:
    """Flag operators as contentious until a compute-unit share is reached.

    The paper selects by *total compute units* rather than node count to
    avoid unfair contention distribution (§IV-B2, worked example: "if we
    have a topology with 10 nodes which have an average time complexity
    of 20 and we want to have 25% contentious nodes, we select nodes
    with a total time complexity of 50 units"): operators are drawn
    uniformly without replacement and flagged until the flagged share of
    the topology's summed *time complexities* first reaches the target.
    """
    if not 0.0 <= contentious_share <= 1.0:
        raise ValueError("contentious_share must be in [0, 1]")
    if contentious_share == 0.0:
        return topology.with_operator_updates(
            {name: {"contentious": False} for name in topology.topological_order()}
        )
    units = {
        name: topology.operator(name).cost
        for name in topology.topological_order()
    }
    total_units = sum(units.values())
    if total_units <= 0:
        raise ValueError("topology has no compute work to flag")
    order = list(topology.topological_order())
    rng.shuffle(order)
    flagged: set[str] = set()
    flagged_units = 0.0
    for name in order:
        if flagged_units / total_units >= contentious_share:
            break
        flagged.add(name)
        flagged_units += units[name]
    updates = {
        name: {"contentious": name in flagged}
        for name in topology.topological_order()
    }
    return topology.with_operator_updates(updates)


def contentious_unit_share(topology: Topology) -> float:
    """Share of summed time complexities on contentious operators."""
    total = 0.0
    flagged = 0.0
    for name in topology.topological_order():
        op = topology.operator(name)
        total += op.cost
        if op.contentious:
            flagged += op.cost
    return flagged / total if total > 0 else 0.0


def apply_selectivity(
    topology: Topology, selectivities: Mapping[str, float]
) -> Topology:
    """Set per-operator selectivity values (tuples out per tuple in)."""
    for name, value in selectivities.items():
        if value < 0:
            raise ValueError(f"selectivity for {name!r} must be >= 0")
    updates = {
        name: {"selectivity": float(value)}
        for name, value in selectivities.items()
    }
    return topology.with_operator_updates(updates)


def fold_selectivity_into_costs(topology: Topology) -> Topology:
    """The paper's simplification (§IV-B3): replace selectivity by
    scaled downstream time values.

    Produces a topology where every selectivity is 1 but each operator's
    cost is multiplied by the tuple volume it would have received under
    the original selectivities, so total work per ingested tuple is
    preserved while the network carries one tuple per edge traversal.
    """
    original_volumes = topology.volumes()
    unit = topology.with_operator_updates(
        {name: {"selectivity": 1.0} for name in topology.topological_order()}
    )
    unit_volumes = unit.volumes()
    updates: dict[str, dict[str, object]] = {}
    for name in topology.topological_order():
        ratio = (
            original_volumes[name] / unit_volumes[name]
            if unit_volumes[name] > 0
            else 1.0
        )
        updates[name] = {
            "cost": topology.operator(name).cost * ratio,
            "selectivity": 1.0,
        }
    return topology.with_operator_updates(updates)
