"""Graph statistics for generated topologies (paper Table II)."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.storm.topology import Topology, TopologyStats


def to_networkx(topology: Topology) -> nx.DiGraph:
    """Export a topology as a NetworkX digraph (analysis/visualization)."""
    graph = nx.DiGraph(name=topology.name)
    for name in topology.topological_order():
        op = topology.operator(name)
        graph.add_node(
            name,
            kind=op.kind.value,
            cost=op.cost,
            contentious=op.contentious,
            selectivity=op.selectivity,
            layer=topology.layer_of(name),
        )
    for edge in topology.edges:
        graph.add_edge(edge.src, edge.dst, grouping=edge.grouping.value)
    return graph


def is_valid_sps_graph(topology: Topology) -> bool:
    """The paper's validity constraints on generated graphs (§IV-B):
    a DAG in which every vertex connects to at least one other vertex.

    :class:`~repro.storm.topology.Topology` construction already rejects
    cycles and isolated vertices, so this re-checks via NetworkX as an
    independent oracle (used by the property tests).
    """
    graph = to_networkx(topology)
    if not nx.is_directed_acyclic_graph(graph):
        return False
    if len(graph) > 1:
        for node in graph:
            if graph.degree(node) == 0:
                return False
    return True


@dataclass(frozen=True)
class Table2Row:
    """One row of Table II: generator inputs plus resulting statistics."""

    name: str
    vertices: int
    edges: int
    layers: int
    probability: float
    sources: int
    sinks: int
    average_out_degree: float

    def as_dict(self) -> dict[str, object]:
        return {
            "Name": self.name,
            "V": self.vertices,
            "E": self.edges,
            "L": self.layers,
            "P": self.probability,
            "Src": self.sources,
            "Snk": self.sinks,
            "AOD": round(self.average_out_degree, 2),
        }


def table2_stats(
    topology: Topology, probability: float, *, layers: int | None = None
) -> Table2Row:
    """Compute the Table II row for a generated topology.

    ``layers`` reports the generator's layer *input* when given (that is
    what the paper's Table II lists); otherwise the realized
    longest-path depth is used.
    """
    stats: TopologyStats = topology.stats()
    return Table2Row(
        name=stats.name,
        vertices=stats.vertices,
        edges=stats.edges,
        layers=layers if layers is not None else stats.layers,
        probability=probability,
        sources=stats.sources,
        sinks=stats.sinks,
        average_out_degree=stats.average_out_degree,
    )


def longest_path_length(topology: Topology) -> int:
    """Length (in edges) of the longest source-to-sink path."""
    graph = to_networkx(topology)
    return int(nx.dag_longest_path_length(graph))
