"""Layer-by-layer random DAG generation (GGen reimplementation).

The paper generates its synthetic topologies with GGen's layer-by-layer
method [24], [25]: vertices are partitioned into layers; an edge from a
vertex to any vertex of a strictly later layer is added independently
with probability *p*.  Nodes in the same layer never connect, which is
what gives stream pipelines their "some tasks run in parallel, some wait
for upstream data" shape (§IV-B).

The paper additionally requires that (1) every vertex is connected to at
least one other vertex and (2) the average out-degree stays roughly
constant across the generated graphs; :class:`LayerByLayerGenerator`
enforces (1) with a minimal repair step and (2) by construction of the
published (V, L, p) parameter choices (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storm.grouping import Grouping
from repro.storm.topology import Edge, OperatorKind, OperatorSpec, Topology


@dataclass(frozen=True)
class LayerByLayerParams:
    """Inputs of the layer-by-layer method: (V, L, p) plus a seed."""

    n_vertices: int
    n_layers: int
    edge_probability: float

    def __post_init__(self) -> None:
        if self.n_vertices < 2:
            raise ValueError("n_vertices must be >= 2")
        if not 1 <= self.n_layers <= self.n_vertices:
            raise ValueError("n_layers must be in [1, n_vertices]")
        if not 0.0 < self.edge_probability <= 1.0:
            raise ValueError("edge_probability must be in (0, 1]")


class LayerByLayerGenerator:
    """Generate layered random DAGs as operator adjacency structures."""

    def __init__(self, params: LayerByLayerParams) -> None:
        self.params = params

    def generate_graph(
        self, rng: np.random.Generator
    ) -> tuple[list[list[int]], list[tuple[int, int]]]:
        """Return (layers as vertex-id lists, directed edge list).

        Vertices are split into layers as evenly as possible.  Each
        cross-layer forward pair receives an edge with probability *p*.
        Vertices left without any edge are repaired by connecting them
        to a uniformly chosen vertex of an adjacent layer (downstream
        when possible), which preserves the layered structure.
        """
        p = self.params
        layers = self._split_layers(p.n_vertices, p.n_layers)
        edges: list[tuple[int, int]] = []
        for i in range(len(layers)):
            for j in range(i + 1, len(layers)):
                for u in layers[i]:
                    mask = rng.random(len(layers[j])) < p.edge_probability
                    for v, hit in zip(layers[j], mask):
                        if hit:
                            edges.append((u, v))

        edges = self._repair_isolated(layers, edges, rng)
        return layers, edges

    @staticmethod
    def _split_layers(n_vertices: int, n_layers: int) -> list[list[int]]:
        base = n_vertices // n_layers
        remainder = n_vertices % n_layers
        layers: list[list[int]] = []
        next_id = 0
        for i in range(n_layers):
            size = base + (1 if i < remainder else 0)
            layers.append(list(range(next_id, next_id + size)))
            next_id += size
        # Guard against empty layers when n_layers is close to n_vertices.
        return [layer for layer in layers if layer]

    @staticmethod
    def _repair_isolated(
        layers: list[list[int]],
        edges: list[tuple[int, int]],
        rng: np.random.Generator,
    ) -> list[tuple[int, int]]:
        connected = set()
        for u, v in edges:
            connected.add(u)
            connected.add(v)
        layer_of = {}
        for idx, layer in enumerate(layers):
            for v in layer:
                layer_of[v] = idx
        edge_set = set(edges)
        for layer_idx, layer in enumerate(layers):
            for v in layer:
                if v in connected:
                    continue
                if layer_idx + 1 < len(layers):
                    target_layer = layers[layer_idx + 1]
                    u, w = v, target_layer[int(rng.integers(len(target_layer)))]
                else:
                    source_layer = layers[layer_idx - 1]
                    u, w = source_layer[int(rng.integers(len(source_layer)))], v
                if (u, w) not in edge_set:
                    edge_set.add((u, w))
                    edges.append((u, w))
                connected.add(v)
        return edges

    def generate_topology(
        self,
        name: str,
        rng: np.random.Generator,
        *,
        cost: float = 20.0,
        tuple_bytes: int = 4096,
    ) -> Topology:
        """Build a shuffle-grouped Storm topology from a generated graph.

        Vertices without incoming edges become spouts (data sources);
        every other vertex becomes a bolt (§IV-B4: "bolts in these
        topologies are linked using shuffle-grouping").
        """
        layers, raw_edges = self.generate_graph(rng)
        has_incoming = {v for _, v in raw_edges}
        all_vertices = [v for layer in layers for v in layer]

        def vertex_name(v: int) -> str:
            return f"v{v:03d}"

        operators = [
            OperatorSpec(
                name=vertex_name(v),
                kind=(
                    OperatorKind.BOLT if v in has_incoming else OperatorKind.SPOUT
                ),
                cost=cost,
                tuple_bytes=tuple_bytes,
            )
            for v in all_vertices
        ]
        edges = [
            Edge(src=vertex_name(u), dst=vertex_name(v), grouping=Grouping.SHUFFLE)
            for u, v in raw_edges
        ]
        return Topology(name, operators, edges)


def layer_by_layer(
    name: str,
    n_vertices: int,
    n_layers: int,
    edge_probability: float,
    *,
    seed: int | None = None,
    cost: float = 20.0,
    tuple_bytes: int = 4096,
) -> Topology:
    """One-call convenience wrapper around :class:`LayerByLayerGenerator`."""
    generator = LayerByLayerGenerator(
        LayerByLayerParams(
            n_vertices=n_vertices,
            n_layers=n_layers,
            edge_probability=edge_probability,
        )
    )
    rng = np.random.default_rng(seed)
    return generator.generate_topology(
        name, rng, cost=cost, tuple_bytes=tuple_bytes
    )
