"""Command-line entry point: regenerate any table or figure.

Usage::

    repro-experiments table1|table2|table3|fig3|fig4|fig5|fig6|fig7|fig8|sensitivity|all
        [--full] [--seed N] [--jobs N] [--save DIR] [--load DIR]

``--full`` runs the paper-scale budgets (60/180 steps, 2 passes, 30
re-runs); the default is a scaled-down budget suitable for a laptop.
``--save DIR`` exports the underlying study runs as JSON;
``--load DIR`` re-renders figures from a previous export instead of
re-running.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import figures
from repro.experiments.presets import default_budget, full_budget
from repro.experiments.report import render_figure
from repro.experiments.runner import SundogStudy, SyntheticStudy


def _synthetic_study(args: argparse.Namespace) -> SyntheticStudy:
    if args.load:
        from repro.experiments.export import load_study

        study = load_study(f"{args.load}/synthetic.json")
        assert isinstance(study, SyntheticStudy)
        return study
    budget = full_budget() if args.full else default_budget()
    study = SyntheticStudy(budget, seed=args.seed, n_jobs=args.jobs).run()
    if args.save:
        from pathlib import Path

        from repro.experiments.export import save_study

        Path(args.save).mkdir(parents=True, exist_ok=True)
        save_study(study, f"{args.save}/synthetic.json")
    return study


def _sundog_study(args: argparse.Namespace) -> SundogStudy:
    if args.load:
        from repro.experiments.export import load_study

        study = load_study(f"{args.load}/sundog.json")
        assert isinstance(study, SundogStudy)
        return study
    budget = full_budget() if args.full else default_budget()
    study = SundogStudy(budget, seed=args.seed, n_jobs=args.jobs).run()
    if args.save:
        from pathlib import Path

        from repro.experiments.export import save_study

        Path(args.save).mkdir(parents=True, exist_ok=True)
        save_study(study, f"{args.save}/sundog.json")
    return study


def _sensitivity_report() -> str:
    """Parameter sweeps around Sundog's manual configuration."""
    from repro.experiments.report import render_table
    from repro.storm.sensitivity import SensitivityAnalyzer, default_sweep_values
    from repro.sundog import sundog_default_config, sundog_topology
    from repro.experiments.presets import default_cluster

    cluster = default_cluster()
    topology = sundog_topology()
    base = sundog_default_config().replace(
        parallelism_hints={n: 11 for n in topology}
    )
    analyzer = SensitivityAnalyzer(topology, cluster, base)
    ranked = analyzer.tornado(default_sweep_values(cluster))
    rows = [
        {"Parameter": name, "throughput dynamic range": round(spread, 2)}
        for name, spread in ranked
    ]
    interaction = analyzer.interaction(
        "batch_size", 265_312, "batch_parallelism", 16
    )
    lines = [
        "== Sensitivity: one-at-a-time sweeps around Sundog's manual config ==",
        render_table(rows),
        f"batch_size x batch_parallelism interaction factor: "
        f"{interaction:.2f} (1.0 would mean the two parameters compose "
        f"independently — they do not, which is the paper's argument "
        f"for black-box joint optimization, §III-B)",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "exhibit",
        choices=[
            "table1",
            "table2",
            "table3",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "sensitivity",
            "claims",
            "all",
        ],
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale budgets (60/180 steps, 2 passes, 30 re-runs)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1, help="process-parallel study cells"
    )
    parser.add_argument(
        "--save", default=None, help="directory to export study runs to"
    )
    parser.add_argument(
        "--load", default=None, help="directory to re-render study runs from"
    )
    parser.add_argument(
        "--csv", default=None, help="directory to write exhibit CSVs to"
    )
    parser.add_argument(
        "--svg", default=None, help="directory to write exhibit SVG charts to"
    )
    args = parser.parse_args(argv)

    def emit(data: "figures.FigureData") -> None:
        print(render_figure(data))
        if args.csv:
            from repro.experiments.report import write_csv

            for path in write_csv(data, args.csv):
                print(f"(wrote {path})")
        if args.svg:
            from repro.experiments.svg import save_figure_svg

            for path in save_figure_svg(data, args.svg):
                print(f"(wrote {path})")

    static: dict[str, Callable[[], figures.FigureData]] = {
        "table1": figures.table1_parameters,
        "table2": figures.table2_topologies,
        "table3": figures.table3_literature,
        "fig3": figures.figure3_network_load,
    }

    exhibits = (
        [
            "table1",
            "table2",
            "table3",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "sensitivity",
            "claims",
        ]
        if args.exhibit == "all"
        else [args.exhibit]
    )

    synthetic: SyntheticStudy | None = None
    sundog: SundogStudy | None = None
    for exhibit in exhibits:
        if exhibit == "sensitivity":
            print(_sensitivity_report())
        elif exhibit == "claims":
            from repro.experiments.claims import evaluate_claims, render_claims

            if synthetic is None:
                synthetic = _synthetic_study(args)
            if sundog is None:
                sundog = _sundog_study(args)
            print(render_claims(evaluate_claims(synthetic, sundog)))
        elif exhibit in static:
            emit(static[exhibit]())
        elif exhibit in ("fig4", "fig5", "fig6", "fig7"):
            if synthetic is None:
                synthetic = _synthetic_study(args)
            builder = {
                "fig4": figures.figure4_throughput,
                "fig5": figures.figure5_convergence,
                "fig6": figures.figure6_loess_traces,
                "fig7": figures.figure7_step_time,
            }[exhibit]
            emit(builder(synthetic))
        elif exhibit == "fig8":
            if sundog is None:
                sundog = _sundog_study(args)
            emit(figures.figure8a_sundog_throughput(sundog))
            emit(figures.figure8b_sundog_convergence(sundog))
            print(
                f"speedup of tuned configuration over pla hints-only: "
                f"{figures.speedup_over_pla(sundog):.2f}x (paper: 2.8x)"
            )
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
